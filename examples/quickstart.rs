//! Quickstart: run one week of a small solar-powered storage cluster under
//! the GreenMatch policy and print the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn main() {
    // A 6-server, 12-disk cluster with a 40 m² PV array and a 10 kWh
    // lithium-ion battery, driven by a scaled-down week of interactive
    // streams and deferrable batch jobs.
    let cfg = ExperimentConfig::small_demo(42)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });

    println!("Running one simulated week ({} slots)...\n", cfg.slots);
    let report = run_experiment(&cfg);
    println!("{report}");

    // The same week, energy-oblivious, for contrast.
    let baseline = run_experiment(&cfg.with_policy(PolicyKind::AllOn));
    println!("--- energy-oblivious baseline ---\n{baseline}");

    let saving = (1.0 - report.brown_kwh / baseline.brown_kwh.max(1e-9)) * 100.0;
    println!("GreenMatch used {saving:.0}% less grid energy than All-On.");
}
