//! Trace substitution: drive the simulator with your own batch-job trace
//! instead of the synthetic generator.
//!
//! Writes a small CSV trace in the library's interchange format, reads it
//! back, splices it into the workload, and runs two policies over it. Use
//! the same format to evaluate a real data-center trace.
//!
//! ```text
//! cargo run --release --example custom_trace
//! ```

use gm_sim::time::{SimDuration, SimTime};
use gm_workload::trace::{batch_jobs_from_csv, batch_jobs_to_csv, Workload, WorkloadSpec};
use gm_workload::{BatchJob, BatchKind, JobId};

fn main() {
    // Hand-author a nightly-backup style trace: one 300 GiB backup per
    // night at 22:00 with an 8-hour deadline, plus a weekend scrub.
    let mut jobs = Vec::new();
    for day in 0..7u64 {
        let submit = SimTime::from_days(day) + SimDuration::from_hours(22);
        jobs.push(BatchJob::new(
            JobId(day),
            BatchKind::Backup,
            submit,
            submit + SimDuration::from_hours(8),
            300 << 30,
        ));
    }
    let scrub_start = SimTime::from_days(5) + SimDuration::from_hours(8);
    jobs.push(BatchJob::new(
        JobId(100),
        BatchKind::Scrub,
        scrub_start,
        scrub_start + SimDuration::from_hours(40),
        2 << 40, // 2 TiB full-pool scrub with generous slack
    ));

    // Round-trip through the interchange CSV, as an external trace would.
    let csv = batch_jobs_to_csv(&jobs);
    println!("--- trace CSV ---\n{csv}");
    let parsed = batch_jobs_from_csv(&csv).expect("interchange format parses");
    assert_eq!(parsed.len(), jobs.len());

    // Splice into a workload (interactive half stays synthetic).
    let spec = WorkloadSpec::small_week(1_000);
    let workload = Workload::generate(spec, 42).with_batch_jobs(parsed);
    println!(
        "workload: {} interactive streams, {} custom batch jobs, {:.1} TiB of batch work\n",
        workload.summary().streams,
        workload.summary().batch_jobs,
        workload.total_batch_bytes() as f64 / (1u64 << 40) as f64,
    );

    // The harness regenerates the workload from the config, so for custom
    // traces we drive the slot loop pieces directly at a coarse level:
    // count how much of the backup window overlaps solar production.
    let night_jobs = workload
        .batch_jobs()
        .iter()
        .filter(|j| {
            let h = j.submit.hour_of_day();
            !(8.0..18.0).contains(&h)
        })
        .count();
    println!(
        "{} of {} jobs are submitted outside solar hours — exactly the work \
         GreenMatch defers into the next day's production window.",
        night_jobs,
        workload.batch_jobs().len()
    );
}
