//! Per-slot telemetry: drive the simulation step by step and inspect what
//! the policy actually did — no more staring at end-of-run aggregates.
//!
//! Steps a GreenMatch run one slot at a time, prints an hourly strip chart
//! of gears vs. green energy for the first two days, then uses the
//! [`SlotOutcome`] stream to answer a question the final report cannot:
//! *in which hours does the policy execute batch work, and how green are
//! those hours?* A [`PhaseTimer`] observer measures where the simulation
//! itself spends its wall-clock.
//!
//! ```text
//! cargo run --release --example trace_inspection
//! ```

use greenmatch::config::ExperimentConfig;
use greenmatch::observe::PhaseTimer;
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::{Simulation, SlotOutcome};

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "█".repeat(n)
}

fn main() {
    let cfg = ExperimentConfig::small_demo(42)
        .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });

    let (timer, profile) = PhaseTimer::new();
    let mut sim = Simulation::builder(&cfg)
        .observer(Box::new(timer))
        .build()
        .expect("small demo config materialises");

    println!("slot-by-slot, first 48 h (gears ▏ green production ▏ batch executed):\n");
    println!("{:>4} {:>5} {:>12} {:>14}  green", "slot", "gears", "green Wh", "batch GiB");

    let mut outcomes: Vec<SlotOutcome> = Vec::new();
    let max_green = 3_000.0; // chart scale, Wh
    while let Some(o) = sim.step() {
        if o.slot < 48 {
            println!(
                "{:>4} {:>5} {:>12.1} {:>14.2}  {}",
                o.slot,
                o.gears,
                o.energy.green_produced_wh,
                o.executed_batch_bytes as f64 / (1u64 << 30) as f64,
                bar(o.energy.green_produced_wh / max_green, 24),
            );
        }
        outcomes.push(o);
    }

    // Question 1: how green are the hours where batch work actually ran?
    let (mut green_funded, mut total_batch_energy) = (0.0f64, 0.0f64);
    for o in &outcomes {
        if o.executed_batch_bytes > 0 {
            let batch_frac = o.executed_batch_bytes as f64
                / outcomes.iter().map(|x| x.executed_batch_bytes).sum::<u64>() as f64;
            let slot_green_share = if o.energy.load_wh > 0.0 {
                o.energy.green_direct_wh / o.energy.load_wh
            } else {
                0.0
            };
            green_funded += batch_frac * slot_green_share;
            total_batch_energy += batch_frac;
        }
    }
    println!(
        "\nbatch-weighted green share of execution hours: {:.0}%",
        green_funded / total_batch_energy.max(1e-12) * 100.0
    );

    // Question 2: does the battery ever cover a whole night?
    let deepest = outcomes
        .iter()
        .filter(|o| o.energy.battery_out_wh > 0.0)
        .min_by(|a, b| a.battery_soc_frac.total_cmp(&b.battery_soc_frac));
    match deepest {
        Some(o) => println!(
            "deepest discharge: slot {} ends at {:.0}% state of charge",
            o.slot,
            o.battery_soc_frac * 100.0
        ),
        None => println!("the battery never discharged"),
    }

    // Question 3: any deadline trouble? (events are per-slot deltas)
    let misses: usize = outcomes.iter().map(|o| o.events.deadline_misses).sum();
    println!("deadline misses across the horizon: {misses}");

    let report = sim.into_report();
    println!(
        "\nfinal report cross-check: {:.1} kWh brown, p99 {:.3} s",
        report.brown_kwh, report.latency.p99_s
    );
    println!("simulation cost: {}", profile.lock().unwrap().summary());
}
