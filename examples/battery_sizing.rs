//! Battery sizing study: how much ESD does each policy actually need?
//!
//! Sweeps lithium-ion battery capacities for the ESD-only policy and for
//! GreenMatch on the same cluster/workload/solar week, printing the brown
//! energy at each size. The takeaway mirrors the reconstruction's R-Fig4:
//! GreenMatch reaches its brown-energy floor at a markedly smaller battery
//! than the ESD-only approach, because deferred work consumes solar energy
//! directly instead of round-tripping it through the battery.
//!
//! ```text
//! cargo run --release --example battery_sizing
//! ```

use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn main() {
    let sizes_kwh = [0.0, 2.0, 5.0, 10.0, 20.0, 40.0];

    println!("{:>10} | {:>16} | {:>16}", "batt kWh", "ESD-only brown", "GreenMatch brown");
    println!("{}", "-".repeat(50));

    for &kwh in &sizes_kwh {
        let mut brown = Vec::new();
        for policy in [PolicyKind::AllOn, PolicyKind::GreenMatch { delay_fraction: 1.0 }] {
            let cfg = ExperimentConfig::small_demo(42)
                .with_policy(policy)
                .with_solar(60.0, SolarProfile::SunnySummer)
                .with_battery((kwh > 0.0).then(|| BatterySpec::lithium_ion(kwh * 1000.0)));
            brown.push(run_experiment(&cfg).brown_kwh);
        }
        println!("{:>10.0} | {:>12.1} kWh | {:>12.1} kWh", kwh, brown[0], brown[1]);
    }

    println!("\nLook for the size where each column stops improving: that is the");
    println!("battery the policy actually needs. GreenMatch's knee comes earlier.");
}
