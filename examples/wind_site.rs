//! Wind-powered site: the paper family's future-work question — does the
//! scheduling/storage trade-off survive a production profile that is not
//! diurnal?
//!
//! Runs the policy set under a steady-coastal wind turbine instead of PV
//! and prints brown energy, green utilisation and deadline misses. Wind
//! produces at night too, so the battery matters less and opportunistic
//! deferral matters differently than under solar.
//!
//! ```text
//! cargo run --release --example wind_site
//! ```

use gm_energy::wind::WindProfile;
use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn main() {
    let policies = [
        ("all-on (ESD-only)", PolicyKind::AllOn),
        ("power-prop", PolicyKind::PowerProportional),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    ];

    println!(
        "{:<20} | {:>10} | {:>9} | {:>9} | {:>8}",
        "policy", "brown kWh", "green use", "coverage", "misses"
    );
    println!("{}", "-".repeat(68));

    for (name, policy) in policies {
        let cfg = ExperimentConfig::small_demo(42)
            .with_policy(policy)
            .with_wind(6_000.0, WindProfile::SteadyCoastal);
        let r = run_experiment(&cfg);
        println!(
            "{:<20} | {:>10.1} | {:>8.1}% | {:>8.1}% | {:>8}",
            name,
            r.brown_kwh,
            r.green_utilization * 100.0,
            r.green_coverage * 100.0,
            r.batch.deadline_misses + r.batch.unfinished_late,
        );
    }

    println!("\nWind blows at night: direct consumption replaces much of the battery's");
    println!("role, and deferral targets lulls rather than darkness.");
}
