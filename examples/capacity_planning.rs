//! Capacity planning: find the PV area that drives grid consumption to
//! (near) zero for a given workload, under an idealised oversized battery —
//! the reconstruction's R-Fig3 methodology at example scale.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn brown_at(area_m2: f64, policy: PolicyKind) -> f64 {
    // Idealised ESD so only panel area limits greening (sizing methodology).
    let cfg = ExperimentConfig::small_demo(42)
        .with_policy(policy)
        .with_solar(area_m2, SolarProfile::SunnySummer)
        .with_battery(BatterySpec::ideal(1_000_000.0));
    let r = run_experiment(&cfg);
    // Warm-start brown: the battery starts empty, so the first night's
    // draw is a cold-start artefact independent of panel area.
    r.brown_series_wh.iter().skip(24).sum::<f64>() / 1000.0
}

fn main() {
    println!("Sweeping PV area with an idealised battery (sizing methodology):\n");
    println!("{:>9} | {:>16} | {:>16}", "area m²", "ESD-only brown", "GreenMatch brown");
    println!("{}", "-".repeat(49));

    let mut zero_allon = None;
    let mut zero_gm = None;
    for area in (0..=16).map(|i| i as f64 * 10.0) {
        let a = brown_at(area, PolicyKind::AllOn);
        let g = brown_at(area, PolicyKind::GreenMatch { delay_fraction: 1.0 });
        println!("{area:>9.0} | {a:>12.1} kWh | {g:>12.1} kWh");
        if a < 0.5 && zero_allon.is_none() {
            zero_allon = Some(area);
        }
        if g < 0.5 && zero_gm.is_none() {
            zero_gm = Some(area);
        }
        if zero_allon.is_some() && zero_gm.is_some() {
            break;
        }
    }

    match (zero_allon, zero_gm) {
        (Some(a), Some(g)) => {
            println!("\nZero-brown PV area: ESD-only needs ≈{a:.0} m², GreenMatch ≈{g:.0} m²");
            println!(
                "GreenMatch shrinks the required installation by {:.0}%.",
                (1.0 - g / a) * 100.0
            );
        }
        _ => println!("\nRange exhausted before reaching zero-brown; extend the sweep."),
    }
}
