//! Failure injection and renewable-aware rebuild.
//!
//! Runs the small cluster for a week with an (accelerated) disk-failure
//! process under two policies and reports the reliability picture next to
//! the energy picture: rebuild work is deferrable, but deferring it extends
//! the under-replication exposure window, and gear cycling itself adds
//! start-stop wear — energy savings and reliability pull in opposite
//! directions.
//!
//! ```text
//! cargo run --release --example failure_recovery
//! ```

use gm_storage::FailureSpec;
use greenmatch::config::ExperimentConfig;
use greenmatch::harness::run_experiment;
use greenmatch::policy::PolicyKind;

fn main() {
    // ~100× accelerated AFR so a single simulated week shows the dynamics.
    let fail_spec = FailureSpec { afr: 3.0, standby_factor: 0.5, spinup_wear_hours: 10.0 };

    println!(
        "{:<14} | {:>9} | {:>8} | {:>7} | {:>6} | {:>9} | {:>10}",
        "policy", "brown kWh", "failures", "repairs", "lost", "degraded", "rebuild GB"
    );
    println!("{}", "-".repeat(84));

    for (name, policy) in [
        ("all-on", PolicyKind::AllOn),
        ("power-prop", PolicyKind::PowerProportional),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    ] {
        let cfg = ExperimentConfig::small_demo(42).with_policy(policy).with_failures(fail_spec);
        let r = run_experiment(&cfg);
        println!(
            "{:<14} | {:>9.1} | {:>8} | {:>7} | {:>6} | {:>9} | {:>10.1}",
            name,
            r.brown_kwh,
            r.failures,
            r.repairs_completed,
            r.lost_objects,
            r.degraded_reads,
            r.rebuild_bytes as f64 / 1e9,
        );
    }

    println!("\nParked disks fail less (standby factor), but every gear cycle adds");
    println!("start-stop wear, and deferred rebuilds widen the exposure window —");
    println!("the reliability face of renewable-aware power-gating.");
}
