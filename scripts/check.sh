#!/usr/bin/env bash
# Local pre-push gate: formatting, lints, tests. Same steps CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "All checks passed."
