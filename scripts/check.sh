#!/usr/bin/env bash
# Local pre-push gate: formatting, lints, tests. Same steps CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> warm-start byte-identity gate (warm vs cold traces)"
cargo test -q --test telemetry warm_start

echo "==> cargo bench --bench e2e -- --test (smoke)"
cargo bench -p gm-bench --bench e2e -- --test

echo "==> cargo bench --bench sweep -- --test (smoke)"
cargo bench -p gm-bench --bench sweep -- --test

echo "==> audited e2e smoke (run_once --audit)"
cargo run --release -q -p gm-bench --bin run_once -- \
  --preset small --audit --audit-out target/audit-report.json

echo "==> conservation fuzz smoke (fixed seed)"
cargo run --release -q -p gm-bench --bin fuzz -- \
  --cases 40 --seed 42 --out target/fuzz-violations.json

echo "All checks passed."
