#!/usr/bin/env bash
# Local pre-push gate: formatting, lints, tests. Same steps CI runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> warm-start byte-identity gate (warm vs cold traces)"
cargo test -q --test telemetry warm_start

echo "==> snapshot/resume byte-identity gate (branch vs cold)"
cargo test -q --test snapshot

echo "==> shard-invariance gate (10^5-stream workload kernel, release)"
cargo test -q --release --test workload_kernel -- --ignored

echo "==> cargo bench --bench e2e -- --test (smoke)"
cargo bench -p gm-bench --bench e2e -- --test

echo "==> cargo bench --bench mega -- --test (smoke)"
cargo bench -p gm-bench --bench mega -- --test

echo "==> cargo bench --bench sweep -- --test (smoke)"
cargo bench -p gm-bench --bench sweep -- --test

echo "==> audited e2e smoke (run_once --audit)"
cargo run --release -q -p gm-bench --bin run_once -- \
  --preset small --audit --audit-out target/audit-report.json

echo "==> audited 10^5-stream smoke (mega kernel, few slots)"
cargo run --release -q -p gm-bench --bin run_once -- \
  --preset medium --streams 100000 --slots 8 --audit

echo "==> tiering experiment smoke (quick sweep)"
TSMOKE=$(mktemp -d)
cargo run --release -q -p gm-bench --bin experiments -- \
  tiering --quick --out "$TSMOKE" >/dev/null
rm -rf "$TSMOKE"

echo "==> tiering shape check (tiering-cuts-brown-or-capacity)"
cargo run --release -q -p gm-bench --bin validate -- --quick --check tiering

echo "==> admission shape check (admission-tightens-violations)"
cargo run --release -q -p gm-bench --bin validate -- --quick --check admission

echo "==> gm-serve smoke (feed == batch replay, gated)"
cargo run --release -q -p gm-bench --bin serve -- \
  --preset small --slots 48 --verify --audit >/dev/null

echo "==> conservation fuzz smoke (fixed seed)"
cargo run --release -q -p gm-bench --bin fuzz -- \
  --cases 40 --seed 42 --out target/fuzz-violations.json

echo "==> checkpoint/restore fuzz smoke (random-slot split, fixed seed)"
cargo run --release -q -p gm-bench --bin fuzz -- \
  --cases 20 --seed 42 --split

echo "==> halt/resume smoke (run_once checkpoint → resume, stitched output)"
cargo build --release -q -p gm-bench --bin run_once
RSMOKE=$(mktemp -d)
./target/release/run_once --preset small --slots 48 \
  --trace "$RSMOKE/cold.jsonl" --out "$RSMOKE/cold.json" >/dev/null 2>&1
./target/release/run_once --preset small --slots 48 --halt-after 20 \
  --checkpoint-file "$RSMOKE/ck.json" --trace "$RSMOKE/stitched.jsonl" >/dev/null 2>&1
./target/release/run_once --resume "$RSMOKE/ck.json" \
  --trace "$RSMOKE/stitched.jsonl" --out "$RSMOKE/resumed.json" --audit >/dev/null 2>&1
cmp "$RSMOKE/cold.jsonl" "$RSMOKE/stitched.jsonl"
cmp "$RSMOKE/cold.json" "$RSMOKE/resumed.json"
rm -rf "$RSMOKE"
echo "    resume smoke: stitched trace and report byte-identical to cold"

echo "All checks passed."
