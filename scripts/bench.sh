#!/usr/bin/env bash
# Performance tracking for the sweep engine.
#
# Runs the end-to-end policy bench plus the world-materialization/sweep
# bench, times the full experiment suite, and writes BENCH_sweep.json at
# the repo root so the perf trajectory is tracked from PR 3 on.
#
# Usage: scripts/bench.sh [--skip-suite]
#   --skip-suite   only run the criterion benches (skip the ~minutes-long
#                  full `experiments all` timing pass)
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SUITE=0
[[ "${1:-}" == "--skip-suite" ]] && SKIP_SUITE=1

# Wall-clock of the full suite on this machine before the shared-world
# engine (PR 3). Measured once on the reference box; kept here so the
# JSON always records the comparison point.
BASELINE_SUITE_SECONDS=513

echo "==> cargo bench --bench e2e"
cargo bench -p gm-bench --bench e2e | tee /tmp/gm_bench_e2e.txt

echo "==> cargo bench --bench sweep"
cargo bench -p gm-bench --bench sweep | tee /tmp/gm_bench_sweep.txt

echo "==> cargo bench --bench matcher_kernel"
cargo bench -p gm-bench --bench matcher_kernel | tee /tmp/gm_bench_matcher_kernel.txt

echo "==> cargo bench --bench branch"
cargo bench -p gm-bench --bench branch | tee /tmp/gm_bench_branch.txt

echo "==> cargo bench --bench mega (workload-kernel scaling, 1k..1M streams)"
cargo bench -p gm-bench --bench mega | tee /tmp/gm_bench_mega.txt

echo "==> gm-serve decision latency (mega preset, 1M+ requests/slot)"
cargo run --release -q -p gm-bench --bin serve -- \
  --preset mega --out /tmp/gm_serve_mega.json >/dev/null

SUITE_SECONDS=null
if [[ "$SKIP_SUITE" -eq 0 ]]; then
    # Note: on a thermally-constrained box the suite timing right after
    # ~20 min of criterion runs can read 10–30% high; for the recorded
    # number, re-run `experiments all` on an idle machine and keep the
    # stable repeat.
    echo "==> timing full experiment suite (experiments all)"
    cargo build --release -q
    OUT=$(mktemp -d)
    T0=$(date +%s)
    ./target/release/experiments all --out "$OUT" --seed 42 >/dev/null
    T1=$(date +%s)
    SUITE_SECONDS=$((T1 - T0))
    rm -rf "$OUT"
    echo "    suite wall-clock: ${SUITE_SECONDS}s (baseline ${BASELINE_SUITE_SECONDS}s)"
fi

# Extract "bench <name> <value> <unit>/iter" lines into JSON entries.
bench_json() {
    awk '/^bench .*\/iter/ {
        name=$2; val=$3; unit=$4; sub("/iter", "", unit);
        printf "%s    {\"name\": \"%s\", \"per_iter\": \"%s %s\"}", sep, name, val, unit;
        sep=",\n"
    } END { print "" }' "$1"
}

{
    echo '{'
    echo '  "suite": {'
    echo "    \"baseline_seconds\": ${BASELINE_SUITE_SECONDS},"
    echo "    \"current_seconds\": ${SUITE_SECONDS}"
    echo '  },'
    echo '  "e2e": ['
    bench_json /tmp/gm_bench_e2e.txt
    echo '  ],'
    echo '  "sweep": ['
    bench_json /tmp/gm_bench_sweep.txt
    echo '  ],'
    echo '  "matcher_kernel": ['
    bench_json /tmp/gm_bench_matcher_kernel.txt
    echo '  ],'
    echo '  "branch": ['
    bench_json /tmp/gm_bench_branch.txt
    echo '  ],'
    echo '  "mega": ['
    bench_json /tmp/gm_bench_mega.txt
    echo '  ],'
    echo '  "serve":'
    # Decision-latency distribution of the mega serve loop, verbatim.
    sed 's/^/  /' /tmp/gm_serve_mega.json
    echo '}'
} > BENCH_sweep.json

echo "Wrote BENCH_sweep.json"
