//! Umbrella package for the GreenMatch reproduction workspace.
//!
//! The real code lives in the member crates; this package exists to host
//! the cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). It re-exports the member crates for convenience.

pub use gm_energy as energy;
pub use gm_sim as sim;
pub use gm_storage as storage;
pub use gm_workload as workload;
pub use greenmatch as core;
