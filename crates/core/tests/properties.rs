//! Property tests for the core algorithms: min-cost-flow optimality
//! against brute force, matcher plan validity, and EDF-fill invariants.

use gm_storage::ClusterSpec;
use gm_workload::JobId;
use greenmatch::matcher::{MatchInput, Matcher, UNIT_BYTES};
use greenmatch::mincostflow::MinCostFlow;
use greenmatch::policy::{edf_fill, BatteryView, JobView, PlanningModel, SiteView};
use proptest::prelude::*;

/// Brute-force minimum cost for a 2-supplier × 2-consumer transportation
/// instance with unit-granular flow.
fn brute_force_2x2(supply: [i64; 2], demand: [i64; 2], cost: [[i64; 2]; 2]) -> Option<i64> {
    let mut best: Option<i64> = None;
    for a00 in 0..=supply[0].min(demand[0]) {
        for a01 in 0..=(supply[0] - a00).min(demand[1]) {
            let need0 = demand[0] - a00;
            let need1 = demand[1] - a01;
            if need0 > supply[1] || need1 > supply[1] - need0.max(0) {
                continue;
            }
            if need0 < 0 || need1 < 0 {
                continue;
            }
            let c = a00 * cost[0][0] + a01 * cost[0][1] + need0 * cost[1][0] + need1 * cost[1][1];
            best = Some(best.map_or(c, |b: i64| b.min(c)));
        }
    }
    best
}

proptest! {
    #[test]
    fn mcmf_matches_brute_force_on_2x2(
        s0 in 1i64..8, s1 in 1i64..8,
        d0 in 1i64..8, d1 in 1i64..8,
        c00 in 0i64..20, c01 in 0i64..20, c10 in 0i64..20, c11 in 0i64..20,
    ) {
        prop_assume!(s0 + s1 >= d0 + d1); // fully satisfiable instances only
        let supply = [s0, s1];
        let demand = [d0, d1];
        let cost = [[c00, c01], [c10, c11]];
        let Some(expect) = brute_force_2x2(supply, demand, cost) else {
            return Ok(());
        };

        let mut g = MinCostFlow::new(6);
        for (i, &s) in supply.iter().enumerate() {
            g.add_edge(0, 1 + i, s, 0);
        }
        #[allow(clippy::needless_range_loop)] // index pairs mirror the math
        for i in 0..2 {
            for j in 0..2 {
                g.add_edge(1 + i, 3 + j, 100, cost[i][j]);
            }
        }
        for (j, &d) in demand.iter().enumerate() {
            g.add_edge(3 + j, 5, d, 0);
        }
        let r = g.solve(0, 5, d0 + d1);
        prop_assert_eq!(r.flow, d0 + d1);
        prop_assert_eq!(r.cost, expect, "SSP must be optimal");
    }

    #[test]
    fn mcmf_flow_never_exceeds_cut(
        caps in proptest::collection::vec(0i64..50, 1..8)
    ) {
        // Chain graph: flow limited by the minimum capacity.
        let n = caps.len() + 1;
        let mut g = MinCostFlow::new(n);
        for (i, &c) in caps.iter().enumerate() {
            g.add_edge(i, i + 1, c, 1);
        }
        let r = g.solve(0, n - 1, i64::MAX / 4);
        let min_cap = *caps.iter().min().expect("non-empty");
        prop_assert_eq!(r.flow, min_cap);
        prop_assert_eq!(r.cost, min_cap * caps.len() as i64);
    }

    #[test]
    fn matcher_plan_accounts_for_all_work(
        jobs in proptest::collection::vec((1u64..64, 0usize..40), 1..20),
        green_slots in proptest::collection::vec(0.0f64..4_000.0, 1..16),
        busy in 0.0f64..8_000.0,
    ) {
        let model = PlanningModel::from_spec(&ClusterSpec::small());
        let views: Vec<JobView> = jobs
            .iter()
            .enumerate()
            .map(|(i, (gib, dl))| JobView {
                id: JobId(i as u64),
                remaining_bytes: gib << 30,
                deadline_slot: *dl,
                critical: false,
            })
            .collect();
        let h = green_slots.len();
        let busy_vec = vec![busy; h];
        let home = [SiteView::home(&green_slots, model, BatteryView::default())];
        let input = MatchInput {
            jobs: &views,
            current_slot: 0,
            horizon: h,
            sites: &home,
            interactive_busy_secs: &busy_vec,
            slot_secs: 3600.0,
            brown_cost_per_slot: None,
        };
        let mut matcher = Matcher::new();
        let stats = matcher.solve(&input);

        // Unit-rounded totals must balance exactly.
        let requested_units: u64 =
            views.iter().map(|j| j.remaining_bytes.div_ceil(UNIT_BYTES)).sum();
        let placed: u64 = matcher.per_slot_bytes().iter().sum::<u64>()
            + stats.deferred_bytes
            + stats.infeasible_bytes;
        prop_assert_eq!(placed, requested_units * UNIT_BYTES, "all work accounted");
        prop_assert_eq!(
            stats.green_bytes + stats.brown_bytes,
            matcher.per_slot_bytes().iter().sum::<u64>(),
            "in-window split is exact"
        );

        // Per-slot capacity respected.
        for (t, &bytes) in matcher.per_slot_bytes().iter().enumerate() {
            let cap = model.batch_capacity_bytes(model.gears, busy, 3600.0);
            prop_assert!(bytes <= cap + UNIT_BYTES, "slot {t}: {bytes} > cap {cap}");
        }
        prop_assert!(stats.cost >= 0);
    }

    #[test]
    fn matcher_green_monotone_in_forecast(
        jobs_gib in 1u64..256,
        wh in 0.0f64..3_000.0,
    ) {
        let model = PlanningModel::from_spec(&ClusterSpec::small());
        let views = vec![JobView {
            id: JobId(0),
            remaining_bytes: jobs_gib << 30,
            deadline_slot: 100,
            critical: false,
        }];
        let busy = vec![0.0; 6];
        let run = |green: f64| {
            let g = vec![green; 6];
            let home = [SiteView::home(&g, model, BatteryView::default())];
            let input = MatchInput {
                jobs: &views,
                current_slot: 0,
                horizon: 6,
                sites: &home,
                interactive_busy_secs: &busy,
                slot_secs: 3600.0,
                brown_cost_per_slot: None,
            };
            Matcher::new().solve(&input).green_bytes
        };
        prop_assert!(run(wh + 500.0) >= run(wh), "more green never reduces green placement");
    }

    /// Satellite: perturb the per-slot bins (forecast green, busy-seconds,
    /// carbon prices) between rounds and assert the warm-started handle's
    /// re-priced solve is indistinguishable from a cold solve of the same
    /// input — stats AND the full per-site schedule.
    #[test]
    fn warm_repriced_solve_matches_cold_solve(
        jobs in proptest::collection::vec((1u64..64, 0usize..20), 1..12),
        rounds in proptest::collection::vec(
            (
                proptest::collection::vec(0.0f64..4_000.0, 8..9),
                proptest::collection::vec(0.0f64..6_000.0, 8..9),
                0i64..400,
                0u8..2,
            ),
            1..8,
        ),
    ) {
        let model = PlanningModel::from_spec(&ClusterSpec::small());
        let mut views: Vec<JobView> = jobs
            .iter()
            .enumerate()
            .map(|(i, (gib, dl))| JobView {
                id: JobId(i as u64),
                remaining_bytes: gib << 30,
                deadline_slot: *dl,
                critical: false,
            })
            .collect();
        let mut warm = Matcher::new();
        for (round, (green, busy, carbon_base, shrink)) in rounds.iter().enumerate() {
            if *shrink == 1 && views.len() > 1 {
                views.pop(); // group supplies drift between slots too
            }
            let carbon: Vec<i64> = (0..8).map(|t| carbon_base + t as i64 * 3).collect();
            let home = [SiteView::home(green, model, BatteryView::default())];
            let input = MatchInput {
                jobs: &views,
                current_slot: round,
                horizon: 8,
                sites: &home,
                interactive_busy_secs: busy,
                slot_secs: 3600.0,
                brown_cost_per_slot: Some(&carbon),
            };
            let warm_stats = warm.solve(&input);
            let mut cold = Matcher::new();
            cold.set_warm_start(false);
            let cold_stats = cold.solve(&input);
            prop_assert_eq!(warm_stats, cold_stats, "round {}: stats diverge", round);
            prop_assert_eq!(
                warm.per_site_slot_bytes(),
                cold.per_site_slot_bytes(),
                "round {}: schedules diverge",
                round
            );
        }
        prop_assert_eq!(warm.solve_counts().cold, 1, "warm handle must rebuild only once");
    }

    #[test]
    fn edf_fill_never_exceeds_capacity_or_remaining(
        jobs in proptest::collection::vec((0u64..1_000_000, 0usize..50), 0..30),
        capacity in 0u64..10_000_000,
    ) {
        let views: Vec<JobView> = jobs
            .iter()
            .enumerate()
            .map(|(i, (bytes, dl))| JobView {
                id: JobId(i as u64),
                remaining_bytes: *bytes,
                deadline_slot: *dl,
                critical: false,
            })
            .collect();
        let fill = edf_fill(&views.clone().into(), capacity);
        let total: u64 = fill.iter().map(|(_, b)| b).sum();
        prop_assert!(total <= capacity);
        for (id, bytes) in &fill {
            let j = views.iter().find(|j| j.id == *id).expect("filled job exists");
            prop_assert!(*bytes <= j.remaining_bytes);
            prop_assert!(*bytes > 0, "no empty assignments");
        }
        // EDF order: deadlines non-decreasing along the fill.
        let deadlines: Vec<usize> = fill
            .iter()
            .map(|(id, _)| views.iter().find(|j| j.id == *id).expect("exists").deadline_slot)
            .collect();
        prop_assert!(deadlines.windows(2).all(|w| w[0] <= w[1]));
    }
}
