//! The shared immutable world of a simulation, and its memo cache.
//!
//! Materialising an [`ExperimentConfig`] splits into two halves:
//!
//! * the **world** — the generated workload population, the materialised
//!   green production trace and the placed cluster layout. Expensive to
//!   build, immutable once built, and a pure function of a *subset* of the
//!   config (each component's inputs are listed on its key function below);
//! * the **per-run state** — disks, queues, battery, ledger, policy,
//!   forecaster, job tables. Cheap, mutable, and rebuilt for every run.
//!
//! A sweep whose points differ only by policy or a scheduler knob shares
//! one [`World`]; points differing only in battery size share the same
//! workload *and* trace while re-placing nothing. [`WorldCache`] performs
//! that sharing: each component is memoised under a key derived from
//! exactly the config fields that feed it, so a 60-run sweep materialises
//! each distinct component once and clones `Arc`s thereafter.
//!
//! Determinism: every component is produced by a deterministic function of
//! `(spec, seed)` with a self-contained [`gm_sim::RngFactory`] (named
//! streams are fresh and identical on every call), so a cache hit is
//! byte-for-byte indistinguishable from a cold rebuild — the telemetry
//! tests pin this.

use crate::config::{ConfigError, ExperimentConfig, SiteConfig, SourceKind};
use gm_sim::{RngFactory, TimeSeries};
use gm_storage::ClusterLayout;
use gm_workload::trace::Workload;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The immutable inputs of one *site*: its green production trace and its
/// placed cluster layout. A single-site world has exactly one of these.
#[derive(Clone)]
pub struct SiteWorld {
    /// Materialised green production trace (W per slot), already rotated
    /// by the site's UTC offset.
    pub green_trace: Arc<TimeSeries>,
    /// Placed cluster layout (spec + object directory).
    pub layout: Arc<ClusterLayout>,
}

/// The immutable inputs of one simulation run, shareable across runs.
///
/// Cloning a `World` clones `Arc`s only. Simulations only ever borrow the
/// contents immutably (the phase pipeline takes `&Workload`,
/// `&TimeSeries`, `&ClusterLayout`); all mutable state lives in the
/// [`crate::simulation::Simulation`] itself.
///
/// The workload is global (interactive traffic and batch arrivals enter at
/// the home site); traces and layouts are per-site, one [`SiteWorld`] per
/// entry of [`ExperimentConfig::site_configs`]. `sites[0]` is the home
/// site.
#[derive(Clone)]
pub struct World {
    /// Generated workload population (interactive streams + batch jobs).
    pub workload: Arc<Workload>,
    /// Per-site immutable components; index 0 is the home site.
    pub sites: Vec<SiteWorld>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("batch_jobs", &self.workload.batch_jobs().len())
            .field("sites", &self.sites.len())
            .field("trace_slots", &self.green_trace().len())
            .field("objects", &self.layout().directory().len())
            .finish()
    }
}

impl World {
    /// The home site's green production trace.
    pub fn green_trace(&self) -> &Arc<TimeSeries> {
        &self.sites[0].green_trace
    }

    /// The home site's cluster layout.
    pub fn layout(&self) -> &Arc<ClusterLayout> {
        &self.sites[0].layout
    }

    /// Cold-materialise every component, bypassing any cache.
    ///
    /// Component build order (layouts, workload, traces) matches the
    /// historic `Simulation::try_new`, so error reporting is unchanged: a
    /// missing trace file still surfaces only after the cluster and
    /// workload build.
    pub fn try_materialize(cfg: &ExperimentConfig) -> Result<World, ConfigError> {
        cfg.validate_sites()?;
        let site_cfgs = cfg.site_configs();
        let layouts: Vec<Arc<ClusterLayout>> =
            site_cfgs.iter().map(|s| Arc::new(ClusterLayout::new(s.cluster.clone()))).collect();
        let workload = Arc::new(Workload::generate(cfg.workload.clone(), cfg.seed));
        let mut sites = Vec::with_capacity(site_cfgs.len());
        for (i, (site, layout)) in site_cfgs.iter().zip(layouts).enumerate() {
            let rngs = RngFactory::new(cfg.site_seed(i));
            let green_trace = Arc::new(site.try_materialize_trace(cfg.clock, cfg.slots, &rngs)?);
            sites.push(SiteWorld { green_trace, layout });
        }
        Ok(World { workload, sites })
    }

    /// Materialise through `cache`: each component is built at most once
    /// per distinct key and shared as an `Arc` thereafter.
    pub fn try_materialize_in(
        cfg: &ExperimentConfig,
        cache: &WorldCache,
    ) -> Result<World, ConfigError> {
        cache.get_or_materialize(cfg)
    }
}

/// One memoised component family: key → build-once cell.
///
/// The per-key `OnceLock` is what makes concurrent misses safe *and*
/// single-build: the map lock is only held to look up the cell, never
/// while materialising, and racing workers on the same key serialise on
/// `OnceLock::get_or_init` so exactly one of them pays the build.
struct Shard<T> {
    map: Mutex<HashMap<String, Arc<OnceLock<Arc<T>>>>>,
}

impl<T> Default for Shard<T> {
    fn default() -> Self {
        Shard { map: Mutex::new(HashMap::new()) }
    }
}

impl<T> Shard<T> {
    fn get_or_build(&self, key: String, stats: &CacheStats, build: impl FnOnce() -> T) -> Arc<T> {
        let cell = {
            let mut map = self.map.lock().expect("world cache lock");
            map.entry(key).or_insert_with(|| Arc::new(OnceLock::new())).clone()
        };
        let mut built = false;
        let value = cell
            .get_or_init(|| {
                built = true;
                Arc::new(build())
            })
            .clone();
        if built {
            stats.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }
}

#[derive(Default)]
struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Concurrent memo cache for [`World`] components.
///
/// Component keys are derived from exactly the config fields that feed the
/// component (see the `*_key` functions), so sweeps share aggressively:
/// sixty policy variants over one scenario hit one workload, one trace and
/// one layout. Hit/miss counters cover all three component families.
#[derive(Default)]
pub struct WorldCache {
    workloads: Shard<Workload>,
    traces: Shard<TimeSeries>,
    layouts: Shard<ClusterLayout>,
    stats: CacheStats,
}

/// Every world-component key of `cfg`, in a fixed order: the workload key
/// first, then each site's trace key and layout key. Snapshots store these
/// strings instead of the materialised components — a checkpoint
/// *references* its world; resuming re-materialises (or cache-hits) the
/// same components from the resume config and can compare key sets to tell
/// an exact resume from a cross-world branch.
pub fn world_keys(cfg: &ExperimentConfig) -> Vec<String> {
    let mut keys = vec![format!("workload/{}", workload_key(cfg))];
    for (i, site) in cfg.site_configs().iter().enumerate() {
        keys.push(format!("trace/{}", trace_key(cfg, site, cfg.site_seed(i))));
        keys.push(format!("layout/{}", layout_key(site)));
    }
    keys
}

/// Key of the workload component: the master seed plus the workload
/// section — `Workload::generate(spec, seed)` reads nothing else.
fn workload_key(cfg: &ExperimentConfig) -> String {
    let spec = serde_json::to_string(&cfg.workload).expect("workload spec serialises");
    format!("{}|{spec}", cfg.seed)
}

/// Key of one site's green-trace component: the site's seed, renewable
/// source, UTC offset, plus clock and slot count. Battery, grid,
/// forecaster and discharge strategy are deliberately excluded — they
/// shape settlement, not production — so a battery or forecast sweep
/// shares one trace. Sites with identical sources but different offsets
/// miss each other (the rotation changes the materialised values).
fn trace_key(cfg: &ExperimentConfig, site: &SiteConfig, site_seed: u64) -> String {
    let source = serde_json::to_string(&site.source).expect("source serialises");
    let clock = serde_json::to_string(&cfg.clock).expect("clock serialises");
    format!("{site_seed}|{}|{clock}|{source}|{}", cfg.slots, site.utc_offset_hours)
}

/// Key of one site's cluster-layout component: the whole cluster section.
/// The placement itself reads only topology/layout/objects, but the layout
/// carries its spec (disk, server, cache models) into every run built from
/// it, so any cluster-section change must miss. Sites with identical
/// cluster specs share one placed layout (placement is seeded by
/// `layout_seed`, not the master seed).
fn layout_key(site: &SiteConfig) -> String {
    serde_json::to_string(&site.cluster).expect("cluster spec serialises")
}

impl WorldCache {
    /// An empty cache.
    pub fn new() -> Self {
        WorldCache::default()
    }

    /// The process-wide cache the bench harness feeds every run through.
    pub fn global() -> &'static WorldCache {
        static GLOBAL: OnceLock<WorldCache> = OnceLock::new();
        GLOBAL.get_or_init(WorldCache::new)
    }

    /// Materialise `cfg`'s world, reusing every component already built
    /// under the same key.
    ///
    /// A [`SourceKind::TraceCsv`] source bypasses the trace shard (reading
    /// a file is fallible and the file may change between runs); all
    /// synthetic sources are infallible and cache cleanly.
    pub fn get_or_materialize(&self, cfg: &ExperimentConfig) -> Result<World, ConfigError> {
        cfg.validate_sites()?;
        let site_cfgs = cfg.site_configs();
        let layouts: Vec<Arc<ClusterLayout>> = site_cfgs
            .iter()
            .map(|site| {
                self.layouts.get_or_build(layout_key(site), &self.stats, || {
                    ClusterLayout::new(site.cluster.clone())
                })
            })
            .collect();
        let workload = self.workloads.get_or_build(workload_key(cfg), &self.stats, || {
            Workload::generate(cfg.workload.clone(), cfg.seed)
        });
        let mut sites = Vec::with_capacity(site_cfgs.len());
        for (i, (site, layout)) in site_cfgs.iter().zip(layouts).enumerate() {
            let site_seed = cfg.site_seed(i);
            let rngs = RngFactory::new(site_seed);
            let green_trace = if matches!(site.source, SourceKind::TraceCsv { .. }) {
                Arc::new(site.try_materialize_trace(cfg.clock, cfg.slots, &rngs)?)
            } else {
                self.traces.get_or_build(trace_key(cfg, site, site_seed), &self.stats, || {
                    site.try_materialize_trace(cfg.clock, cfg.slots, &rngs)
                        .expect("synthetic sources are infallible")
                })
            };
            sites.push(SiteWorld { green_trace, layout });
        }
        Ok(World { workload, sites })
    }

    /// Component lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.stats.hits.load(Ordering::Relaxed)
    }

    /// Component lookups that had to materialise.
    pub fn misses(&self) -> u64 {
        self.stats.misses.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for WorldCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldCache")
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_and_cached_worlds_agree() {
        let cfg = ExperimentConfig::small_demo(5);
        let cold = World::try_materialize(&cfg).expect("materialises");
        let cache = WorldCache::new();
        let warm = World::try_materialize_in(&cfg, &cache).expect("materialises");
        assert_eq!(cold.green_trace().values(), warm.green_trace().values());
        assert_eq!(cold.workload.batch_jobs(), warm.workload.batch_jobs());
        assert_eq!(cold.layout().directory().len(), warm.layout().directory().len());
    }

    #[test]
    fn same_config_hits_all_three_shards() {
        let cfg = ExperimentConfig::small_demo(5);
        let cache = WorldCache::new();
        let a = cache.get_or_materialize(&cfg).expect("first");
        assert_eq!((cache.hits(), cache.misses()), (0, 3));
        let b = cache.get_or_materialize(&cfg).expect("second");
        assert_eq!((cache.hits(), cache.misses()), (3, 3));
        assert!(Arc::ptr_eq(&a.workload, &b.workload));
        assert!(Arc::ptr_eq(a.green_trace(), b.green_trace()));
        assert!(Arc::ptr_eq(a.layout(), b.layout()));
    }

    #[test]
    fn policy_change_shares_the_whole_world() {
        use crate::policy::PolicyKind;
        let cache = WorldCache::new();
        let a = cache.get_or_materialize(&ExperimentConfig::small_demo(5)).expect("a");
        let b = cache
            .get_or_materialize(&ExperimentConfig::small_demo(5).with_policy(PolicyKind::AllOn))
            .expect("b");
        assert_eq!(cache.misses(), 3, "second config rebuilt nothing");
        assert_eq!(cache.hits(), 3);
        assert!(Arc::ptr_eq(&a.workload, &b.workload));
        assert!(Arc::ptr_eq(a.green_trace(), b.green_trace()));
        assert!(Arc::ptr_eq(a.layout(), b.layout()));
    }

    #[test]
    fn battery_sweep_shares_trace_but_seed_change_misses() {
        use gm_energy::battery::BatterySpec;
        let cache = WorldCache::new();
        let base = ExperimentConfig::small_demo(5);
        cache.get_or_materialize(&base).expect("base");
        let bigger = base.clone().with_battery(BatterySpec::lithium_ion(99_000.0));
        let w = cache.get_or_materialize(&bigger).expect("bigger battery");
        assert_eq!(cache.misses(), 3, "battery size feeds no world component");
        let other_seed = base.with_seed(6);
        let w2 = cache.get_or_materialize(&other_seed).expect("other seed");
        assert_eq!(
            cache.misses(),
            5,
            "seed feeds workload and trace (layout has its own placement seed)"
        );
        assert!(!Arc::ptr_eq(&w.workload, &w2.workload));
        assert!(Arc::ptr_eq(w.layout(), w2.layout()), "layout key excludes the master seed");
    }
}
