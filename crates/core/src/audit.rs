//! The conservation auditor: run-time invariant checking for every layer.
//!
//! GreenMatch's headline numbers are bookkeeping identities (brown kWh,
//! green utilization, battery losses), and most of the historic checks were
//! `debug_assert`s that vanish in release builds — exactly the builds the
//! experiment suite runs. This module provides an always-compiled,
//! opt-in-at-runtime correctness layer in two parts:
//!
//! * [`ConservationAuditor`] — a [`SlotObserver`] that re-checks every
//!   [`SlotOutcome`] as the simulation produces it: the two energy
//!   identities (aggregate and per site), sign and range constraints
//!   (battery SoC, fractions), executed-vs-requested bounds, matcher unit
//!   accounting, remote-placement shape, and step-to-step pending-job
//!   bounds. Attach it with [`crate::Simulation::add_observer`]; results
//!   come back through the shared [`AuditReport`] handle (the
//!   [`PhaseTimer`](crate::PhaseTimer) pattern).
//! * [`Simulation::post_run_audit`] — a deep end-of-run audit over state
//!   the per-slot outcomes cannot see: battery conservation residuals,
//!   ledger series identities per site and slot, exact job-byte
//!   conservation, arrival/completion/pending accounting, repair-table
//!   hygiene, and gear-series shape. Call it **before**
//!   [`Simulation::into_report`] (which consumes the simulation).
//!
//! Auditing is off by default — a simulation without the observer and
//! without the post-run call pays nothing. Violations are reported as
//! structured [`AuditViolation`]s rather than panics, so a fuzz harness can
//! collect every broken invariant of a run in one pass.
//!
//! # Tolerances
//!
//! Energy flows are `f64` sums over thousands of slots, so identity checks
//! use an absolute-plus-relative tolerance: `|residual| ≤ 1e-6 + 1e-9·scale`
//! where `scale` is the magnitude of the quantities involved (Wh). Byte and
//! unit counts are integers and are checked exactly.
//!
//! # Adding an invariant
//!
//! Add a check to [`ConservationAuditor::on_slot`] (if it is visible in a
//! [`SlotOutcome`]) or to [`Simulation::post_run_audit`] (if it needs
//! internal state), pick a stable `invariant` name, and extend the catalog
//! in `DESIGN.md` §1.4. Keep checks pure: the auditor must never influence
//! the run.

use crate::observe::SlotObserver;
use crate::simulation::{Simulation, SlotOutcome};
use serde::Serialize;
use std::sync::{Arc, Mutex};

/// Absolute tolerance (Wh) for energy-identity residuals.
pub const ABS_TOL_WH: f64 = 1e-6;
/// Relative tolerance factor applied to the magnitude of the checked flows.
pub const REL_TOL: f64 = 1e-9;
/// Violations kept per report; beyond this only the count grows.
const MAX_VIOLATIONS: usize = 1_000;

/// Batch job ids at or above this value are repair jobs (see
/// `Simulation::next_repair_id`).
const REPAIR_ID_BASE: u64 = 1 << 40;
/// Batch job ids at or above this value are tier-migration jobs (see
/// `Simulation::next_migration_id`); check before [`REPAIR_ID_BASE`].
const MIGRATION_ID_BASE: u64 = 1 << 41;

fn within(residual: f64, scale: f64) -> bool {
    residual.abs() <= ABS_TOL_WH + REL_TOL * scale.abs()
}

/// One broken invariant, with enough structure for tooling to group and
/// rank: where it happened, which identity broke, and by how much.
#[derive(Debug, Clone, Serialize)]
pub struct AuditViolation {
    /// Slot the violation was observed in (`None` for whole-run checks).
    pub slot: Option<usize>,
    /// Site index (`None` for aggregate or site-less checks).
    pub site: Option<usize>,
    /// Stable name of the invariant, e.g. `"supply_identity"`.
    pub invariant: &'static str,
    /// Numeric residual of the identity (0.0 for shape/ordering checks).
    pub residual: f64,
    /// Human-readable description with the offending values.
    pub detail: String,
}

impl AuditViolation {
    /// One-line rendering for logs: `slot 12 site 1: supply_identity ...`.
    pub fn render(&self) -> String {
        let mut s = String::new();
        match self.slot {
            Some(slot) => s.push_str(&format!("slot {slot}")),
            None => s.push_str("run"),
        }
        if let Some(site) = self.site {
            s.push_str(&format!(" site {site}"));
        }
        s.push_str(&format!(
            ": {} (residual {:.3e}) — {}",
            self.invariant, self.residual, self.detail
        ));
        s
    }
}

/// Accumulated audit results for one run.
#[derive(Debug, Default, Serialize)]
pub struct AuditReport {
    /// Slots the per-slot auditor saw (0 for a pure post-run audit).
    pub slots_audited: usize,
    /// The recorded violations, at most `MAX_VIOLATIONS`.
    pub violations: Vec<AuditViolation>,
    /// Violations beyond the cap (recorded only as a count).
    pub suppressed: usize,
}

impl AuditReport {
    /// Whether the audit found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total violations including suppressed ones.
    pub fn total_violations(&self) -> usize {
        self.violations.len() + self.suppressed
    }

    /// Record a violation, capping the stored list.
    pub fn push(&mut self, v: AuditViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }

    /// Fold another report into this one (e.g. per-slot + post-run).
    pub fn merge(&mut self, other: AuditReport) {
        self.slots_audited += other.slots_audited;
        self.suppressed += other.suppressed;
        for v in other.violations {
            self.push(v);
        }
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("audit clean ({} slots)", self.slots_audited)
        } else {
            format!(
                "audit FAILED: {} violation(s) over {} slots",
                self.total_violations(),
                self.slots_audited
            )
        }
    }
}

/// Per-slot invariant checker; see the module docs for the catalog.
///
/// Construct with [`ConservationAuditor::new`], attach the auditor to a
/// simulation, and read the shared report handle after the run.
pub struct ConservationAuditor {
    report: Arc<Mutex<AuditReport>>,
    /// Slot index expected next (monotone stepping).
    next_slot: Option<usize>,
    /// `pending_jobs` of the previous outcome.
    prev_pending: Option<usize>,
    /// `capacity_in_use_bytes` of the previous outcome.
    prev_capacity: Option<u64>,
}

impl ConservationAuditor {
    /// A new auditor plus the handle its report is read through after the
    /// simulation has consumed the observer.
    pub fn new() -> (ConservationAuditor, Arc<Mutex<AuditReport>>) {
        let report = Arc::new(Mutex::new(AuditReport::default()));
        (
            ConservationAuditor {
                report: report.clone(),
                next_slot: None,
                prev_pending: None,
                prev_capacity: None,
            },
            report,
        )
    }

    fn check_energy(
        report: &mut AuditReport,
        slot: usize,
        site: Option<usize>,
        e: &crate::simulation::EnergyFlows,
    ) {
        let supply = e.load_wh - (e.green_direct_wh + e.battery_out_wh + e.grid_wh);
        if !within(supply, e.load_wh) {
            report.push(AuditViolation {
                slot: Some(slot),
                site,
                invariant: "supply_identity",
                residual: supply,
                detail: format!(
                    "load {} != green_direct {} + battery_out {} + grid {}",
                    e.load_wh, e.green_direct_wh, e.battery_out_wh, e.grid_wh
                ),
            });
        }
        let production =
            e.green_produced_wh - (e.green_direct_wh + e.battery_in_wh + e.curtailed_wh);
        if !within(production, e.green_produced_wh) {
            report.push(AuditViolation {
                slot: Some(slot),
                site,
                invariant: "production_identity",
                residual: production,
                detail: format!(
                    "green {} != direct {} + battery_in {} + curtailed {}",
                    e.green_produced_wh, e.green_direct_wh, e.battery_in_wh, e.curtailed_wh
                ),
            });
        }
        for (name, v) in [
            ("green_produced_wh", e.green_produced_wh),
            ("green_direct_wh", e.green_direct_wh),
            ("battery_in_wh", e.battery_in_wh),
            ("battery_out_wh", e.battery_out_wh),
            ("grid_wh", e.grid_wh),
            ("curtailed_wh", e.curtailed_wh),
            ("load_wh", e.load_wh),
        ] {
            if v.is_nan() || v < -ABS_TOL_WH {
                report.push(AuditViolation {
                    slot: Some(slot),
                    site,
                    invariant: "nonnegative_flow",
                    residual: v,
                    detail: format!("{name} = {v}"),
                });
            }
        }
    }
}

impl SlotObserver for ConservationAuditor {
    fn on_slot(&mut self, o: &SlotOutcome) {
        let mut report = self.report.lock().unwrap();
        report.slots_audited += 1;

        // Slot ordering: outcomes arrive once each, in order.
        if let Some(expected) = self.next_slot {
            if o.slot != expected {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "slot_monotonicity",
                    residual: (o.slot as f64) - (expected as f64),
                    detail: format!("expected slot {expected}, observed {}", o.slot),
                });
            }
        }
        self.next_slot = Some(o.slot + 1);

        // (a) Ledger identities, aggregate and per site.
        Self::check_energy(&mut report, o.slot, None, &o.energy);
        for se in &o.site_energy {
            Self::check_energy(&mut report, o.slot, Some(se.site), &se.energy);
        }

        // Per-site fields must sum to the aggregates (multi-site only).
        if !o.site_energy.is_empty() {
            let load: f64 = o.site_energy.iter().map(|s| s.energy.load_wh).sum();
            if !within(load - o.energy.load_wh, o.energy.load_wh) {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "site_load_sum",
                    residual: load - o.energy.load_wh,
                    detail: format!("site loads sum {} vs aggregate {}", load, o.energy.load_wh),
                });
            }
            let executed: u64 = o.site_energy.iter().map(|s| s.executed_batch_bytes).sum();
            if executed != o.executed_batch_bytes {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "site_executed_sum",
                    residual: executed as f64 - o.executed_batch_bytes as f64,
                    detail: format!(
                        "site executed bytes sum {} vs aggregate {}",
                        executed, o.executed_batch_bytes
                    ),
                });
            }
            let soc: f64 = o.site_energy.iter().map(|s| s.battery_soc_wh).sum();
            if !within(soc - o.battery_soc_wh, o.battery_soc_wh) {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "site_soc_sum",
                    residual: soc - o.battery_soc_wh,
                    detail: format!("site SoCs sum {} vs aggregate {}", soc, o.battery_soc_wh),
                });
            }
        }

        // (d) Battery SoC within the usable window.
        if o.battery_soc_wh.is_nan() || o.battery_soc_wh < -ABS_TOL_WH {
            report.push(AuditViolation {
                slot: Some(o.slot),
                site: None,
                invariant: "soc_nonnegative",
                residual: o.battery_soc_wh,
                detail: format!("battery_soc_wh = {}", o.battery_soc_wh),
            });
        }
        if !(-1e-9..=1.0 + 1e-9).contains(&o.battery_soc_frac) {
            report.push(AuditViolation {
                slot: Some(o.slot),
                site: None,
                invariant: "soc_fraction_range",
                residual: o.battery_soc_frac,
                detail: format!("battery_soc_frac = {} outside [0, 1]", o.battery_soc_frac),
            });
        }

        // (b) Byte bounds: never execute more than was requested.
        if o.executed_batch_bytes > o.requested_batch_bytes {
            report.push(AuditViolation {
                slot: Some(o.slot),
                site: None,
                invariant: "executed_le_requested",
                residual: o.executed_batch_bytes as f64 - o.requested_batch_bytes as f64,
                detail: format!(
                    "executed {} > requested {}",
                    o.executed_batch_bytes, o.requested_batch_bytes
                ),
            });
        }

        // (c) Matcher unit accounting: the min-cost-flow network must have
        // conserved flow (green + brown + deferred + infeasible = total).
        if o.matcher_residual_units != 0 {
            report.push(AuditViolation {
                slot: Some(o.slot),
                site: None,
                invariant: "matcher_unit_accounting",
                residual: o.matcher_residual_units as f64,
                detail: format!("matcher left {} unit(s) unaccounted", o.matcher_residual_units),
            });
        }
        if o.deadline_infeasible_bytes != o.decision.infeasible_bytes {
            report.push(AuditViolation {
                slot: Some(o.slot),
                site: None,
                invariant: "infeasible_bytes_mirror",
                residual: o.deadline_infeasible_bytes as f64 - o.decision.infeasible_bytes as f64,
                detail: format!(
                    "outcome {} vs decision {}",
                    o.deadline_infeasible_bytes, o.decision.infeasible_bytes
                ),
            });
        }

        // Remote placements: shape only here (byte-exactness is post-run).
        // Single-site runs must not place remote work; multi-site site
        // indices must name existing non-home sites.
        let n_sites = if o.site_energy.is_empty() { 1 } else { o.site_energy.len() };
        for &(site, job, bytes) in &o.decision.remote_batch_bytes {
            if site == 0 || site >= n_sites {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: Some(site),
                    invariant: "remote_site_index",
                    residual: site as f64,
                    detail: format!(
                        "remote placement of {bytes} bytes for job {} names site {site} of {n_sites}",
                        job.0
                    ),
                });
            }
        }

        // Pending-jobs step bounds. Repairs spawn at most `disk_failures`
        // jobs this slot (a failed disk with nothing to rebuild spawns
        // none), so pending may move within a window.
        if let Some(prev) = self.prev_pending {
            let ev = &o.events;
            let low = prev as i64 + ev.jobs_submitted as i64 + ev.migrations_spawned as i64
                - ev.jobs_completed as i64
                - ev.repairs_completed as i64
                - ev.migrations_completed as i64;
            let high = low + ev.disk_failures as i64;
            let now = o.pending_jobs as i64;
            if now < low || now > high {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "pending_jobs_step",
                    residual: (now - low) as f64,
                    detail: format!(
                        "pending {now} outside [{low}, {high}] \
                         (prev {prev}, +{} submitted, +{} migrations, -{} completed, \
                         -{} repairs, -{} migrations done, ≤{} failures)",
                        ev.jobs_submitted,
                        ev.migrations_spawned,
                        ev.jobs_completed,
                        ev.repairs_completed,
                        ev.migrations_completed,
                        ev.disk_failures
                    ),
                });
            }
        }
        self.prev_pending = Some(o.pending_jobs);

        // Migration byte conservation, exact: placement flips are the only
        // thing that moves raw capacity, and each flip moves it by exactly
        // written − released bytes.
        if let Some(prev) = self.prev_capacity {
            let expected =
                prev as i128 - o.tier_bytes_released as i128 + o.tier_bytes_written as i128;
            if o.capacity_in_use_bytes as i128 != expected {
                report.push(AuditViolation {
                    slot: Some(o.slot),
                    site: None,
                    invariant: "migration_byte_conservation",
                    residual: o.capacity_in_use_bytes as f64 - expected as f64,
                    detail: format!(
                        "capacity {} != prev {} - released {} + written {}",
                        o.capacity_in_use_bytes, prev, o.tier_bytes_released, o.tier_bytes_written
                    ),
                });
            }
        }
        self.prev_capacity = Some(o.capacity_in_use_bytes);
    }
}

impl Simulation<'_> {
    /// Deep end-of-run audit over internal state; see the module docs.
    ///
    /// Takes `&self`, so call it after the last [`Simulation::step`] and
    /// before [`Simulation::into_report`] (which consumes the simulation
    /// and folds unfinished-job bytes into the batch report, shifting the
    /// quantities audited here).
    pub fn post_run_audit(&self) -> AuditReport {
        let mut report = AuditReport::default();
        let simulated = self.current_slot();

        for (i, site) in self.sites.iter().enumerate() {
            // (a) Battery conservation: drawn = stored + delivered + losses.
            let battery = &site.battery;
            let residual = battery.conservation_residual_wh();
            if !within(residual, battery.total_drawn_wh()) {
                report.push(AuditViolation {
                    slot: None,
                    site: Some(i),
                    invariant: "battery_conservation",
                    residual,
                    detail: format!(
                        "drawn {} != stored {} + out {} + eff loss {} + self-discharge {}",
                        battery.total_drawn_wh(),
                        battery.stored_wh(),
                        battery.total_discharged_wh(),
                        battery.efficiency_loss_wh(),
                        battery.self_discharge_loss_wh()
                    ),
                });
            }
            // (d) SoC within the usable window.
            let usable = site.battery_spec.usable_wh();
            if !(-ABS_TOL_WH..=usable + ABS_TOL_WH + REL_TOL * usable)
                .contains(&battery.stored_wh())
            {
                report.push(AuditViolation {
                    slot: None,
                    site: Some(i),
                    invariant: "soc_window",
                    residual: battery.stored_wh(),
                    detail: format!("stored {} Wh outside [0, {usable}]", battery.stored_wh()),
                });
            }

            // (a) Ledger identities per recorded slot, release-safe.
            for s in 0..site.ledger.len() {
                let flows = site.ledger.slot_flows(s);
                let supply = flows.supply_residual();
                if !within(supply, flows.load_wh) {
                    report.push(AuditViolation {
                        slot: Some(s),
                        site: Some(i),
                        invariant: "ledger_supply_identity",
                        residual: supply,
                        detail: format!("{flows:?}"),
                    });
                }
                let production = flows.production_residual();
                if !within(production, flows.green_produced_wh) {
                    report.push(AuditViolation {
                        slot: Some(s),
                        site: Some(i),
                        invariant: "ledger_production_identity",
                        residual: production,
                        detail: format!("{flows:?}"),
                    });
                }
            }
            // Ledger totals must equal their series sums.
            let totals = site.ledger.totals();
            for (name, total, series_sum) in [
                ("load_wh", totals.load_wh, site.ledger.load_series().values().iter().sum::<f64>()),
                ("brown_wh", totals.brown_wh, site.ledger.brown_series().values().iter().sum()),
                (
                    "green_produced_wh",
                    totals.green_produced_wh,
                    site.ledger.green_series().values().iter().sum(),
                ),
                (
                    "battery_out_wh",
                    totals.battery_out_wh,
                    site.ledger.battery_out_series().values().iter().sum(),
                ),
                (
                    "curtailed_wh",
                    totals.curtailed_wh,
                    site.ledger.curtailed_series().values().iter().sum(),
                ),
            ] {
                if !within(total - series_sum, total) {
                    report.push(AuditViolation {
                        slot: None,
                        site: Some(i),
                        invariant: "ledger_total_vs_series",
                        residual: total - series_sum,
                        detail: format!("{name}: total {total} vs series sum {series_sum}"),
                    });
                }
            }

            // Gear series shape: one entry per simulated slot, in range.
            if site.gears_series.len() != simulated {
                report.push(AuditViolation {
                    slot: None,
                    site: Some(i),
                    invariant: "gears_series_len",
                    residual: site.gears_series.len() as f64 - simulated as f64,
                    detail: format!(
                        "{} gear entries for {simulated} simulated slots",
                        site.gears_series.len()
                    ),
                });
            }
            if let Some((s, &g)) =
                site.gears_series.iter().enumerate().find(|(_, &g)| g < 1 || g > site.model.gears)
            {
                report.push(AuditViolation {
                    slot: Some(s),
                    site: Some(i),
                    invariant: "gears_range",
                    residual: g as f64,
                    detail: format!("gear level {g} outside [1, {}]", site.model.gears),
                });
            }
        }

        // (b) Job-byte conservation, exact in u64: every byte of progress on
        // every job (batch and repair) was executed at some site, and vice
        // versa — remote placements beyond a job's un-taken bytes would
        // break this equality.
        let progressed: u64 = self.jobs.iter().map(|j| j.total_bytes - j.remaining_bytes).sum();
        let executed: u64 = self.sites.iter().map(|site| site.executed_batch_bytes).sum();
        if progressed != executed {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "job_byte_conservation",
                residual: progressed as f64 - executed as f64,
                detail: format!("job progress {progressed} bytes vs executed {executed} bytes"),
            });
        }

        // (b) Arrival accounting: every tracked job is a submitted batch
        // job, a spawned repair, or a spawned migration.
        let repairs_spawned = (self.next_repair_id - REPAIR_ID_BASE) as usize;
        let migrations_spawned = (self.next_migration_id - MIGRATION_ID_BASE) as usize;
        if self.jobs.len()
            != self.batch_report.jobs_submitted + repairs_spawned + migrations_spawned
        {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "arrival_accounting",
                residual: self.jobs.len() as f64
                    - (self.batch_report.jobs_submitted + repairs_spawned + migrations_spawned)
                        as f64,
                detail: format!(
                    "{} tracked jobs vs {} submitted + {} repairs + {} migrations spawned",
                    self.jobs.len(),
                    self.batch_report.jobs_submitted,
                    repairs_spawned,
                    migrations_spawned
                ),
            });
        }

        // Index hygiene: the active list and the id index cover exactly the
        // pending jobs.
        let pending = self.active_jobs.len();
        if self.job_index.len() != pending {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "index_active_agree",
                residual: self.job_index.len() as f64 - pending as f64,
                detail: format!(
                    "job_index has {} entries, active list {}",
                    self.job_index.len(),
                    pending
                ),
            });
        }
        let mut pending_batch = 0usize;
        let mut pending_repairs = 0usize;
        let mut pending_migrations = 0usize;
        for &idx in &self.active_jobs {
            let j = &self.jobs[idx];
            if !j.is_pending() {
                report.push(AuditViolation {
                    slot: None,
                    site: None,
                    invariant: "active_job_pending",
                    residual: 0.0,
                    detail: format!("job {} on the active list is not pending", j.id.0),
                });
            }
            if self.job_index.get(&j.id) != Some(&idx) {
                report.push(AuditViolation {
                    slot: None,
                    site: None,
                    invariant: "index_maps_active",
                    residual: 0.0,
                    detail: format!("job {} missing from (or stale in) job_index", j.id.0),
                });
            }
            if j.id.0 >= MIGRATION_ID_BASE {
                pending_migrations += 1;
            } else if j.id.0 >= REPAIR_ID_BASE {
                pending_repairs += 1;
            } else {
                pending_batch += 1;
            }
        }

        // (b)/(d) Completion accounting: submitted = completed + pending,
        // for batch and repair populations separately.
        if self.batch_report.jobs_submitted != self.batch_report.jobs_completed + pending_batch {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "batch_job_accounting",
                residual: self.batch_report.jobs_submitted as f64
                    - (self.batch_report.jobs_completed + pending_batch) as f64,
                detail: format!(
                    "{} submitted != {} completed + {} pending",
                    self.batch_report.jobs_submitted,
                    self.batch_report.jobs_completed,
                    pending_batch
                ),
            });
        }
        if repairs_spawned as u64 != self.repairs_completed + pending_repairs as u64 {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "repair_job_accounting",
                residual: repairs_spawned as f64
                    - (self.repairs_completed + pending_repairs as u64) as f64,
                detail: format!(
                    "{repairs_spawned} repairs spawned != {} completed + {pending_repairs} pending",
                    self.repairs_completed
                ),
            });
        }
        if migrations_spawned as u64 != self.migrations_completed + pending_migrations as u64 {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "migration_job_accounting",
                residual: migrations_spawned as f64
                    - (self.migrations_completed + pending_migrations as u64) as f64,
                detail: format!(
                    "{migrations_spawned} migrations spawned != {} completed + \
                     {pending_migrations} pending",
                    self.migrations_completed
                ),
            });
        }

        // Repair-table hygiene: exactly the pending repairs remain mapped
        // to replacement disks. A completed repair left in the table (the
        // historic leak) shows up as both a length mismatch and a stale
        // entry missing from the live index.
        if self.repair_jobs.len() != pending_repairs {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "repair_table_size",
                residual: self.repair_jobs.len() as f64 - pending_repairs as f64,
                detail: format!(
                    "repair_jobs holds {} entries for {pending_repairs} pending repairs",
                    self.repair_jobs.len()
                ),
            });
        }
        for id in self.repair_jobs.keys() {
            if !self.job_index.contains_key(id) {
                report.push(AuditViolation {
                    slot: None,
                    site: None,
                    invariant: "repair_table_stale_entry",
                    residual: 0.0,
                    detail: format!("repair_jobs entry {} is not a pending job", id.0),
                });
            }
        }

        // Migration-table hygiene, mirroring the repair table: exactly the
        // pending migrations remain mapped to their object payloads.
        if self.migration_jobs.len() != pending_migrations {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "migration_table_size",
                residual: self.migration_jobs.len() as f64 - pending_migrations as f64,
                detail: format!(
                    "migration_jobs holds {} entries for {pending_migrations} pending migrations",
                    self.migration_jobs.len()
                ),
            });
        }
        for id in self.migration_jobs.keys() {
            if !self.job_index.contains_key(id) {
                report.push(AuditViolation {
                    slot: None,
                    site: None,
                    invariant: "migration_table_stale_entry",
                    residual: 0.0,
                    detail: format!("migration_jobs entry {} is not a pending job", id.0),
                });
            }
        }

        // (d) Batch-report orderings (monotone counters).
        let b = &self.batch_report;
        if b.jobs_completed > b.jobs_submitted
            || b.deadline_misses > b.jobs_completed
            || b.bytes_completed > b.bytes_submitted
        {
            report.push(AuditViolation {
                slot: None,
                site: None,
                invariant: "batch_report_order",
                residual: 0.0,
                detail: format!("{b:?}"),
            });
        }

        report
    }

    /// Drive the remaining slots under a fresh [`ConservationAuditor`],
    /// fold in the post-run audit, and return the combined report alongside
    /// the simulation (still un-consumed, ready for
    /// [`Simulation::into_report`]). The convenience entry point behind
    /// `run_once --audit` and the fuzz harness.
    pub fn run_audited(mut self) -> (Self, AuditReport) {
        let (auditor, handle) = ConservationAuditor::new();
        self.add_observer(Box::new(auditor));
        while self.step().is_some() {}
        let mut report =
            std::mem::take(&mut *handle.lock().expect("auditor handle is never poisoned"));
        report.merge(self.post_run_audit());
        (self, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::policy::PolicyKind;

    fn audit(cfg: &ExperimentConfig) -> AuditReport {
        let (_, report) =
            Simulation::builder(cfg).build().expect("config materialises").run_audited();
        report
    }

    #[test]
    fn small_demo_is_clean_under_every_policy() {
        for policy in [
            PolicyKind::AllOn,
            PolicyKind::PowerProportional,
            PolicyKind::Edf,
            PolicyKind::GreedyGreen,
            PolicyKind::GreenMatch { delay_fraction: 1.0 },
            PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 6 },
            PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
        ] {
            let cfg = ExperimentConfig::small_demo(11).with_slots(48).with_policy(policy);
            let report = audit(&cfg);
            assert!(report.is_clean(), "{policy:?}: {}", render_all(&report));
            assert_eq!(report.slots_audited, 48);
        }
    }

    #[test]
    fn multi_site_run_is_clean() {
        let base = ExperimentConfig::small_demo(11)
            .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 })
            .with_slots(48);
        let mut sites = base.site_configs();
        let mut east = sites[0].clone();
        east.name = "east".into();
        east.utc_offset_hours = 8;
        sites.push(east);
        let cfg = base.with_sites(sites).with_wan_cost(200);
        let report = audit(&cfg);
        assert!(report.is_clean(), "{}", render_all(&report));
    }

    #[test]
    fn repair_storm_run_is_clean() {
        let mut cfg = ExperimentConfig::small_demo(7).with_policy(PolicyKind::PowerProportional);
        cfg.slots = 7 * 24;
        cfg.failures = Some(gm_storage::FailureSpec {
            afr: 20.0,
            standby_factor: 0.5,
            spinup_wear_hours: 10.0,
        });
        let (sim, report) =
            Simulation::builder(&cfg).build().expect("config materialises").run_audited();
        assert!(report.is_clean(), "{}", render_all(&report));
        let r = sim.into_report();
        assert!(r.repairs_completed > 0, "storm must complete repairs");
    }

    #[test]
    fn doctored_outcome_is_flagged() {
        // Feed the auditor one good outcome and one with broken energy
        // accounting; only the doctored slot may produce violations.
        let mut sim = Simulation::builder(&ExperimentConfig::small_demo(11).with_slots(2))
            .build()
            .expect("config materialises");
        let good = sim.step().expect("slot 0");
        let (mut auditor, handle) = ConservationAuditor::new();
        auditor.on_slot(&good);
        assert!(handle.lock().unwrap().is_clean(), "real outcome is clean");

        let mut bad = sim.step().expect("slot 1");
        bad.energy.grid_wh += 5.0; // break the supply identity
        bad.battery_soc_frac = 1.5; // and the SoC range
        bad.matcher_residual_units = 3; // and unit accounting
        auditor.on_slot(&bad);
        let report = handle.lock().unwrap();
        let names: Vec<&str> = report.violations.iter().map(|v| v.invariant).collect();
        assert!(names.contains(&"supply_identity"), "{names:?}");
        assert!(names.contains(&"soc_fraction_range"), "{names:?}");
        assert!(names.contains(&"matcher_unit_accounting"), "{names:?}");
        assert!(report.violations.iter().all(|v| v.slot == Some(1)));
    }

    #[test]
    fn out_of_order_slots_are_flagged() {
        let mut sim = Simulation::builder(&ExperimentConfig::small_demo(11).with_slots(2))
            .build()
            .expect("config materialises");
        let first = sim.step().expect("slot 0");
        let (mut auditor, handle) = ConservationAuditor::new();
        auditor.on_slot(&first);
        auditor.on_slot(&first); // replayed slot => ordering violation
        let report = handle.lock().unwrap();
        assert!(report.violations.iter().any(|v| v.invariant == "slot_monotonicity"));
    }

    #[test]
    fn report_caps_stored_violations() {
        let mut report = AuditReport::default();
        for s in 0..1_500 {
            report.push(AuditViolation {
                slot: Some(s),
                site: None,
                invariant: "supply_identity",
                residual: 1.0,
                detail: String::new(),
            });
        }
        assert_eq!(report.violations.len(), 1_000);
        assert_eq!(report.suppressed, 500);
        assert_eq!(report.total_violations(), 1_500);
        assert!(!report.is_clean());
    }

    fn render_all(report: &AuditReport) -> String {
        report.violations.iter().map(|v| v.render()).collect::<Vec<_>>().join("\n")
    }
}
