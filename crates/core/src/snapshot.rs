//! Serializable mid-run simulation state.
//!
//! A [`Snapshot`] captures everything a [`crate::simulation::Simulation`]
//! has *accumulated* since slot 0 — and nothing that is a pure function of
//! its config. The split (see DESIGN.md §1.6):
//!
//! * **Serialized**: per-site cluster state (disks, queues, write log,
//!   cache arena, failure tables), battery state, energy ledger, learned
//!   forecaster state (EWMA table / noise-RNG words), gear history, the
//!   job pool and its pending order, arrival cursor, batch accounting,
//!   the latency histogram, repair tables, and the slot cursor.
//! * **Rebuilt on restore**: the world (workload, traces, layouts — the
//!   snapshot stores their cache *keys*, never the components), the
//!   policy and its matcher network (rebuilt cold; the PR 6 warm==cold
//!   equivalence makes this byte-exact), the failure dice (pure function
//!   of the seed), planning constants, and acceleration memos (busy-time
//!   memo, disk→object reverse index, histogram bucket memo).
//!
//! Restoring goes through the normal assembly path — build a fresh
//! simulation from the *resume* config, then overlay this state — so a
//! same-config resume is byte-identical to an uninterrupted run, and a
//! variant config (different policy / battery / WAN price) branches the
//! checkpoint into a "what-if" continuation.

use crate::config::ExperimentConfig;
use crate::report::BatchReport;
use gm_energy::battery::BatteryState;
use gm_energy::forecast::ForecasterState;
use gm_energy::ledger::EnergyLedger;
use gm_sim::LogHistogram;
use gm_storage::ClusterSnapshot;
use gm_workload::BatchJob;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::path::Path;

/// Format version; bumped whenever the snapshot shape changes
/// incompatibly. Restore also accepts versions 1 (pre-tiering) and 2
/// (pre-admission): every newer field defaults to the empty state such a
/// run was necessarily in.
pub const SNAPSHOT_VERSION: u32 = 3;

/// Serde default for [`Snapshot::next_migration_id`] (v1 snapshots never
/// allocated one).
fn migration_id_base() -> u64 {
    1u64 << 41
}

/// Skip predicate: the id counter is omitted while still at its base, so
/// a run that never migrated writes a v1-shaped snapshot.
fn at_migration_id_base(id: &u64) -> bool {
    *id == migration_id_base()
}

/// Skip predicate for the zero-valued migration counters.
fn u64_is_zero(v: &u64) -> bool {
    *v == 0
}

/// Skip predicate for the zero-valued green-byte accumulator.
fn f64_is_zero(v: &f64) -> bool {
    *v == 0.0
}

/// One site's share of a [`Snapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteSnapshot {
    /// Full mutable cluster state (disks, queues, write log, cache,
    /// failure tables, lifetime counters).
    pub cluster: ClusterSnapshot,
    /// Battery charge and cumulative loss counters (spec excluded — it is
    /// config-derived and may contain non-finite sentinel values).
    pub battery: BatteryState,
    /// Per-slot energy accounting from slot 0 to the cursor.
    pub ledger: EnergyLedger,
    /// What the forecaster has learned (EWMA table, noise-RNG position).
    pub forecaster: ForecasterState,
    /// Gears powered per simulated slot.
    pub gears_series: Vec<usize>,
    /// Round-robin cursor of the batch-spread executor.
    pub rr_cursor: usize,
    /// Per-disk spin-up counts at the last failure check.
    pub prev_spinups: Vec<u64>,
    /// Total batch bytes executed at this site so far.
    pub executed_batch_bytes: u64,
}

/// The full mid-run state of a simulation, serializable as JSON.
///
/// Produced by [`crate::simulation::Simulation::snapshot`]; consumed by
/// [`crate::simulation::SimulationBuilder::resume_from`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] at write time).
    pub version: u32,
    /// The config the checkpointed run was executing. A resume may supply
    /// a *variant* config (branching); the world keys below pin the parts
    /// that must not change.
    pub cfg: ExperimentConfig,
    /// Cache keys of the world components the run was built over (see
    /// [`crate::world::world_keys`]). The world itself is never embedded;
    /// restore re-materialises (or cache-hits) it from the resume config
    /// and refuses configs whose keys diverge — those would replay a
    /// different workload/trace/layout under state that never saw it.
    pub world_keys: Vec<String>,
    /// Index of the next slot to simulate.
    pub cursor: usize,
    /// Per-site state; index 0 is the home site.
    pub sites: Vec<SiteSnapshot>,
    /// Every batch job admitted so far (including repair jobs), with
    /// progress.
    pub jobs: Vec<BatchJob>,
    /// Indices into `jobs` of still-pending jobs, in submission order.
    pub active_jobs: Vec<usize>,
    /// Admission cursor into the workload's batch population.
    pub arrivals_cursor: usize,
    /// Batch completion accounting so far.
    pub batch_report: BatchReport,
    /// Interactive latency distribution so far.
    pub hist: LogHistogram,
    /// Repair-job table as sorted `(job id, disk)` pairs.
    pub repair_jobs: Vec<(u64, usize)>,
    /// Next repair-job id to allocate.
    pub next_repair_id: u64,
    /// Disk repairs completed so far.
    pub repairs_completed: u64,
    /// Migration-job table as `(job id, payload)` pairs sorted by id.
    /// All five migration fields default (and are omitted at their
    /// defaults), so v1 snapshots parse and a tiering-off run still writes
    /// a v1-shaped snapshot.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub migration_jobs: Vec<(u64, crate::simulation::MigrationInfo)>,
    /// Next migration-job id to allocate.
    #[serde(default = "migration_id_base", skip_serializing_if = "at_migration_id_base")]
    pub next_migration_id: u64,
    /// Migrations completed so far.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub migrations_completed: u64,
    /// Migration bytes executed so far.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub migrated_bytes: u64,
    /// Green-fraction-weighted migration bytes so far.
    #[serde(default, skip_serializing_if = "f64_is_zero")]
    pub migrated_green_bytes: f64,
    /// Jobs the admission gate is holding, as `(job, slots held)` pairs in
    /// hold order. Like the migration fields, the five admission fields
    /// default (and are omitted at their defaults), so v1/v2 snapshots
    /// parse and an admission-off run writes a v2-shaped snapshot. The
    /// slot-scoped admission *queue* is never captured — it is empty at
    /// every slot boundary.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub admission_held: Vec<(BatchJob, usize)>,
    /// Jobs the gate has accepted so far.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub admission_accepted: u64,
    /// Defer decisions so far (a job held twice counts twice).
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub admission_deferred: u64,
    /// Jobs the gate has turned away so far.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub admission_rejected: u64,
    /// Bytes of turned-away work so far.
    #[serde(default, skip_serializing_if = "u64_is_zero")]
    pub admission_rejected_bytes: u64,
}

impl Snapshot {
    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialises")
    }

    /// Deserialize from a JSON string.
    pub fn from_json(json: &str) -> Result<Snapshot, String> {
        let snap: Snapshot =
            serde_json::from_str(json).map_err(|e| format!("malformed snapshot: {e}"))?;
        if !(1..=SNAPSHOT_VERSION).contains(&snap.version) {
            return Err(format!(
                "snapshot version {} not supported (this build reads versions 1 through {})",
                snap.version, SNAPSHOT_VERSION
            ));
        }
        Ok(snap)
    }

    /// Write the snapshot to `path` atomically (write a sibling temp file,
    /// then rename), so a crash mid-write never leaves a truncated
    /// checkpoint where a good one stood.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(self.to_json().as_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Read a snapshot previously written by [`Snapshot::save`].
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let mut json = String::new();
        std::fs::File::open(path)
            .and_then(|mut f| f.read_to_string(&mut json))
            .map_err(|e| format!("cannot read snapshot {}: {e}", path.display()))?;
        Snapshot::from_json(&json)
    }
}
