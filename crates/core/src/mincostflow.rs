//! Min-cost max-flow via successive shortest paths.
//!
//! The matcher's assignment problem (batch work → forecast slots) is a
//! transportation problem; this module solves it exactly with the
//! Bellman-Ford(SPFA)-based successive-shortest-path algorithm, pushing the
//! full bottleneck along each augmenting path. Graphs here are tiny (tens
//! of nodes, hundreds of edges — deadline groups × horizon slots), so
//! SPFA's simplicity wins over Dijkstra-with-potentials.
//!
//! Costs are `i64` per unit of flow; capacities are `i64`. Negative-cost
//! *edges* are allowed as long as the graph has no negative cycle (the
//! matcher never creates one).

/// An edge in the flow network (residual edges are stored explicitly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Edge {
    to: usize,
    rev: usize,
    cap: i64,
    cost: i64,
}

/// A min-cost max-flow problem instance.
///
/// The instance is reusable: [`MinCostFlow::reset`] clears the network while
/// keeping every allocation (adjacency lists, SPFA work vectors), so a hot
/// loop that solves one instance per slot allocates nothing after warm-up.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinCostFlow {
    graph: Vec<Vec<Edge>>,
    /// Live node count; `graph` may hold spare cleared rows beyond it.
    nodes: usize,
    /// `(from, index-in-from)` of every user-added edge, for flow queries.
    handles: Vec<(usize, usize)>,
    // SPFA scratch, hoisted out of `solve` so repeated solves reuse it.
    dist: Vec<i64>,
    in_queue: Vec<bool>,
    prev: Vec<Option<(usize, usize)>>,
    queue: std::collections::VecDeque<usize>,
}

/// Identifier of an added edge, usable to query its final flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

/// Result of a [`MinCostFlow::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Total flow pushed.
    pub flow: i64,
    /// Total cost of that flow.
    pub cost: i64,
}

impl MinCostFlow {
    /// An empty network with `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut g = MinCostFlow::default();
        g.reset(n);
        g
    }

    /// Drop every edge and resize to `n` nodes, keeping all allocations.
    /// After `reset(n)` the instance is indistinguishable from `new(n)`.
    pub fn reset(&mut self, n: usize) {
        for adj in &mut self.graph {
            adj.clear();
        }
        if self.graph.len() < n {
            self.graph.resize_with(n, Vec::new);
        }
        self.nodes = n;
        self.handles.clear();
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Add a directed edge `from → to` with capacity `cap ≥ 0` and per-unit
    /// cost. Returns a handle to query the edge's flow after solving.
    ///
    /// # Panics
    ///
    /// If `cap` is negative, either node is out of range, or the edge is a
    /// self-loop.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: i64, cost: i64) -> EdgeId {
        assert!(cap >= 0, "capacity must be non-negative");
        assert!(from < self.nodes && to < self.nodes, "node out of range");
        assert_ne!(from, to, "self-loops are not supported");
        let fwd_idx = self.graph[from].len();
        let rev_idx = self.graph[to].len();
        self.graph[from].push(Edge { to, rev: rev_idx, cap, cost });
        self.graph[to].push(Edge { to: from, rev: fwd_idx, cap: 0, cost: -cost });
        self.handles.push((from, fwd_idx));
        EdgeId(self.handles.len() - 1)
    }

    /// Flow currently on an edge (meaningful after `solve`).
    #[must_use]
    pub fn flow_on(&self, id: EdgeId) -> i64 {
        let (from, idx) = self.handles[id.0];
        let e = self.graph[from][idx];
        // Flow = residual capacity of the reverse edge.
        self.graph[e.to][e.rev].cap
    }

    /// Number of user-added edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.handles.len()
    }

    /// The capacity and per-unit cost an edge was last configured with
    /// (its pre-solve parameters — any flow pushed by `solve` is added
    /// back, so the answer is stable across solves).
    #[must_use]
    pub fn edge_params(&self, id: EdgeId) -> (i64, i64) {
        let (from, idx) = self.handles[id.0];
        let e = self.graph[from][idx];
        (e.cap + self.graph[e.to][e.rev].cap, e.cost)
    }

    /// Zero every edge's flow, restoring each to its configured capacity.
    /// After `rewind` the network is indistinguishable from one freshly
    /// built with the same `add_edge` sequence — the warm-start entry
    /// point: rewind, re-price changed arcs with [`Self::set_edge`], and
    /// re-solve.
    pub fn rewind(&mut self) {
        for &(from, idx) in &self.handles {
            let (to, rev) = {
                let e = &self.graph[from][idx];
                (e.to, e.rev)
            };
            let pushed = self.graph[to][rev].cap;
            if pushed != 0 {
                self.graph[to][rev].cap = 0;
                self.graph[from][idx].cap += pushed;
            }
        }
    }

    /// Re-price an existing edge in place: set its capacity and per-unit
    /// cost without touching the graph topology. The edge must carry no
    /// flow (call [`Self::rewind`] first); the reverse edge's cost is kept
    /// consistent.
    ///
    /// # Panics
    ///
    /// If `cap` is negative or the edge still carries flow.
    pub fn set_edge(&mut self, id: EdgeId, cap: i64, cost: i64) {
        assert!(cap >= 0, "capacity must be non-negative");
        let (from, idx) = self.handles[id.0];
        let (to, rev) = {
            let e = &self.graph[from][idx];
            (e.to, e.rev)
        };
        assert_eq!(self.graph[to][rev].cap, 0, "edge carries flow; rewind first");
        let e = &mut self.graph[from][idx];
        e.cap = cap;
        e.cost = cost;
        self.graph[to][rev].cost = -cost;
    }

    /// Push up to `max_flow` units from `s` to `t` at minimum total cost.
    /// Stops early when no augmenting path remains (the returned flow is
    /// then the max flow ≤ `max_flow`).
    ///
    /// # Panics
    ///
    /// If `s` or `t` is out of range.
    pub fn solve(&mut self, s: usize, t: usize, max_flow: i64) -> FlowResult {
        assert!(s < self.nodes && t < self.nodes);
        let n = self.nodes;
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        let MinCostFlow { graph, dist, in_queue, prev, queue, .. } = self;
        while total_flow < max_flow {
            // SPFA shortest path by cost in the residual graph.
            dist.clear();
            dist.resize(n, i64::MAX);
            in_queue.clear();
            in_queue.resize(n, false);
            prev.clear();
            prev.resize(n, None);
            dist[s] = 0;
            queue.clear();
            queue.push_back(s);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for (i, e) in graph[u].iter().enumerate() {
                    if e.cap > 0 && du != i64::MAX && du + e.cost < dist[e.to] {
                        dist[e.to] = du + e.cost;
                        prev[e.to] = Some((u, i));
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break; // no augmenting path
            }
            // Bottleneck along the path.
            let mut bottleneck = max_flow - total_flow;
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                bottleneck = bottleneck.min(graph[u][i].cap);
                v = u;
            }
            // Apply.
            let mut v = t;
            while let Some((u, i)) = prev[v] {
                graph[u][i].cap -= bottleneck;
                let rev = graph[u][i].rev;
                graph[v][rev].cap += bottleneck;
                v = u;
            }
            total_flow += bottleneck;
            total_cost += bottleneck * dist[t];
        }
        FlowResult { flow: total_flow, cost: total_cost }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 3);
        let r = g.solve(0, 1, 10);
        assert_eq!(r, FlowResult { flow: 5, cost: 15 });
        assert_eq!(g.flow_on(e), 5);
    }

    #[test]
    fn respects_max_flow_cap() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 100, 1);
        let r = g.solve(0, 1, 7);
        assert_eq!(r, FlowResult { flow: 7, cost: 7 });
    }

    #[test]
    fn prefers_cheap_path_first() {
        // Two parallel paths: 0→1→3 (cost 1+1) and 0→2→3 (cost 5+5).
        let mut g = MinCostFlow::new(4);
        let cheap_a = g.add_edge(0, 1, 3, 1);
        g.add_edge(1, 3, 3, 1);
        let dear_a = g.add_edge(0, 2, 3, 5);
        g.add_edge(2, 3, 3, 5);
        let r = g.solve(0, 3, 4);
        assert_eq!(r.flow, 4);
        // 3 units cheap (cost 2 each) + 1 unit dear (cost 10): total 16.
        assert_eq!(r.cost, 16);
        assert_eq!(g.flow_on(cheap_a), 3);
        assert_eq!(g.flow_on(dear_a), 1);
    }

    #[test]
    fn reroutes_through_residual_edges() {
        // Classic example where the greedy shortest path must be partially
        // undone via the residual graph for optimality.
        //   0→1 cap1 cost1, 0→2 cap1 cost2, 1→2 cap1 cost-2 is avoided;
        // use a standard diamond instead:
        //   0→1 (2, 1), 0→2 (1, 4), 1→2 (1, 1), 1→3 (1, 5), 2→3 (2, 1).
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 2, 1);
        g.add_edge(0, 2, 1, 4);
        g.add_edge(1, 2, 1, 1);
        g.add_edge(1, 3, 1, 5);
        g.add_edge(2, 3, 2, 1);
        let r = g.solve(0, 3, 3);
        assert_eq!(r.flow, 3);
        // Optimal: 0→1→2→3 (3), 0→1→3 (7)?? cost = 1+1+1 + 1+5 = 9 for 2
        // units; third unit 0→2→3 = 5. Total 14.
        assert_eq!(r.cost, 14);
    }

    #[test]
    fn disconnected_sink_gets_zero_flow() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 5, 1);
        let r = g.solve(0, 2, 5);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn transportation_instance_matches_brute_force() {
        // 2 suppliers × 3 consumers; verify against exhaustive enumeration.
        let supply = [4i64, 3];
        let demand = [2i64, 3, 2];
        let cost = [[8i64, 6, 10], [9, 12, 13]];
        // Build: 0 = source, 1-2 suppliers, 3-5 consumers, 6 = sink.
        let mut g = MinCostFlow::new(7);
        for (i, &s) in supply.iter().enumerate() {
            g.add_edge(0, 1 + i, s, 0);
        }
        let mut handles = Vec::new();
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                handles.push(g.add_edge(1 + i, 3 + j, i64::MAX / 4, c));
            }
        }
        for (j, &d) in demand.iter().enumerate() {
            g.add_edge(3 + j, 6, d, 0);
        }
        let r = g.solve(0, 6, i64::MAX / 4);
        assert_eq!(r.flow, 7, "all demand satisfiable");

        // Brute force over all feasible integral assignments.
        let mut best = i64::MAX;
        for a00 in 0..=2i64 {
            for a01 in 0..=3i64 {
                for a02 in 0..=2i64 {
                    if a00 + a01 + a02 > supply[0] {
                        continue;
                    }
                    let (a10, a11, a12) = (2 - a00, 3 - a01, 2 - a02);
                    if a10 < 0 || a11 < 0 || a12 < 0 || a10 + a11 + a12 > supply[1] {
                        continue;
                    }
                    let c = a00 * cost[0][0]
                        + a01 * cost[0][1]
                        + a02 * cost[0][2]
                        + a10 * cost[1][0]
                        + a11 * cost[1][1]
                        + a12 * cost[1][2];
                    best = best.min(c);
                }
            }
        }
        assert_eq!(r.cost, best, "SSP must be optimal");
        // Flow conservation on the reported per-edge flows.
        let shipped: i64 = handles.iter().map(|&h| g.flow_on(h)).sum();
        assert_eq!(shipped, 7);
    }

    #[test]
    fn reset_reuses_like_new() {
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 3, 1);
        g.add_edge(1, 3, 3, 1);
        let _ = g.solve(0, 3, 10);
        // Reuse the instance for a different, smaller problem: results must
        // match a fresh network exactly.
        g.reset(2);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let e = g.add_edge(0, 1, 5, 3);
        let r = g.solve(0, 1, 10);
        assert_eq!(r, FlowResult { flow: 5, cost: 15 });
        assert_eq!(g.flow_on(e), 5);
    }

    #[test]
    fn zero_capacity_edges_carry_nothing() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 0, 1);
        let r = g.solve(0, 1, 5);
        assert_eq!(r.flow, 0);
        assert_eq!(g.flow_on(e), 0);
    }

    #[test]
    fn rewind_restores_configured_capacities() {
        let mut g = MinCostFlow::new(4);
        let a = g.add_edge(0, 1, 3, 1);
        let b = g.add_edge(1, 3, 3, 1);
        let _ = g.solve(0, 3, 10);
        assert_eq!(g.flow_on(a), 3);
        g.rewind();
        assert_eq!(g.flow_on(a), 0);
        assert_eq!(g.flow_on(b), 0);
        assert_eq!(g.edge_params(a), (3, 1));
        // Re-solving the rewound network reproduces the original result.
        let r = g.solve(0, 3, 10);
        assert_eq!(r, FlowResult { flow: 3, cost: 6 });
    }

    #[test]
    fn set_edge_reprices_like_a_rebuild() {
        // Warm path: solve, rewind, re-price, re-solve — must equal a cold
        // network built directly with the new parameters.
        let mut warm = MinCostFlow::new(4);
        let wa = warm.add_edge(0, 1, 3, 1);
        let wb = warm.add_edge(1, 3, 3, 1);
        let wc = warm.add_edge(0, 3, 2, 10);
        let _ = warm.solve(0, 3, 10);
        warm.rewind();
        warm.set_edge(wa, 5, 2);
        warm.set_edge(wb, 1, 2);
        let rw = warm.solve(0, 3, 10);

        let mut cold = MinCostFlow::new(4);
        let ca = cold.add_edge(0, 1, 5, 2);
        let cb = cold.add_edge(1, 3, 1, 2);
        let cc = cold.add_edge(0, 3, 2, 10);
        let rc = cold.solve(0, 3, 10);
        assert_eq!(rw, rc);
        assert_eq!(warm.flow_on(wa), cold.flow_on(ca));
        assert_eq!(warm.flow_on(wb), cold.flow_on(cb));
        assert_eq!(warm.flow_on(wc), cold.flow_on(cc));
    }

    #[test]
    fn edge_params_reports_configuration_across_solves() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 3);
        assert_eq!(g.edge_params(e), (5, 3));
        let _ = g.solve(0, 1, 10);
        assert_eq!(g.edge_params(e), (5, 3), "params are pre-solve values");
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "rewind first")]
    fn set_edge_with_flow_panics() {
        let mut g = MinCostFlow::new(2);
        let e = g.add_edge(0, 1, 5, 3);
        let _ = g.solve(0, 1, 10);
        g.set_edge(e, 7, 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(1, 1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn negative_capacity_panics() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, -1, 1);
    }
}
