//! Experiment configuration.
//!
//! An [`ExperimentConfig`] fully determines a run: cluster, workload,
//! energy system (source, battery, grid, forecaster), policy, seed and
//! horizon. All fields are serde-serialisable so the bench harness can
//! archive the exact configuration next to every result.

use crate::policy::PolicyKind;
use gm_energy::battery::BatterySpec;
use gm_energy::forecast::{
    EwmaForecaster, Forecaster, NoisyOracle, OracleForecaster, PersistenceForecaster,
};
use gm_energy::grid::Grid;
use gm_energy::solar::{SolarFarm, SolarFarmSpec, SolarProfile};
use gm_energy::supply::{MixedSource, PowerSource};
use gm_energy::wind::{TurbineSpec, WindFarm, WindProfile};
use gm_sim::time::SimDuration;
use gm_sim::{RngFactory, SlotClock, TimeSeries};
use gm_storage::ClusterSpec;
use gm_workload::trace::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Which renewable source supplies the site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceKind {
    /// No on-site renewables (pure-grid reference).
    None,
    /// PV farm of the given area.
    Solar {
        /// Total panel area (m²).
        area_m2: f64,
        /// Weather preset.
        profile: SolarProfile,
    },
    /// Wind turbine of the given nameplate power.
    Wind {
        /// Rated power (W).
        rated_w: f64,
        /// Wind climate preset.
        profile: WindProfile,
    },
    /// Solar + wind.
    Mixed {
        /// PV area (m²).
        area_m2: f64,
        /// Solar weather preset.
        solar_profile: SolarProfile,
        /// Turbine rated power (W).
        rated_w: f64,
        /// Wind climate preset.
        wind_profile: WindProfile,
    },
    /// A measured production trace in the interchange CSV format
    /// (`gm_energy::traces`), read from disk at materialisation time —
    /// the substitution point for real PV-logger data.
    TraceCsv {
        /// Label for reports.
        label: String,
        /// Path to the CSV file.
        path: String,
    },
}

/// Why a configuration could not be materialised into a runnable
/// simulation.
///
/// `Display` keeps the exact wording the old panicking path used, so
/// `materialize` (the compatibility wrapper) panics with byte-identical
/// messages.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A [`SourceKind::TraceCsv`] file could not be read from disk.
    TraceRead {
        /// Trace label from the config.
        label: String,
        /// Path that failed to open.
        path: String,
        /// Underlying I/O error text.
        error: String,
    },
    /// A [`SourceKind::TraceCsv`] file was read but failed to parse.
    TraceParse {
        /// Trace label from the config.
        label: String,
        /// Parse error text.
        error: String,
    },
    /// The configuration itself is unusable (e.g. zero slots).
    Invalid {
        /// What is wrong.
        message: String,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TraceRead { label, path, error } => {
                write!(f, "trace {label}: cannot read {path}: {error}")
            }
            ConfigError::TraceParse { label, error } => write!(f, "trace {label}: {error}"),
            ConfigError::Invalid { message } => f.write_str(message),
        }
    }
}

impl std::error::Error for ConfigError {}

impl SourceKind {
    /// Materialise the source into a frozen per-slot power trace (W).
    ///
    /// Panics if a [`SourceKind::TraceCsv`] file is missing or malformed —
    /// a configured measurement file that cannot be read is a setup error,
    /// not a condition to silently zero-fill. Prefer [`try_materialize`]
    /// (`SourceKind::try_materialize`) when the caller wants to report the
    /// problem instead.
    pub fn materialize(&self, clock: SlotClock, slots: usize, rngs: &RngFactory) -> TimeSeries {
        self.try_materialize(clock, slots, rngs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Materialise the source, reporting a missing or malformed trace file
    /// as a [`ConfigError`] instead of panicking.
    pub fn try_materialize(
        &self,
        clock: SlotClock,
        slots: usize,
        rngs: &RngFactory,
    ) -> Result<TimeSeries, ConfigError> {
        Ok(match *self {
            SourceKind::None => TimeSeries::zeros(clock, slots),
            SourceKind::TraceCsv { ref label, ref path } => {
                let csv = std::fs::read_to_string(path).map_err(|e| ConfigError::TraceRead {
                    label: label.clone(),
                    path: path.clone(),
                    error: e.to_string(),
                })?;
                let trace = gm_energy::traces::trace_from_csv(&csv, clock).map_err(|e| {
                    ConfigError::TraceParse { label: label.clone(), error: e.to_string() }
                })?;
                // Re-window onto the requested horizon (zero-padded).
                TimeSeries::from_values(clock, (0..slots).map(|s| trace.get(s)).collect())
            }
            SourceKind::Solar { area_m2, profile } => {
                SolarFarm::new(SolarFarmSpec::with_area(area_m2, profile), rngs)
                    .materialize(clock, slots)
            }
            SourceKind::Wind { rated_w, profile } => {
                WindFarm::new(TurbineSpec::small_site(rated_w), profile, rngs)
                    .materialize(clock, slots)
            }
            SourceKind::Mixed { area_m2, solar_profile, rated_w, wind_profile } => {
                MixedSource::new()
                    .with(Box::new(SolarFarm::new(
                        SolarFarmSpec::with_area(area_m2, solar_profile),
                        rngs,
                    )))
                    .with(Box::new(WindFarm::new(
                        TurbineSpec::small_site(rated_w),
                        wind_profile,
                        rngs,
                    )))
                    .materialize(clock, slots)
            }
        })
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            SourceKind::None => "no-renewables".into(),
            SourceKind::Solar { area_m2, profile } => format!("{}:{area_m2:.0}m2", profile.label()),
            SourceKind::Wind { rated_w, profile } => {
                format!("{}:{:.0}kW", profile.label(), rated_w / 1000.0)
            }
            SourceKind::Mixed { .. } => "mixed".into(),
            SourceKind::TraceCsv { label, .. } => format!("trace:{label}"),
        }
    }
}

/// Which production forecaster the policy plans with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastKind {
    /// Error-free (the era's validation convention).
    Oracle,
    /// Same-hour-yesterday persistence.
    Persistence,
    /// Per-hour-of-day EWMA with the given smoothing factor.
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Oracle with multiplicative lognormal error.
    Noisy {
        /// Error coefficient of variation.
        cv: f64,
    },
}

impl ForecastKind {
    /// Build the forecaster over a materialised trace.
    pub fn build(
        &self,
        trace: &TimeSeries,
        clock: SlotClock,
        rngs: &RngFactory,
    ) -> Box<dyn Forecaster + Send> {
        match *self {
            ForecastKind::Oracle => Box::new(OracleForecaster::new(trace.clone())),
            ForecastKind::Persistence => Box::new(PersistenceForecaster::new(trace.clone())),
            ForecastKind::Ewma { alpha } => {
                Box::new(EwmaForecaster::new(alpha, clock.slots_per_day()))
            }
            ForecastKind::Noisy { cv } => Box::new(NoisyOracle::new(trace.clone(), cv, rngs)),
        }
    }
}

/// When the harness lets the battery discharge into a deficit.
///
/// Charging is always eager (surplus is otherwise curtailed); *discharge*
/// timing is a real design choice: draining eagerly may leave nothing for
/// the expensive/dirty evening peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DischargeStrategy {
    /// Cover any deficit as soon as it appears (the common default).
    #[default]
    Eager,
    /// Discharge only while the grid is at peak price/carbon
    /// (07:00–23:00); off-peak deficits go straight to the (cheap, clean)
    /// grid, preserving charge for the next peak.
    PeakOnly,
    /// Keep the given fraction of the usable window in reserve except
    /// during the evening carbon peak (17:00–23:00), when the reserve may
    /// be spent too.
    Reserve(f64),
}

/// The temperature-tiering layer of an experiment (None = every object
/// stays on replication forever, the historic behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieringConfig {
    /// Classifier smoothing and hot/cold thresholds.
    pub ewma: gm_storage::EwmaParams,
    /// Ceiling on the fraction of objects allowed onto erasure coding.
    pub cold_fraction_target: f64,
    /// EC data shards.
    pub ec_k: usize,
    /// EC parity shards.
    pub ec_m: usize,
    /// Deadline window migration jobs get (they enter the deferrable pool,
    /// so the matcher steers their bytes into green slots within this
    /// window).
    pub migration_deadline_hours: u64,
    /// Per-direction cap on objects selected per slot (bounds the burst).
    pub max_migrations_per_slot: usize,
}

impl Default for TieringConfig {
    fn default() -> Self {
        TieringConfig {
            ewma: gm_storage::EwmaParams::default(),
            cold_fraction_target: 0.5,
            ec_k: 4,
            ec_m: 2,
            migration_deadline_hours: 24,
            max_migrations_per_slot: 512,
        }
    }
}

/// Streaming admission control (None = accept everything, the historic
/// behaviour).
///
/// With admission on, newly arriving deferrable batch jobs pass a
/// *Cucumber-style* energy-aware gate before they ever reach the planner:
/// a job is accepted only while the `alpha`-confidence **lower band** of
/// the green-energy forecast over its feasible window covers the energy
/// already committed to accepted work plus its own demand. Jobs that fail
/// the check are held (deferred) for up to `defer_slots` slots — arrivals
/// are re-examined each slot as the forecast rolls forward — and rejected
/// once deferral can no longer help. Rejected work never enters the job
/// pool, so the matcher prices only admitted bytes. Internally spawned
/// repair and migration jobs bypass admission: they are obligations, not
/// offered load.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Confidence level of the green lower band in `[0.5, 1)`: higher
    /// alpha = a more pessimistic supply estimate = a tighter gate.
    pub alpha: f64,
    /// How many slots an arrival may be held awaiting headroom before the
    /// gate must decide (0 = decide on arrival).
    pub defer_slots: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { alpha: 0.9, defer_slots: 4 }
    }
}

/// The energy side of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Renewable source.
    pub source: SourceKind,
    /// ESD, if any.
    pub battery: Option<BatterySpec>,
    /// Grid backup.
    pub grid: Grid,
    /// Forecaster the policy plans with.
    pub forecast: ForecastKind,
    /// Battery discharge timing.
    #[serde(default)]
    pub discharge: DischargeStrategy,
}

/// One site of a (possibly geo-federated) experiment: a cluster, its
/// renewable supply, the forecaster planning over that supply, and an
/// optional battery.
///
/// A single-site experiment never needs to touch this type — the flat
/// fields of [`ExperimentConfig`] *are* the one-site sugar, and
/// [`ExperimentConfig::site_configs`] derives the equivalent one-element
/// site list from them. Multi-site experiments install explicit sites via
/// [`ExperimentConfig::with_sites`]; site 0 is always the **home** site,
/// which hosts the interactive workload and the failure-injection dice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteConfig {
    /// Label for reports and per-site breakdowns.
    pub name: String,
    /// The site's cluster.
    pub cluster: ClusterSpec,
    /// The site's renewable supply.
    pub source: SourceKind,
    /// Forecaster planning over this site's supply.
    pub forecast: ForecastKind,
    /// The site's battery, if any.
    pub battery: Option<BatterySpec>,
    /// Longitude offset in whole hours: the site's materialised production
    /// trace is rotated so its diurnal peak arrives this many hours later
    /// in simulation time (a site this many time zones west of the home
    /// site). 0 for the home site.
    #[serde(default)]
    pub utc_offset_hours: i64,
}

impl SiteConfig {
    /// Materialise this site's production trace: the source is materialised
    /// with `rngs`, then rotated by [`SiteConfig::utc_offset_hours`] so an
    /// offset site's solar noon lands later in simulation time.
    pub fn try_materialize_trace(
        &self,
        clock: SlotClock,
        slots: usize,
        rngs: &RngFactory,
    ) -> Result<TimeSeries, ConfigError> {
        let base = self.source.try_materialize(clock, slots, rngs)?;
        let shift = self.offset_slots(clock, slots);
        if shift == 0 {
            return Ok(base);
        }
        let rotated =
            (0..slots).map(|s| base.get((s + slots - shift) % slots)).collect::<Vec<f64>>();
        Ok(TimeSeries::from_values(clock, rotated))
    }

    /// The trace rotation in slots implied by the UTC offset (modulo the
    /// horizon; 0 when the offset is smaller than one slot).
    fn offset_slots(&self, clock: SlotClock, slots: usize) -> usize {
        if slots == 0 || self.utc_offset_hours == 0 {
            return 0;
        }
        let shift =
            (self.utc_offset_hours as f64 * 3600.0 / clock.width().as_secs_f64()).round() as i64;
        shift.rem_euclid(slots as i64) as usize
    }
}

/// A complete, reproducible experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cluster to simulate.
    pub cluster: ClusterSpec,
    /// Workload to drive it with.
    pub workload: WorkloadSpec,
    /// Energy system.
    pub energy: EnergyConfig,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Disk-failure injection (None = reliable hardware). When enabled,
    /// failures spawn repair jobs that the policy schedules like any other
    /// deferrable work, and exposure windows are tracked as data-loss
    /// events.
    pub failures: Option<gm_storage::FailureSpec>,
    /// Master seed (workload, weather, placement noise).
    pub seed: u64,
    /// Number of slots to run.
    pub slots: usize,
    /// Slot clock.
    pub clock: SlotClock,
    /// Geo-federated sites. Empty (the default) means the flat fields above
    /// describe the single site; when non-empty, `sites[0]` is the home
    /// site and must mirror the flat `cluster`/`energy` fields (use
    /// [`Self::with_sites`], which keeps them in sync).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub sites: Vec<SiteConfig>,
    /// Per-unit WAN transfer cost the matcher charges for placing batch
    /// work at a non-home site, on the [`crate::matcher::BROWN_COST`] scale
    /// (one unit = [`crate::matcher::UNIT_BYTES`]). 0 = free transfers.
    #[serde(default)]
    pub wan_cost_per_unit: i64,
    /// Let the matcher warm-start its min-cost-flow network between slots
    /// (re-pricing only the arcs whose bins changed) instead of rebuilding
    /// it from scratch every solve. The two paths produce byte-identical
    /// schedules — this knob exists for A/B timing and fuzzing, not for
    /// accuracy trade-offs. Defaults to `true`; omitted from archived JSON
    /// unless disabled.
    #[serde(default = "default_warm_start", skip_serializing_if = "is_warm_default")]
    pub matcher_warm_start: bool,
    /// Run the per-site portions of the Forecast and Execute phases of a
    /// multi-site slot on the worker pool instead of site-by-site. The two
    /// paths produce byte-identical traces at any thread count (job bytes
    /// are assigned in a sequential shadow pass; only the per-site disk
    /// mechanics fan out) — this knob exists for A/B verification and
    /// fuzzing, not for accuracy trade-offs. Single-site runs ignore it.
    /// Defaults to `true`; omitted from archived JSON unless disabled.
    #[serde(default = "default_warm_start", skip_serializing_if = "is_warm_default")]
    pub site_parallel: bool,
    /// Temperature-tiered storage: hot/warm/cold classification with
    /// erasure-coded demotion of cold objects, migration bytes scheduled
    /// through the matcher. `None` (the default, omitted from archived
    /// JSON) keeps the historic uniform-replication behaviour and leaves
    /// every trace byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub tiering: Option<TieringConfig>,
    /// Streaming admission control over newly arriving batch jobs (see
    /// [`AdmissionConfig`]). `None` (the default, omitted from archived
    /// JSON) accepts every arrival and leaves every trace byte-identical.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub admission: Option<AdmissionConfig>,
    /// Pull batch arrivals from an incremental event feed instead of the
    /// materialised population cursor. With no external feed attached the
    /// builder self-attaches a replay feed over the workload, which is
    /// byte-identical to the cursor walk — this knob exists for service
    /// mode (`gm-serve`) and for fuzzing the equivalence, not for accuracy
    /// trade-offs. Defaults to `false`; omitted from archived JSON.
    #[serde(default, skip_serializing_if = "is_false")]
    pub feed_arrivals: bool,
}

fn default_warm_start() -> bool {
    true
}

fn is_warm_default(on: &bool) -> bool {
    *on
}

fn is_false(on: &bool) -> bool {
    !*on
}

impl ExperimentConfig {
    /// A small, fast configuration for tests and the quickstart example:
    /// 6-server cluster, scaled-down week, modest PV + LI battery.
    pub fn small_demo(seed: u64) -> Self {
        let cluster = ClusterSpec::small();
        let workload = WorkloadSpec::small_week(cluster.objects);
        ExperimentConfig {
            cluster,
            workload,
            energy: EnergyConfig {
                source: SourceKind::Solar { area_m2: 15.0, profile: SolarProfile::SunnySummer },
                battery: Some(BatterySpec::lithium_ion(10_000.0)),
                grid: Grid::typical_eu(),
                forecast: ForecastKind::Oracle,
                discharge: DischargeStrategy::Eager,
            },
            policy: PolicyKind::GreenMatch { delay_fraction: 1.0 },
            failures: None,
            seed,
            slots: 7 * 24,
            clock: SlotClock::hourly(),
            sites: Vec::new(),
            wan_cost_per_unit: 0,
            matcher_warm_start: true,
            site_parallel: true,
            tiering: None,
            admission: None,
            feed_arrivals: false,
        }
    }

    /// The medium data center of the headline experiments: 48 servers,
    /// full medium week, PV sized at ~1/3 of the zero-brown area, 40 kWh
    /// LI battery.
    pub fn medium(seed: u64) -> Self {
        let cluster = ClusterSpec::medium_dc();
        let workload = WorkloadSpec::medium_week(cluster.objects);
        ExperimentConfig {
            cluster,
            workload,
            energy: EnergyConfig {
                source: SourceKind::Solar { area_m2: 120.0, profile: SolarProfile::SunnySummer },
                battery: Some(BatterySpec::lithium_ion(40_000.0)),
                grid: Grid::typical_eu(),
                forecast: ForecastKind::Oracle,
                discharge: DischargeStrategy::Eager,
            },
            policy: PolicyKind::GreenMatch { delay_fraction: 1.0 },
            failures: None,
            seed,
            slots: 7 * 24,
            clock: SlotClock::hourly(),
            sites: Vec::new(),
            wan_cost_per_unit: 0,
            matcher_warm_start: true,
            site_parallel: true,
            tiering: None,
            admission: None,
            feed_arrivals: false,
        }
    }

    /// The mega stress configuration: the medium data center driven by the
    /// [`WorkloadSpec::mega_week`] million-stream interactive workload
    /// (same aggregate request volume as `medium`, split over 10⁶
    /// sessions). Exists to prove the workload kernel scales — per-slot
    /// synthesis cost follows the *live* stream count, not the population.
    pub fn mega(seed: u64) -> Self {
        let mut cfg = ExperimentConfig::medium(seed);
        cfg.workload = WorkloadSpec::mega_week(cfg.cluster.objects);
        cfg
    }

    /// Horizon as a duration.
    pub fn horizon(&self) -> SimDuration {
        self.clock.width() * self.slots as u64
    }

    // --- chainable builder surface -------------------------------------
    //
    // Start from a preset and override the knobs under study:
    //
    // ```
    // use greenmatch::config::ExperimentConfig;
    // use greenmatch::policy::PolicyKind;
    //
    // let cfg = ExperimentConfig::small_demo(42)
    //     .with_policy(PolicyKind::AllOn)
    //     .with_slots(24);
    // ```

    /// Use the given scheduling policy.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Use any renewable source (see also [`Self::with_solar`] /
    /// [`Self::with_wind`] shorthands).
    #[must_use]
    pub fn with_source(mut self, source: SourceKind) -> Self {
        self.energy.source = source;
        self
    }

    /// Power the site from a PV farm of the given area.
    #[must_use]
    pub fn with_solar(mut self, area_m2: f64, profile: SolarProfile) -> Self {
        self.energy.source = SourceKind::Solar { area_m2, profile };
        self
    }

    /// Power the site from a wind turbine of the given nameplate power.
    #[must_use]
    pub fn with_wind(mut self, rated_w: f64, profile: WindProfile) -> Self {
        self.energy.source = SourceKind::Wind { rated_w, profile };
        self
    }

    /// Install the given battery (`None` removes it; a bare `BatterySpec`
    /// works too, via `Into<Option<_>>`).
    #[must_use]
    pub fn with_battery(mut self, battery: impl Into<Option<BatterySpec>>) -> Self {
        self.energy.battery = battery.into();
        self
    }

    /// Plan with the given production forecaster.
    #[must_use]
    pub fn with_forecast(mut self, forecast: ForecastKind) -> Self {
        self.energy.forecast = forecast;
        self
    }

    /// Enable (or with `None`, disable) disk-failure injection.
    #[must_use]
    pub fn with_failures(mut self, failures: impl Into<Option<gm_storage::FailureSpec>>) -> Self {
        self.failures = failures.into();
        self
    }

    /// Simulate the given number of slots.
    #[must_use]
    pub fn with_slots(mut self, slots: usize) -> Self {
        self.slots = slots;
        self
    }

    /// Use the given master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable or disable the matcher's warm-start path (see
    /// [`Self::matcher_warm_start`]).
    #[must_use]
    pub fn with_matcher_warm_start(mut self, on: bool) -> Self {
        self.matcher_warm_start = on;
        self
    }

    /// Enable or disable per-site phase parallelism (see
    /// [`Self::site_parallel`]).
    #[must_use]
    pub fn with_site_parallel(mut self, on: bool) -> Self {
        self.site_parallel = on;
        self
    }

    /// Enable (or with `None`, disable) temperature-tiered storage (see
    /// [`Self::tiering`]).
    #[must_use]
    pub fn with_tiering(mut self, tiering: impl Into<Option<TieringConfig>>) -> Self {
        self.tiering = tiering.into();
        self
    }

    /// Enable (or with `None`, disable) streaming admission control (see
    /// [`Self::admission`]).
    #[must_use]
    pub fn with_admission(mut self, admission: impl Into<Option<AdmissionConfig>>) -> Self {
        self.admission = admission.into();
        self
    }

    /// Pull batch arrivals through an event feed instead of the population
    /// cursor (see [`Self::feed_arrivals`]).
    #[must_use]
    pub fn with_feed_arrivals(mut self, on: bool) -> Self {
        self.feed_arrivals = on;
        self
    }

    // --- the site layer ------------------------------------------------

    /// Install an explicit (multi-)site list. `sites[0]` becomes the home
    /// site and the flat `cluster`/`energy` fields are overwritten to
    /// mirror it, so code reading the flat fields (planning model, cache
    /// keys, report labels) stays consistent with the site list.
    ///
    /// # Panics
    /// Panics on an empty site list.
    #[must_use]
    pub fn with_sites(mut self, sites: Vec<SiteConfig>) -> Self {
        assert!(!sites.is_empty(), "an experiment needs at least one site");
        self.cluster = sites[0].cluster.clone();
        self.energy.source = sites[0].source.clone();
        self.energy.forecast = sites[0].forecast;
        self.energy.battery = sites[0].battery;
        self.sites = sites;
        self
    }

    /// Charge the matcher the given per-unit WAN cost for cross-site
    /// placement (see [`Self::wan_cost_per_unit`]).
    #[must_use]
    pub fn with_wan_cost(mut self, wan_cost_per_unit: i64) -> Self {
        self.wan_cost_per_unit = wan_cost_per_unit;
        self
    }

    /// Number of sites (1 for the flat single-site form).
    pub fn n_sites(&self) -> usize {
        self.sites.len().max(1)
    }

    /// The effective site list: the explicit `sites`, or the one-site
    /// equivalent of the flat fields when no explicit sites are configured.
    pub fn site_configs(&self) -> Vec<SiteConfig> {
        if self.sites.is_empty() {
            vec![SiteConfig {
                name: "site0".to_string(),
                cluster: self.cluster.clone(),
                source: self.energy.source.clone(),
                forecast: self.energy.forecast,
                battery: self.energy.battery,
                utc_offset_hours: 0,
            }]
        } else {
            self.sites.clone()
        }
    }

    /// Per-site master seed. Site 0 uses the run seed unchanged (so the
    /// single-site path draws exactly the historic streams and shares
    /// cache keys with flat configs); further sites get seeds derived via
    /// splitmix so their weather noise is independent.
    pub fn site_seed(&self, site: usize) -> u64 {
        if site == 0 {
            return self.seed;
        }
        let mut s = self.seed ^ (site as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        gm_sim::rng::splitmix64(&mut s)
    }

    /// Check the home-site mirror invariant: with explicit sites, the flat
    /// fields must equal `sites[0]` (guaranteed by [`Self::with_sites`];
    /// hand-built or deserialised configs are validated here).
    pub fn validate_sites(&self) -> Result<(), ConfigError> {
        let Some(home) = self.sites.first() else { return Ok(()) };
        if home.cluster != self.cluster
            || home.source != self.energy.source
            || home.forecast != self.energy.forecast
            || home.battery != self.energy.battery
        {
            return Err(ConfigError::Invalid {
                message: "sites[0] must mirror the flat cluster/energy fields \
                          (build multi-site configs with with_sites)"
                    .to_string(),
            });
        }
        if home.utc_offset_hours != 0 {
            return Err(ConfigError::Invalid {
                message: "the home site must have utc_offset_hours = 0".to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_materialize_to_requested_length() {
        let rngs = RngFactory::new(1);
        let c = SlotClock::hourly();
        for src in [
            SourceKind::None,
            SourceKind::Solar { area_m2: 50.0, profile: SolarProfile::SunnySummer },
            SourceKind::Wind { rated_w: 10_000.0, profile: WindProfile::SteadyCoastal },
            SourceKind::Mixed {
                area_m2: 50.0,
                solar_profile: SolarProfile::SunnySummer,
                rated_w: 10_000.0,
                wind_profile: WindProfile::SteadyCoastal,
            },
        ] {
            let trace = src.materialize(c, 48, &rngs);
            assert_eq!(trace.len(), 48, "{}", src.label());
            assert!(trace.values().iter().all(|v| *v >= 0.0));
        }
        // None produces exactly zero; mixed at least as much as either part.
        assert_eq!(SourceKind::None.materialize(c, 5, &rngs).sum(), 0.0);
    }

    #[test]
    fn mixed_is_sum_of_parts() {
        let rngs = RngFactory::new(9);
        let c = SlotClock::hourly();
        let solar = SourceKind::Solar { area_m2: 30.0, profile: SolarProfile::SunnySummer }
            .materialize(c, 72, &rngs);
        let wind = SourceKind::Wind { rated_w: 8_000.0, profile: WindProfile::CalmWeek }
            .materialize(c, 72, &rngs);
        let mixed = SourceKind::Mixed {
            area_m2: 30.0,
            solar_profile: SolarProfile::SunnySummer,
            rated_w: 8_000.0,
            wind_profile: WindProfile::CalmWeek,
        }
        .materialize(c, 72, &rngs);
        // Same seed ⇒ same component streams ⇒ exact sum.
        for s in 0..72 {
            assert!((mixed.get(s) - (solar.get(s) + wind.get(s))).abs() < 1e-9);
        }
    }

    #[test]
    fn forecasters_build() {
        let rngs = RngFactory::new(2);
        let c = SlotClock::hourly();
        let trace = TimeSeries::from_values(c, vec![5.0; 48]);
        for kind in [
            ForecastKind::Oracle,
            ForecastKind::Persistence,
            ForecastKind::Ewma { alpha: 0.5 },
            ForecastKind::Noisy { cv: 0.2 },
        ] {
            let mut f = kind.build(&trace, c, &rngs);
            assert_eq!(f.predict(0, 4).len(), 4);
        }
    }

    #[test]
    fn presets_are_consistent() {
        let small = ExperimentConfig::small_demo(1);
        assert_eq!(small.slots, 168);
        assert_eq!(small.horizon(), SimDuration::from_days(7));
        assert_eq!(small.workload.interactive.objects, small.cluster.objects);
        let medium = ExperimentConfig::medium(1);
        assert_eq!(medium.workload.interactive.objects, medium.cluster.objects);
    }

    #[test]
    fn warm_start_knob_defaults_on_and_roundtrips() {
        let cfg = ExperimentConfig::small_demo(3);
        assert!(cfg.matcher_warm_start);
        let json = serde_json::to_string(&cfg).expect("serialises");
        assert!(!json.contains("matcher_warm_start"), "default stays out of archived JSON");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(back.matcher_warm_start, "omitted field deserialises to on");
        let cold = cfg.with_matcher_warm_start(false);
        let json = serde_json::to_string(&cold).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(!back.matcher_warm_start);
    }

    #[test]
    fn site_parallel_knob_defaults_on_and_roundtrips() {
        let cfg = ExperimentConfig::small_demo(3);
        assert!(cfg.site_parallel);
        let json = serde_json::to_string(&cfg).expect("serialises");
        assert!(!json.contains("site_parallel"), "default stays out of archived JSON");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(back.site_parallel, "omitted field deserialises to on");
        let seq = cfg.with_site_parallel(false);
        let json = serde_json::to_string(&seq).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(!back.site_parallel);
    }

    #[test]
    fn tiering_knob_defaults_off_and_roundtrips() {
        let cfg = ExperimentConfig::small_demo(3);
        assert!(cfg.tiering.is_none());
        let json = serde_json::to_string(&cfg).expect("serialises");
        assert!(!json.contains("tiering"), "default stays out of archived JSON");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(back.tiering.is_none(), "omitted field deserialises to off");
        let tiered = cfg.with_tiering(TieringConfig::default());
        let json = serde_json::to_string(&tiered).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.tiering, tiered.tiering);
        assert_eq!(back.tiering.unwrap().ec_k, 4);
    }

    #[test]
    fn admission_knob_defaults_off_and_roundtrips() {
        let cfg = ExperimentConfig::small_demo(3);
        assert!(cfg.admission.is_none());
        assert!(!cfg.feed_arrivals);
        let json = serde_json::to_string(&cfg).expect("serialises");
        assert!(!json.contains("admission"), "default stays out of archived JSON");
        assert!(!json.contains("feed_arrivals"), "default stays out of archived JSON");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert!(back.admission.is_none(), "omitted field deserialises to off");
        assert!(!back.feed_arrivals);
        let gated = cfg.with_admission(AdmissionConfig::default()).with_feed_arrivals(true);
        let json = serde_json::to_string(&gated).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.admission, gated.admission);
        assert!((back.admission.unwrap().alpha - 0.9).abs() < 1e-12);
        assert!(back.feed_arrivals);
    }

    #[test]
    fn mega_preset_keeps_mediums_aggregate_rate() {
        let mega = ExperimentConfig::mega(1);
        let medium = ExperimentConfig::medium(1);
        assert_eq!(mega.workload.interactive.streams, 1_000_000);
        let mega_rate =
            mega.workload.interactive.streams as f64 * mega.workload.interactive.rate_rps;
        let medium_rate =
            medium.workload.interactive.streams as f64 * medium.workload.interactive.rate_rps;
        assert!((mega_rate - medium_rate).abs() < 1e-6);
        assert_eq!(mega.cluster, medium.cluster);
    }

    #[test]
    fn source_shorthands_mirror_with_source() {
        let a = ExperimentConfig::small_demo(1).with_solar(80.0, SolarProfile::SunnySummer);
        let b = ExperimentConfig::small_demo(1)
            .with_source(SourceKind::Solar { area_m2: 80.0, profile: SolarProfile::SunnySummer });
        assert_eq!(a.energy.source, b.energy.source);
        let w = ExperimentConfig::small_demo(1).with_wind(9_000.0, WindProfile::SteadyCoastal);
        assert_eq!(
            w.energy.source,
            SourceKind::Wind { rated_w: 9_000.0, profile: WindProfile::SteadyCoastal }
        );
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = ExperimentConfig::small_demo(3);
        let json = serde_json::to_string(&cfg).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.slots, cfg.slots);
        assert_eq!(back.policy, cfg.policy);
    }
}
