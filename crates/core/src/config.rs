//! Experiment configuration.
//!
//! An [`ExperimentConfig`] fully determines a run: cluster, workload,
//! energy system (source, battery, grid, forecaster), policy, seed and
//! horizon. All fields are serde-serialisable so the bench harness can
//! archive the exact configuration next to every result.

use crate::policy::PolicyKind;
use gm_energy::battery::BatterySpec;
use gm_energy::forecast::{
    EwmaForecaster, Forecaster, NoisyOracle, OracleForecaster, PersistenceForecaster,
};
use gm_energy::grid::Grid;
use gm_energy::solar::{SolarFarm, SolarFarmSpec, SolarProfile};
use gm_energy::supply::{MixedSource, PowerSource};
use gm_energy::wind::{TurbineSpec, WindFarm, WindProfile};
use gm_sim::time::SimDuration;
use gm_sim::{RngFactory, SlotClock, TimeSeries};
use gm_storage::ClusterSpec;
use gm_workload::trace::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Which renewable source supplies the site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SourceKind {
    /// No on-site renewables (pure-grid reference).
    None,
    /// PV farm of the given area.
    Solar {
        /// Total panel area (m²).
        area_m2: f64,
        /// Weather preset.
        profile: SolarProfile,
    },
    /// Wind turbine of the given nameplate power.
    Wind {
        /// Rated power (W).
        rated_w: f64,
        /// Wind climate preset.
        profile: WindProfile,
    },
    /// Solar + wind.
    Mixed {
        /// PV area (m²).
        area_m2: f64,
        /// Solar weather preset.
        solar_profile: SolarProfile,
        /// Turbine rated power (W).
        rated_w: f64,
        /// Wind climate preset.
        wind_profile: WindProfile,
    },
    /// A measured production trace in the interchange CSV format
    /// (`gm_energy::traces`), read from disk at materialisation time —
    /// the substitution point for real PV-logger data.
    TraceCsv {
        /// Label for reports.
        label: String,
        /// Path to the CSV file.
        path: String,
    },
}

impl SourceKind {
    /// Materialise the source into a frozen per-slot power trace (W).
    ///
    /// Panics if a [`SourceKind::TraceCsv`] file is missing or malformed —
    /// a configured measurement file that cannot be read is a setup error,
    /// not a condition to silently zero-fill.
    pub fn materialize(&self, clock: SlotClock, slots: usize, rngs: &RngFactory) -> TimeSeries {
        match *self {
            SourceKind::None => TimeSeries::zeros(clock, slots),
            SourceKind::TraceCsv { ref label, ref path } => {
                let csv = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("trace {label}: cannot read {path}: {e}"));
                let trace = gm_energy::traces::trace_from_csv(&csv, clock)
                    .unwrap_or_else(|e| panic!("trace {label}: {e}"));
                // Re-window onto the requested horizon (zero-padded).
                TimeSeries::from_values(clock, (0..slots).map(|s| trace.get(s)).collect())
            }
            SourceKind::Solar { area_m2, profile } => {
                SolarFarm::new(SolarFarmSpec::with_area(area_m2, profile), rngs)
                    .materialize(clock, slots)
            }
            SourceKind::Wind { rated_w, profile } => {
                WindFarm::new(TurbineSpec::small_site(rated_w), profile, rngs)
                    .materialize(clock, slots)
            }
            SourceKind::Mixed { area_m2, solar_profile, rated_w, wind_profile } => {
                MixedSource::new()
                    .with(Box::new(SolarFarm::new(
                        SolarFarmSpec::with_area(area_m2, solar_profile),
                        rngs,
                    )))
                    .with(Box::new(WindFarm::new(
                        TurbineSpec::small_site(rated_w),
                        wind_profile,
                        rngs,
                    )))
                    .materialize(clock, slots)
            }
        }
    }

    /// Label for reports.
    pub fn label(&self) -> String {
        match self {
            SourceKind::None => "no-renewables".into(),
            SourceKind::Solar { area_m2, profile } => format!("{}:{area_m2:.0}m2", profile.label()),
            SourceKind::Wind { rated_w, profile } => {
                format!("{}:{:.0}kW", profile.label(), rated_w / 1000.0)
            }
            SourceKind::Mixed { .. } => "mixed".into(),
            SourceKind::TraceCsv { label, .. } => format!("trace:{label}"),
        }
    }
}

/// Which production forecaster the policy plans with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ForecastKind {
    /// Error-free (the era's validation convention).
    Oracle,
    /// Same-hour-yesterday persistence.
    Persistence,
    /// Per-hour-of-day EWMA with the given smoothing factor.
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
    /// Oracle with multiplicative lognormal error.
    Noisy {
        /// Error coefficient of variation.
        cv: f64,
    },
}

impl ForecastKind {
    /// Build the forecaster over a materialised trace.
    pub fn build(
        &self,
        trace: &TimeSeries,
        clock: SlotClock,
        rngs: &RngFactory,
    ) -> Box<dyn Forecaster + Send> {
        match *self {
            ForecastKind::Oracle => Box::new(OracleForecaster::new(trace.clone())),
            ForecastKind::Persistence => Box::new(PersistenceForecaster::new(trace.clone())),
            ForecastKind::Ewma { alpha } => {
                Box::new(EwmaForecaster::new(alpha, clock.slots_per_day()))
            }
            ForecastKind::Noisy { cv } => Box::new(NoisyOracle::new(trace.clone(), cv, rngs)),
        }
    }
}

/// When the harness lets the battery discharge into a deficit.
///
/// Charging is always eager (surplus is otherwise curtailed); *discharge*
/// timing is a real design choice: draining eagerly may leave nothing for
/// the expensive/dirty evening peak.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DischargeStrategy {
    /// Cover any deficit as soon as it appears (the common default).
    #[default]
    Eager,
    /// Discharge only while the grid is at peak price/carbon
    /// (07:00–23:00); off-peak deficits go straight to the (cheap, clean)
    /// grid, preserving charge for the next peak.
    PeakOnly,
    /// Keep the given fraction of the usable window in reserve except
    /// during the evening carbon peak (17:00–23:00), when the reserve may
    /// be spent too.
    Reserve(f64),
}

/// The energy side of an experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Renewable source.
    pub source: SourceKind,
    /// ESD, if any.
    pub battery: Option<BatterySpec>,
    /// Grid backup.
    pub grid: Grid,
    /// Forecaster the policy plans with.
    pub forecast: ForecastKind,
    /// Battery discharge timing.
    #[serde(default)]
    pub discharge: DischargeStrategy,
}

/// A complete, reproducible experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Cluster to simulate.
    pub cluster: ClusterSpec,
    /// Workload to drive it with.
    pub workload: WorkloadSpec,
    /// Energy system.
    pub energy: EnergyConfig,
    /// Scheduling policy.
    pub policy: PolicyKind,
    /// Disk-failure injection (None = reliable hardware). When enabled,
    /// failures spawn repair jobs that the policy schedules like any other
    /// deferrable work, and exposure windows are tracked as data-loss
    /// events.
    pub failures: Option<gm_storage::FailureSpec>,
    /// Master seed (workload, weather, placement noise).
    pub seed: u64,
    /// Number of slots to run.
    pub slots: usize,
    /// Slot clock.
    pub clock: SlotClock,
}

impl ExperimentConfig {
    /// A small, fast configuration for tests and the quickstart example:
    /// 6-server cluster, scaled-down week, modest PV + LI battery.
    pub fn small_demo(seed: u64) -> Self {
        let cluster = ClusterSpec::small();
        let workload = WorkloadSpec::small_week(cluster.objects);
        ExperimentConfig {
            cluster,
            workload,
            energy: EnergyConfig {
                source: SourceKind::Solar { area_m2: 15.0, profile: SolarProfile::SunnySummer },
                battery: Some(BatterySpec::lithium_ion(10_000.0)),
                grid: Grid::typical_eu(),
                forecast: ForecastKind::Oracle,
                discharge: DischargeStrategy::Eager,
            },
            policy: PolicyKind::GreenMatch { delay_fraction: 1.0 },
            failures: None,
            seed,
            slots: 7 * 24,
            clock: SlotClock::hourly(),
        }
    }

    /// The medium data center of the headline experiments: 48 servers,
    /// full medium week, PV sized at ~1/3 of the zero-brown area, 40 kWh
    /// LI battery.
    pub fn medium(seed: u64) -> Self {
        let cluster = ClusterSpec::medium_dc();
        let workload = WorkloadSpec::medium_week(cluster.objects);
        ExperimentConfig {
            cluster,
            workload,
            energy: EnergyConfig {
                source: SourceKind::Solar { area_m2: 120.0, profile: SolarProfile::SunnySummer },
                battery: Some(BatterySpec::lithium_ion(40_000.0)),
                grid: Grid::typical_eu(),
                forecast: ForecastKind::Oracle,
                discharge: DischargeStrategy::Eager,
            },
            policy: PolicyKind::GreenMatch { delay_fraction: 1.0 },
            failures: None,
            seed,
            slots: 7 * 24,
            clock: SlotClock::hourly(),
        }
    }

    /// Horizon as a duration.
    pub fn horizon(&self) -> SimDuration {
        self.clock.width() * self.slots as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_materialize_to_requested_length() {
        let rngs = RngFactory::new(1);
        let c = SlotClock::hourly();
        for src in [
            SourceKind::None,
            SourceKind::Solar { area_m2: 50.0, profile: SolarProfile::SunnySummer },
            SourceKind::Wind { rated_w: 10_000.0, profile: WindProfile::SteadyCoastal },
            SourceKind::Mixed {
                area_m2: 50.0,
                solar_profile: SolarProfile::SunnySummer,
                rated_w: 10_000.0,
                wind_profile: WindProfile::SteadyCoastal,
            },
        ] {
            let trace = src.materialize(c, 48, &rngs);
            assert_eq!(trace.len(), 48, "{}", src.label());
            assert!(trace.values().iter().all(|v| *v >= 0.0));
        }
        // None produces exactly zero; mixed at least as much as either part.
        assert_eq!(SourceKind::None.materialize(c, 5, &rngs).sum(), 0.0);
    }

    #[test]
    fn mixed_is_sum_of_parts() {
        let rngs = RngFactory::new(9);
        let c = SlotClock::hourly();
        let solar = SourceKind::Solar { area_m2: 30.0, profile: SolarProfile::SunnySummer }
            .materialize(c, 72, &rngs);
        let wind = SourceKind::Wind { rated_w: 8_000.0, profile: WindProfile::CalmWeek }
            .materialize(c, 72, &rngs);
        let mixed = SourceKind::Mixed {
            area_m2: 30.0,
            solar_profile: SolarProfile::SunnySummer,
            rated_w: 8_000.0,
            wind_profile: WindProfile::CalmWeek,
        }
        .materialize(c, 72, &rngs);
        // Same seed ⇒ same component streams ⇒ exact sum.
        for s in 0..72 {
            assert!((mixed.get(s) - (solar.get(s) + wind.get(s))).abs() < 1e-9);
        }
    }

    #[test]
    fn forecasters_build() {
        let rngs = RngFactory::new(2);
        let c = SlotClock::hourly();
        let trace = TimeSeries::from_values(c, vec![5.0; 48]);
        for kind in [
            ForecastKind::Oracle,
            ForecastKind::Persistence,
            ForecastKind::Ewma { alpha: 0.5 },
            ForecastKind::Noisy { cv: 0.2 },
        ] {
            let mut f = kind.build(&trace, c, &rngs);
            assert_eq!(f.predict(0, 4).len(), 4);
        }
    }

    #[test]
    fn presets_are_consistent() {
        let small = ExperimentConfig::small_demo(1);
        assert_eq!(small.slots, 168);
        assert_eq!(small.horizon(), SimDuration::from_days(7));
        assert_eq!(small.workload.interactive.objects, small.cluster.objects);
        let medium = ExperimentConfig::medium(1);
        assert_eq!(medium.workload.interactive.objects, medium.cluster.objects);
    }

    #[test]
    fn config_roundtrips_through_json() {
        let cfg = ExperimentConfig::small_demo(3);
        let json = serde_json::to_string(&cfg).expect("serialises");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.slots, cfg.slots);
        assert_eq!(back.policy, cfg.policy);
    }
}
