//! Run reports.
//!
//! A [`RunReport`] is the full outcome of one experiment run: energy
//! totals and per-slot series, interactive latency distribution, batch
//! completion/deadline statistics and mechanism counters. It is
//! serde-serialisable so the bench harness can archive results, and it
//! renders itself as aligned text for humans.

use gm_sim::LogHistogram;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Interactive-latency summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Requests served.
    pub count: u64,
    /// Mean latency (s).
    pub mean_s: f64,
    /// Median (s).
    pub p50_s: f64,
    /// 99th percentile (s).
    pub p99_s: f64,
    /// Maximum (s).
    pub max_s: f64,
}

impl LatencyReport {
    /// Summarise a histogram.
    pub fn from_histogram(h: &LogHistogram) -> Self {
        LatencyReport {
            count: h.count(),
            mean_s: h.mean(),
            p50_s: h.quantile(0.5),
            p99_s: h.quantile(0.99),
            max_s: h.max(),
        }
    }
}

/// Batch completion summary.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Jobs submitted within the horizon.
    pub jobs_submitted: usize,
    /// Jobs fully completed.
    pub jobs_completed: usize,
    /// Completed jobs that missed their deadline.
    pub deadline_misses: usize,
    /// Jobs unfinished at the end of the horizon whose deadline had passed.
    pub unfinished_late: usize,
    /// Total bytes of batch work submitted.
    pub bytes_submitted: u64,
    /// Bytes completed.
    pub bytes_completed: u64,
}

impl BatchReport {
    /// Deadline-miss rate over jobs whose deadline fell inside the horizon:
    /// completed-late plus unfinished-late, over submitted.
    pub fn miss_rate(&self) -> f64 {
        if self.jobs_submitted == 0 {
            0.0
        } else {
            (self.deadline_misses + self.unfinished_late) as f64 / self.jobs_submitted as f64
        }
    }
}

/// Admission-gate summary; present on a [`RunReport`] only when admission
/// control ran (see [`crate::config::AdmissionConfig`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Deferrable jobs the gate accepted into the pool.
    pub accepted: u64,
    /// Defer decisions (a job held across two slots counts twice).
    pub deferred: u64,
    /// Jobs turned away.
    pub rejected: u64,
    /// Bytes of work turned away.
    pub rejected_bytes: u64,
    /// Jobs still held by the gate when the horizon ended.
    pub pending_at_end: usize,
}

impl AdmissionReport {
    /// Fraction of gated jobs the gate turned away (rejected over
    /// accepted + rejected; deferrals resolve into one or the other).
    pub fn rejection_rate(&self) -> f64 {
        let decided = self.accepted + self.rejected;
        if decided == 0 {
            0.0
        } else {
            self.rejected as f64 / decided as f64
        }
    }
}

/// Per-site energy breakdown of a multi-site run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiteReport {
    /// Site index (0 = home).
    pub site: usize,
    /// Site name from the config.
    pub name: String,
    /// Renewable-source label.
    pub source: String,
    /// Battery label (chemistry + kWh), or "none".
    pub battery: String,
    /// Energy consumed by this site's cluster (kWh).
    pub load_kwh: f64,
    /// Grid energy consumed at this site (kWh).
    pub brown_kwh: f64,
    /// Renewable energy produced at this site (kWh).
    pub green_produced_kwh: f64,
    /// Renewable energy consumed directly at this site (kWh).
    pub green_direct_kwh: f64,
    /// Energy delivered by this site's battery (kWh).
    pub battery_out_kwh: f64,
    /// Renewable energy curtailed at this site (kWh).
    pub curtailed_kwh: f64,
    /// Fraction of this site's produced renewables that served its load.
    pub green_utilization: f64,
    /// Fraction of this site's load served by renewables.
    pub green_coverage: f64,
    /// Batch bytes executed on this site's cluster.
    pub executed_batch_bytes: u64,
    /// Disk spin-ups at this site.
    pub spinups: u64,
}

/// The full outcome of one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy label.
    pub policy: String,
    /// Source label.
    pub source: String,
    /// Battery label (chemistry + kWh), or "none".
    pub battery: String,
    /// Master seed.
    pub seed: u64,
    /// Slots simulated.
    pub slots: usize,

    /// Total energy consumed by the cluster (kWh).
    pub load_kwh: f64,
    /// Grid energy consumed (kWh) — the headline metric.
    pub brown_kwh: f64,
    /// Renewable energy produced (kWh).
    pub green_produced_kwh: f64,
    /// Renewable energy consumed directly (kWh).
    pub green_direct_kwh: f64,
    /// Energy delivered by the battery (kWh).
    pub battery_out_kwh: f64,
    /// Renewable energy curtailed (kWh).
    pub curtailed_kwh: f64,
    /// Battery conversion loss (kWh).
    pub battery_eff_loss_kwh: f64,
    /// Battery self-discharge loss (kWh).
    pub battery_selfdisch_kwh: f64,
    /// Spin-up/boot surcharge energy (kWh).
    pub spinup_overhead_kwh: f64,
    /// Write-log reclaim overhead energy (kWh).
    pub reclaim_overhead_kwh: f64,
    /// Fraction of produced renewables that served the load.
    pub green_utilization: f64,
    /// Fraction of the load served by renewables.
    pub green_coverage: f64,
    /// Carbon emitted by the brown draw (kg CO₂).
    pub carbon_kg: f64,
    /// Cost of the brown draw ($).
    pub cost_dollars: f64,
    /// Equivalent full cycles put on the battery.
    pub battery_cycles: f64,
    /// Dollars of battery life consumed (capex × life fraction).
    pub battery_wear_dollars: f64,

    /// Interactive latency.
    pub latency: LatencyReport,
    /// Batch completion.
    pub batch: BatchReport,
    /// Admission-gate counters; `None` when admission control is off.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub admission: Option<AdmissionReport>,

    /// Disk spin-ups (policy + forced).
    pub spinups: u64,
    /// Availability-forced spin-ups.
    pub forced_spinups: u64,
    /// Peak write-log occupancy (bytes).
    pub writelog_peak_bytes: u64,

    /// Disk failures injected (0 when failure injection is off).
    pub failures: u64,
    /// Objects exposed with no intact replica (data-loss events).
    pub lost_objects: u64,
    /// Reads served while every replica awaited rebuild.
    pub degraded_reads: u64,
    /// Rebuild work generated by failures (bytes).
    pub rebuild_bytes: u64,
    /// Repair jobs fully completed within the horizon.
    pub repairs_completed: u64,
    /// Tier-migration jobs fully completed within the horizon (0 with
    /// tiering off).
    #[serde(default)]
    pub migrations_completed: u64,
    /// Migration I/O executed (bytes).
    #[serde(default)]
    pub migrated_bytes: u64,
    /// Share of migration bytes executed under green energy: each slot's
    /// migration bytes weighted by that slot's green fraction of load.
    #[serde(default)]
    pub migration_green_share: f64,
    /// Raw storage capacity in use at the end of the run (replica bytes
    /// plus EC shard bytes).
    #[serde(default)]
    pub capacity_in_use_bytes: u64,
    /// Objects resident on erasure coding at the end of the run.
    #[serde(default)]
    pub ec_objects: u64,
    /// Read-cache hit ratio (0 when the cache is disabled).
    pub cache_hit_ratio: f64,

    /// Per-slot gear level.
    pub gears_series: Vec<usize>,
    /// Per-slot load (Wh).
    pub load_series_wh: Vec<f64>,
    /// Per-slot green production (Wh).
    pub green_series_wh: Vec<f64>,
    /// Per-slot brown draw (Wh).
    pub brown_series_wh: Vec<f64>,
    /// Per-slot battery discharge (Wh).
    pub battery_out_series_wh: Vec<f64>,
    /// Per-slot curtailment (Wh).
    pub curtailed_series_wh: Vec<f64>,

    /// Per-site breakdown; empty for single-site runs (where the totals
    /// above *are* the one site's numbers).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub sites: Vec<SiteReport>,
}

impl RunReport {
    /// Weekly operating cost ($): grid energy plus battery wear — the TCO
    /// figure R-Table5 compares (PV capex is identical across policies at
    /// fixed area, so it cancels out of the comparison).
    pub fn opex_dollars(&self) -> f64 {
        self.cost_dollars + self.battery_wear_dollars
    }

    /// Sum of all loss categories (kWh): curtailment + battery losses +
    /// spin-up and reclaim overheads.
    pub fn total_losses_kwh(&self) -> f64 {
        self.curtailed_kwh
            + self.battery_eff_loss_kwh
            + self.battery_selfdisch_kwh
            + self.spinup_overhead_kwh
            + self.reclaim_overhead_kwh
    }

    /// One-line CSV header matching [`RunReport::csv_row`].
    pub fn csv_header() -> &'static str {
        "policy,source,battery,seed,brown_kwh,load_kwh,green_produced_kwh,green_utilization,\
         green_coverage,curtailed_kwh,battery_eff_loss_kwh,battery_selfdisch_kwh,\
         spinup_overhead_kwh,reclaim_overhead_kwh,total_losses_kwh,carbon_kg,cost_dollars,\
         latency_p50_s,latency_p99_s,latency_count,miss_rate,spinups,forced_spinups"
    }

    /// Render as a CSV row (matches [`RunReport::csv_header`]).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{:.3},{:.3},{:.3},{:.4},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{:.6},{:.6},{},{:.4},{},{}",
            self.policy,
            self.source,
            self.battery,
            self.seed,
            self.brown_kwh,
            self.load_kwh,
            self.green_produced_kwh,
            self.green_utilization,
            self.green_coverage,
            self.curtailed_kwh,
            self.battery_eff_loss_kwh,
            self.battery_selfdisch_kwh,
            self.spinup_overhead_kwh,
            self.reclaim_overhead_kwh,
            self.total_losses_kwh(),
            self.carbon_kg,
            self.cost_dollars,
            self.latency.p50_s,
            self.latency.p99_s,
            self.latency.count,
            self.batch.miss_rate(),
            self.spinups,
            self.forced_spinups,
        )
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "policy          : {}", self.policy)?;
        writeln!(f, "source / battery: {} / {}", self.source, self.battery)?;
        writeln!(f, "load            : {:>10.1} kWh", self.load_kwh)?;
        writeln!(f, "brown energy    : {:>10.1} kWh", self.brown_kwh)?;
        writeln!(
            f,
            "green           : {:>10.1} kWh produced, {:.1}% utilised, {:.1}% coverage",
            self.green_produced_kwh,
            self.green_utilization * 100.0,
            self.green_coverage * 100.0
        )?;
        writeln!(
            f,
            "losses          : {:>10.1} kWh (curtail {:.1}, batt-eff {:.1}, self-d {:.1}, spin {:.2}, reclaim {:.2})",
            self.total_losses_kwh(),
            self.curtailed_kwh,
            self.battery_eff_loss_kwh,
            self.battery_selfdisch_kwh,
            self.spinup_overhead_kwh,
            self.reclaim_overhead_kwh
        )?;
        writeln!(
            f,
            "latency         : p50 {:.1} ms, p99 {:.1} ms over {} requests",
            self.latency.p50_s * 1e3,
            self.latency.p99_s * 1e3,
            self.latency.count
        )?;
        writeln!(
            f,
            "batch           : {}/{} jobs done, miss rate {:.2}%",
            self.batch.jobs_completed,
            self.batch.jobs_submitted,
            self.batch.miss_rate() * 100.0
        )?;
        if let Some(a) = &self.admission {
            writeln!(
                f,
                "admission       : {} accepted, {} deferrals, {} rejected ({:.1} GiB turned away, {} still held)",
                a.accepted,
                a.deferred,
                a.rejected,
                a.rejected_bytes as f64 / (1u64 << 30) as f64,
                a.pending_at_end
            )?;
        }
        writeln!(
            f,
            "mechanics       : {} spin-ups ({} forced), carbon {:.1} kg, grid cost ${:.2}",
            self.spinups, self.forced_spinups, self.carbon_kg, self.cost_dollars
        )?;
        for s in &self.sites {
            writeln!(
                f,
                "site {} {:<9}: load {:>8.1} kWh, brown {:>8.1} kWh, green {:>8.1} kWh produced, coverage {:.1}%",
                s.site,
                s.name,
                s.load_kwh,
                s.brown_kwh,
                s.green_produced_kwh,
                s.green_coverage * 100.0
            )?;
        }
        if self.failures > 0 {
            writeln!(
                f,
                "reliability     : {} failures, {} repairs done, {} lost objects, {} degraded reads",
                self.failures, self.repairs_completed, self.lost_objects, self.degraded_reads
            )?;
        }
        if self.migrations_completed > 0 || self.ec_objects > 0 {
            writeln!(
                f,
                "tiering         : {} migrations done, {:.1} GiB moved ({:.1}% in green slots), {} EC objects, {:.2} TiB raw in use",
                self.migrations_completed,
                self.migrated_bytes as f64 / (1u64 << 30) as f64,
                self.migration_green_share * 100.0,
                self.ec_objects,
                self.capacity_in_use_bytes as f64 / (1u64 << 40) as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            policy: "test".into(),
            source: "solar".into(),
            battery: "LI:10kWh".into(),
            seed: 1,
            slots: 24,
            load_kwh: 100.0,
            brown_kwh: 40.0,
            green_produced_kwh: 80.0,
            green_direct_kwh: 50.0,
            battery_out_kwh: 10.0,
            curtailed_kwh: 5.0,
            battery_eff_loss_kwh: 2.0,
            battery_selfdisch_kwh: 0.5,
            spinup_overhead_kwh: 0.3,
            reclaim_overhead_kwh: 0.2,
            green_utilization: 0.75,
            green_coverage: 0.6,
            carbon_kg: 12.0,
            cost_dollars: 6.4,
            battery_cycles: 3.5,
            battery_wear_dollars: 4.6,
            latency: LatencyReport {
                count: 1000,
                mean_s: 0.02,
                p50_s: 0.015,
                p99_s: 0.3,
                max_s: 11.0,
            },
            batch: BatchReport {
                jobs_submitted: 100,
                jobs_completed: 98,
                deadline_misses: 3,
                unfinished_late: 1,
                bytes_submitted: 1 << 40,
                bytes_completed: 1 << 39,
            },
            admission: None,
            spinups: 42,
            forced_spinups: 2,
            writelog_peak_bytes: 1 << 30,
            failures: 0,
            lost_objects: 0,
            degraded_reads: 0,
            rebuild_bytes: 0,
            repairs_completed: 0,
            migrations_completed: 0,
            migrated_bytes: 0,
            migration_green_share: 0.0,
            capacity_in_use_bytes: 0,
            ec_objects: 0,
            cache_hit_ratio: 0.0,
            gears_series: vec![1; 24],
            load_series_wh: vec![0.0; 24],
            green_series_wh: vec![0.0; 24],
            brown_series_wh: vec![0.0; 24],
            battery_out_series_wh: vec![0.0; 24],
            curtailed_series_wh: vec![0.0; 24],
            sites: Vec::new(),
        }
    }

    #[test]
    fn loss_total_sums_categories() {
        let r = dummy();
        assert!((r.total_losses_kwh() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn miss_rate_counts_late_and_unfinished() {
        let r = dummy();
        assert!((r.batch.miss_rate() - 0.04).abs() < 1e-12);
        let empty = BatchReport::default();
        assert_eq!(empty.miss_rate(), 0.0);
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let r = dummy();
        let header_cols = RunReport::csv_header().split(',').count();
        let row_cols = r.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = format!("{}", dummy());
        assert!(s.contains("brown energy"));
        assert!(s.contains("40.0 kWh"));
        assert!(s.contains("98/100 jobs"));
    }

    #[test]
    fn latency_report_from_histogram() {
        let mut h = LogHistogram::for_latency_secs();
        for i in 1..=100 {
            h.record(i as f64 * 1e-3);
        }
        let lr = LatencyReport::from_histogram(&h);
        assert_eq!(lr.count, 100);
        assert!((lr.mean_s - 0.0505).abs() < 1e-9);
        assert!(lr.p50_s >= 0.050 && lr.p50_s <= 0.057);
        assert_eq!(lr.max_s, 0.1);
    }
}
