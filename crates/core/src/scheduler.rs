//! The GreenMatch policy.
//!
//! Per slot:
//!
//! 1. **Classify** pending batch jobs. A stable per-job hash marks
//!    `delay_fraction` of them *deferrable* (they participate in matching);
//!    the rest are *ASAP* (run like PowerProportional would). Jobs whose
//!    slack is exhausted are *critical* regardless of class — deadlines
//!    always dominate greenness.
//! 2. **Match** the deferrable work onto the forecast window with the
//!    min-cost-flow matcher ([`crate::matcher`]): green-funded capacity is
//!    free, brown capacity is expensive, deferring past the window is
//!    mildly discouraged. The plan's slot-0 allocation is what runs now.
//! 3. **Gear** the cluster to the work: the smallest gear level whose
//!    capacity (net of interactive load) covers the slot's chosen batch
//!    bytes, but never below the interactive minimum.
//! 4. **Reclaim** the write log during green surplus (reclaim is deferrable
//!    work too), or whenever the pending log exceeds a safety threshold.
//!
//! With `delay_fraction = 0` the policy degenerates to PowerProportional;
//! with `1.0` it is pure GreenMatch; intermediate values are the hybrid
//! family the balance study sweeps.

use crate::matcher::{self, MatchInput, Matcher};
use crate::policy::{Decision, JobView, SchedContext, Scheduler, SiteView};
use gm_sim::rng::splitmix64;
use gm_workload::JobId;

/// Write-log size above which reclaim is forced even on brown power.
pub const RECLAIM_FORCE_BYTES: u64 = 256 << 30;

/// Default planning window (slots).
pub const DEFAULT_HORIZON: usize = 24;

/// The GreenMatch scheduling policy.
pub struct GreenMatchPolicy {
    delay_fraction: f64,
    horizon: usize,
    /// When set, brown capacity is priced by the grid's forecast carbon
    /// intensity instead of uniformly, steering unavoidable brown work into
    /// the cleanest hours of the window.
    carbon_aware: bool,
    /// The stateful matcher handle: flow network, work vectors and
    /// warm-start state, retained across slots.
    matcher: Matcher,
    // Per-slot work buffers, reused across decisions so the steady-state
    // decide path allocates only the Decision it returns.
    critical: Vec<JobView>,
    asap: Vec<JobView>,
    deferrable: Vec<JobView>,
    order: Vec<(JobView, u64)>,
    brown_costs: Vec<i64>,
    remote_now: Vec<u64>,
    /// Unit-accounting residual of the most recent matcher solve (0 when
    /// flow conservation held, and when no solve ran).
    last_unaccounted_units: i64,
}

impl GreenMatchPolicy {
    /// Policy with the given deferrable fraction and the default window.
    pub fn new(delay_fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&delay_fraction), "delay fraction must be in [0,1]");
        GreenMatchPolicy {
            delay_fraction,
            horizon: DEFAULT_HORIZON,
            carbon_aware: false,
            matcher: Matcher::new(),
            critical: Vec::new(),
            asap: Vec::new(),
            deferrable: Vec::new(),
            order: Vec::new(),
            brown_costs: Vec::new(),
            remote_now: Vec::new(),
            last_unaccounted_units: 0,
        }
    }

    /// Override the planning window.
    pub fn with_horizon(mut self, horizon: usize) -> Self {
        assert!(horizon >= 1);
        self.horizon = horizon;
        self
    }

    /// Enable carbon-aware brown pricing.
    pub fn with_carbon_awareness(mut self) -> Self {
        self.carbon_aware = true;
        self
    }

    /// The deferrable fraction.
    pub fn delay_fraction(&self) -> f64 {
        self.delay_fraction
    }

    /// Stable classification: is this job deferrable under the fraction?
    pub fn is_deferrable(&self, id: JobId) -> bool {
        is_deferrable_at(self.delay_fraction, id)
    }

    /// The policy's matcher handle (diagnostics: warm/cold solve counts).
    pub fn matcher(&self) -> &Matcher {
        &self.matcher
    }
}

/// Stable per-job classification at a given deferrable fraction.
fn is_deferrable_at(delay_fraction: f64, id: JobId) -> bool {
    let mut s = id.0 ^ 0x6A09_E667_F3BC_C909;
    let h = splitmix64(&mut s) % 10_000;
    (h as f64) < delay_fraction * 10_000.0
}

impl Scheduler for GreenMatchPolicy {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let busy = ctx.interactive_busy_secs.first().copied().unwrap_or(0.0);
        let slot_secs = ctx.slot_secs();

        // 1. Classification.
        let delay_fraction = self.delay_fraction;
        self.critical.clear();
        self.asap.clear();
        self.deferrable.clear();
        for j in ctx.jobs.iter().filter(|j| j.remaining_bytes > 0) {
            if j.critical {
                self.critical.push(j);
            } else if is_deferrable_at(delay_fraction, j.id) {
                self.deferrable.push(j);
            } else {
                self.asap.push(j);
            }
        }

        // 2. Matching over the deferrable set. In carbon-aware mode the
        //    brown arcs are priced by the slot's forecast carbon intensity
        //    (relative to the grid's base), so unavoidable brown work slides
        //    into the cleanest hours.
        self.brown_costs.clear();
        if self.carbon_aware {
            self.brown_costs.extend((0..self.horizon).map(|k| {
                let mid = ctx.clock.slot_start(ctx.slot + k) + ctx.clock.width() / 2;
                let rel = ctx.grid.carbon_intensity(mid) / ctx.grid.base_carbon_g_per_kwh;
                (matcher::BROWN_COST as f64 * rel).round() as i64
            }));
        }
        //    One solver code path: a single-site context is presented to
        //    the matcher as the 1-site case of the multi-site network
        //    (remote green capacity competes with home brown at the
        //    configured WAN cost per unit; the remote slot-0 placements
        //    come back via `remote_now`).
        self.remote_now.clear();
        self.last_unaccounted_units = 0;
        let home = [SiteView::home(ctx.green_forecast_wh, ctx.model, ctx.battery)];
        let sites: &[SiteView<'_>] = if ctx.sites.len() > 1 { ctx.sites } else { &home };
        let (bytes_now_matched, infeasible_bytes) = if self.deferrable.is_empty() {
            (0, 0)
        } else {
            let input = MatchInput {
                jobs: &self.deferrable,
                current_slot: ctx.slot,
                horizon: self.horizon,
                sites,
                interactive_busy_secs: ctx.interactive_busy_secs,
                slot_secs,
                brown_cost_per_slot: self.carbon_aware.then_some(&self.brown_costs[..]),
            };
            let stats = self.matcher.solve(&input);
            let (remote_now, matcher) = (&mut self.remote_now, &self.matcher);
            remote_now.extend((1..sites.len()).map(|s| matcher.bytes_now(s)));
            self.last_unaccounted_units = stats.unaccounted_units;
            (stats.bytes_now, stats.infeasible_bytes)
        };

        // 3. Assemble the slot's batch list: critical first, then ASAP,
        //    then the matched share of deferrable work — each in EDF order
        //    (unstable sorts are fine: (deadline, id) keys are unique).
        self.order.clear();
        self.critical.sort_unstable_by_key(|j| (j.deadline_slot, j.id));
        self.asap.sort_unstable_by_key(|j| (j.deadline_slot, j.id));
        self.deferrable.sort_unstable_by_key(|j| (j.deadline_slot, j.id));
        for j in &self.critical {
            self.order.push((*j, j.remaining_bytes));
        }
        for j in &self.asap {
            self.order.push((*j, j.remaining_bytes));
        }
        let mut matched_left = bytes_now_matched;
        for j in &self.deferrable {
            if matched_left == 0 {
                break;
            }
            let take = j.remaining_bytes.min(matched_left);
            self.order.push((*j, take));
            matched_left -= take;
        }
        let total_want: u64 = self.order.iter().map(|(_, b)| b).sum();

        // 4. Gear to the work (never below the interactive minimum).
        let min_g = ctx.min_gears_now();
        let mut gears = min_g;
        while gears < ctx.model.gears
            && ctx.model.batch_capacity_bytes(gears, busy, slot_secs) < total_want
        {
            gears += 1;
        }
        let capacity = ctx.model.batch_capacity_bytes(gears, busy, slot_secs);

        // Cap the list at physical capacity, preserving priority order.
        let mut remaining = capacity;
        let mut batch_bytes = Vec::with_capacity(self.order.len());
        for &(j, want) in &self.order {
            if remaining == 0 {
                break;
            }
            let take = want.min(remaining);
            batch_bytes.push((j.id, take));
            remaining -= take;
        }

        // Remote placements: assign each remote site's slot-0 bytes to the
        // deferrable jobs in the same EDF order, net of what the home list
        // already took from each job.
        let mut remote_batch_bytes = Vec::new();
        if self.remote_now.iter().any(|&b| b > 0) {
            let mut avail: Vec<(JobId, u64)> = self
                .deferrable
                .iter()
                .map(|j| {
                    let home_take: u64 =
                        batch_bytes.iter().filter(|(id, _)| *id == j.id).map(|(_, b)| *b).sum();
                    (j.id, j.remaining_bytes.saturating_sub(home_take))
                })
                .collect();
            for (k, &want) in self.remote_now.iter().enumerate() {
                let site = k + 1;
                let mut want = want;
                for (id, a) in avail.iter_mut() {
                    if want == 0 {
                        break;
                    }
                    let take = (*a).min(want);
                    if take == 0 {
                        continue;
                    }
                    remote_batch_bytes.push((site, *id, take));
                    *a -= take;
                    want -= take;
                }
            }
        }

        // 5. Reclaim policy.
        let hours = ctx.slot_hours();
        let green_now = ctx.green_forecast_wh.first().copied().unwrap_or(0.0);
        let surplus_now = green_now - ctx.model.idle_w(gears) * hours;
        let reclaim_budget_bytes =
            if surplus_now > 0.0 || ctx.writelog_pending_bytes > RECLAIM_FORCE_BYTES {
                u64::MAX
            } else {
                0
            };

        Decision { gears, batch_bytes, reclaim_budget_bytes, infeasible_bytes, remote_batch_bytes }
    }

    fn label(&self) -> String {
        if self.carbon_aware {
            format!("greenmatch-carbon({:.0}%)", self.delay_fraction * 100.0)
        } else {
            format!("greenmatch({:.0}%)", self.delay_fraction * 100.0)
        }
    }

    fn matcher_residual_units(&self) -> i64 {
        self.last_unaccounted_units
    }

    fn set_warm_start(&mut self, on: bool) {
        self.matcher.set_warm_start(on);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatteryView, PlanningModel};
    use gm_sim::time::SimTime;
    use gm_sim::SlotClock;
    use gm_storage::ClusterSpec;

    /// Owned backing store for a [`SchedContext`] (which borrows its bulk
    /// fields in production from the simulation's scratch buffers).
    struct OwnedCtx {
        green: Vec<f64>,
        busy: Vec<f64>,
        jobs: crate::policy::JobColumns,
        slot: usize,
        now: SimTime,
        writelog_pending_bytes: u64,
    }

    impl OwnedCtx {
        fn as_ctx(&self) -> SchedContext<'_> {
            SchedContext {
                slot: self.slot,
                now: self.now,
                clock: SlotClock::hourly(),
                green_forecast_wh: &self.green,
                interactive_busy_secs: &self.busy,
                jobs: &self.jobs,
                battery: BatteryView::default(),
                model: PlanningModel::from_spec(&ClusterSpec::small()),
                writelog_pending_bytes: self.writelog_pending_bytes,
                grid: gm_energy::grid::Grid::typical_eu(),
                sites: &[],
            }
        }
    }

    fn ctx(green: Vec<f64>, jobs: Vec<JobView>) -> OwnedCtx {
        let h = green.len();
        OwnedCtx {
            busy: vec![500.0; h],
            green,
            jobs: jobs.into(),
            slot: 0,
            now: SimTime::ZERO,
            writelog_pending_bytes: 0,
        }
    }

    fn job(id: u64, gib: u64, deadline: usize, critical: bool) -> JobView {
        JobView { id: JobId(id), remaining_bytes: gib << 30, deadline_slot: deadline, critical }
    }

    #[test]
    fn defers_everything_when_brown_and_slack() {
        let mut p = GreenMatchPolicy::new(1.0);
        let c = ctx(vec![0.0; 24], vec![job(1, 64, 20, false), job(2, 32, 18, false)]);
        let d = p.decide(&c.as_ctx());
        assert_eq!(d.total_batch_bytes(), 0, "all deferrable, no green, slack left");
        assert_eq!(d.gears, 1);
        assert_eq!(d.reclaim_budget_bytes, 0);
    }

    #[test]
    fn runs_matched_work_in_green_present() {
        let mut p = GreenMatchPolicy::new(1.0);
        let mut green = vec![0.0; 24];
        green[0] = 5_000.0; // big surplus now
        let c = ctx(green, vec![job(1, 64, 20, false)]);
        let d = p.decide(&c.as_ctx());
        assert!(d.total_batch_bytes() >= 64 << 30, "green present ⇒ run now");
        assert_eq!(d.reclaim_budget_bytes, u64::MAX, "reclaim rides green surplus");
    }

    #[test]
    fn waits_for_future_green_window() {
        let mut p = GreenMatchPolicy::new(1.0);
        let mut green = vec![0.0; 24];
        green[5] = 5_000.0;
        let c = ctx(green, vec![job(1, 64, 20, false)]);
        let d = p.decide(&c.as_ctx());
        assert_eq!(d.total_batch_bytes(), 0, "work waits for offset-5 surplus");
    }

    #[test]
    fn critical_jobs_run_regardless() {
        let mut p = GreenMatchPolicy::new(1.0);
        let c = ctx(vec![0.0; 24], vec![job(1, 16, 0, true)]);
        let d = p.decide(&c.as_ctx());
        assert_eq!(d.total_batch_bytes(), 16 << 30);
    }

    #[test]
    fn zero_delay_fraction_runs_asap() {
        let mut p = GreenMatchPolicy::new(0.0);
        let c = ctx(vec![0.0; 24], vec![job(1, 16, 20, false)]);
        let d = p.decide(&c.as_ctx());
        assert_eq!(d.total_batch_bytes(), 16 << 30, "ASAP class ignores greenness");
    }

    #[test]
    fn classification_is_stable_and_proportional() {
        let p30 = GreenMatchPolicy::new(0.3);
        let n = 10_000;
        let deferred = (0..n).filter(|&i| p30.is_deferrable(JobId(i))).count();
        let frac = deferred as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "fraction {frac}");
        // Stability: same answer twice.
        assert_eq!(p30.is_deferrable(JobId(77)), p30.is_deferrable(JobId(77)));
        // Monotone in fraction: a job deferrable at 0.3 stays deferrable at 0.9.
        let p90 = GreenMatchPolicy::new(0.9);
        for i in 0..1_000 {
            if p30.is_deferrable(JobId(i)) {
                assert!(p90.is_deferrable(JobId(i)));
            }
        }
    }

    #[test]
    fn gears_rise_with_chosen_work() {
        let mut p = GreenMatchPolicy::new(1.0);
        let mut green = vec![0.0; 24];
        green[0] = 50_000.0;
        // More work than one gear's slot capacity (~1.6 TB).
        let c = ctx(green, vec![job(1, 4 * 1024, 20, false)]);
        let d = p.decide(&c.as_ctx());
        assert!(d.gears >= 2, "execution requires gear-up, got {}", d.gears);
    }

    #[test]
    fn forced_reclaim_above_threshold() {
        let mut p = GreenMatchPolicy::new(1.0);
        let mut c = ctx(vec![0.0; 24], vec![]);
        c.writelog_pending_bytes = RECLAIM_FORCE_BYTES + 1;
        let d = p.decide(&c.as_ctx());
        assert_eq!(d.reclaim_budget_bytes, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "delay fraction")]
    fn bad_fraction_panics() {
        let _ = GreenMatchPolicy::new(1.5);
    }

    #[test]
    fn carbon_aware_prefers_clean_brown_hours() {
        // No green anywhere; job must run on brown before its deadline.
        // Slot 0 starts at 14:00: the 17:00–21:00 evening-peak slots are the
        // dirtiest; late-night slots are base intensity. The carbon-aware
        // variant should hold work out of the present (procrastination +
        // clean-hour pricing both point later); the plain variant behaves
        // identically here because brown is procrastinated anyway, so we
        // check the *labels* and that both defer, then verify the pricing
        // vector itself orders evening above night.
        let mut plain = GreenMatchPolicy::new(1.0);
        let mut carbon = GreenMatchPolicy::new(1.0).with_carbon_awareness();
        assert_eq!(carbon.label(), "greenmatch-carbon(100%)");

        // Deadline at slot 34 (offset 20): the window reaches the clean
        // late-night hours, so both variants defer out of the present.
        let mut c = ctx(vec![0.0; 24], vec![job(1, 64, 34, false)]);
        c.slot = 14; // slot clock aligns slots with hours
        c.now = SimTime::from_hours(14);
        let dp = plain.decide(&c.as_ctx());
        let dc = carbon.decide(&c.as_ctx());
        assert_eq!(dp.total_batch_bytes(), 0);
        assert_eq!(dc.total_batch_bytes(), 0, "carbon-aware also waits for cleaner hours");

        // But when the deadline falls *inside* the dirty evening peak, the
        // carbon-aware variant prefers running in the (cleaner) afternoon
        // now, while the plain variant procrastinates into the peak.
        let mut tight = ctx(vec![0.0; 24], vec![job(2, 64, 20, false)]);
        tight.slot = 14;
        tight.now = SimTime::from_hours(14);
        let dp_tight = plain.decide(&tight.as_ctx());
        let dc_tight = carbon.decide(&tight.as_ctx());
        assert_eq!(dp_tight.total_batch_bytes(), 0, "plain defers toward the deadline");
        assert!(
            dc_tight.total_batch_bytes() >= 64 << 30,
            "carbon-aware runs now rather than in the evening peak"
        );

        // The pricing the carbon variant feeds the matcher must rank the
        // 19:00 peak above 03:00 base.
        let grid = gm_energy::grid::Grid::typical_eu();
        let evening = grid.carbon_intensity(SimTime::from_hours(19));
        let night = grid.carbon_intensity(SimTime::from_hours(27));
        assert!(evening > night);
    }
}
