//! The step-wise simulation core.
//!
//! [`Simulation`] is the resumable state machine behind
//! [`crate::harness::run_experiment`]: construct it from an
//! [`ExperimentConfig`], drive it one slot at a time with
//! [`Simulation::step`] (each step returns a [`SlotOutcome`] describing
//! everything that happened in that slot), or let
//! [`Simulation::run_to_end`] finish the horizon and produce the final
//! [`RunReport`].
//!
//! ```text
//! each step (one slot):
//!   decide  — battery self-discharge, failure injection, batch arrivals,
//!             forecasts, SchedContext assembly, policy.decide()
//!   execute — gear the cluster, serve interactive requests, spread batch
//!             bytes over active disks, write-log reclaim
//!   settle  — integrate energy, settle green → battery → grid, record the
//!             ledger slot, update forecasters, retire finished jobs
//! ```
//!
//! Attached [`SlotObserver`]s receive each outcome (and optionally
//! per-phase wall-clock); they cannot influence the run, so reports are
//! identical with or without observers.

use crate::config::{ConfigError, DischargeStrategy, ExperimentConfig};
use crate::observe::{Phase, SlotObserver};
use crate::policy::{BatteryView, Decision, JobView, PlanningModel, SchedContext, TOTAL_RHO};
use crate::report::{BatchReport, LatencyReport, RunReport};
use crate::scheduler::DEFAULT_HORIZON;
use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::forecast::Forecaster;
use gm_energy::ledger::{EnergyLedger, SlotFlows};
use gm_sim::time::{SimTime, SlotIdx};
use gm_sim::{LogHistogram, SlotClock, TimeSeries};
use gm_storage::{Cluster, FailureDice};
use gm_workload::trace::Workload;
use gm_workload::{BatchJob, JobId};
use serde::Serialize;
use std::collections::HashMap;
use std::time::Instant;

/// Last slot whose *end* is at or before `deadline` — the latest slot in
/// which deadline work can safely be scheduled.
pub(crate) fn deadline_slot_for(clock: SlotClock, deadline: SimTime) -> SlotIdx {
    if deadline.0 < clock.width().0 {
        return 0;
    }
    let k = clock.slot_of(SimTime(deadline.0 - 1));
    if clock.slot_end(k) <= deadline {
        k
    } else {
        k.saturating_sub(1)
    }
}

/// Energy flows of one slot (Wh). The settlement identities hold exactly:
/// `load = green_direct + battery_out + grid` and
/// `green_produced = green_direct + battery_in + curtailed`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EnergyFlows {
    /// Renewable energy produced.
    pub green_produced_wh: f64,
    /// Renewable energy consumed directly by the load.
    pub green_direct_wh: f64,
    /// Surplus renewable energy accepted by the battery.
    pub battery_in_wh: f64,
    /// Deficit energy delivered by the battery.
    pub battery_out_wh: f64,
    /// Deficit energy drawn from the grid (brown).
    pub grid_wh: f64,
    /// Surplus renewable energy thrown away.
    pub curtailed_wh: f64,
    /// Total cluster consumption.
    pub load_wh: f64,
}

/// Job lifecycle events observed in one slot.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SlotEvents {
    /// Batch jobs that arrived this slot.
    pub jobs_submitted: usize,
    /// Batch jobs that completed this slot.
    pub jobs_completed: usize,
    /// Completions this slot that had already missed their deadline.
    pub deadline_misses: usize,
    /// Disk repairs that finished this slot.
    pub repairs_completed: u64,
    /// Disks that failed this slot (failure injection).
    pub disk_failures: u64,
}

/// Everything that happened in one simulated slot.
#[derive(Debug, Clone, Serialize)]
pub struct SlotOutcome {
    /// Slot index.
    pub slot: usize,
    /// Gears actually powered (the decision clamped to the physical range).
    pub gears: usize,
    /// The policy's full decision (gear request, per-job batch bytes,
    /// reclaim budget).
    pub decision: Decision,
    /// Batch bytes the policy asked to run.
    pub requested_batch_bytes: u64,
    /// Batch bytes actually executed (capped by remaining work).
    pub executed_batch_bytes: u64,
    /// Energy flows of the slot.
    pub energy: EnergyFlows,
    /// Battery state of charge after settlement (Wh).
    pub battery_soc_wh: f64,
    /// State of charge as a fraction of the usable window (0 when no
    /// battery is configured).
    pub battery_soc_frac: f64,
    /// Job lifecycle events.
    pub events: SlotEvents,
    /// Interactive latency distribution of this slot alone.
    pub latency: LatencyReport,
    /// Batch jobs still pending after the slot.
    pub pending_jobs: usize,
    /// Write-log backlog after the slot (bytes).
    pub writelog_pending_bytes: u64,
}

/// A resumable slot-by-slot simulation of one experiment.
pub struct Simulation {
    cfg: ExperimentConfig,
    clock: SlotClock,
    slots: usize,
    hours: f64,

    cluster: Cluster,
    workload: Workload,
    model: PlanningModel,
    green_trace: TimeSeries,
    forecaster: Box<dyn Forecaster + Send>,
    battery_spec: BatterySpec,
    battery: Battery,
    ledger: EnergyLedger,
    policy: Box<dyn crate::policy::Scheduler + Send>,

    hist: LogHistogram,
    jobs: Vec<BatchJob>,
    job_index: HashMap<JobId, usize>,
    batch_report: BatchReport,
    gears_series: Vec<usize>,

    positioning_s: f64,
    secs_per_byte: f64,
    total_batch_bw: f64,
    rr_cursor: usize,

    failure_dice: FailureDice,
    prev_spinups: Vec<u64>,
    repair_jobs: HashMap<JobId, usize>,
    next_repair_id: u64,
    repairs_completed: u64,

    cursor: usize,
    observers: Vec<Box<dyn SlotObserver + Send>>,
    time_phases: bool,
}

impl Simulation {
    /// Build a simulation, reporting configuration problems (missing trace
    /// files, zero-slot horizons) as errors.
    pub fn try_new(cfg: &ExperimentConfig) -> Result<Simulation, ConfigError> {
        if cfg.slots == 0 {
            return Err(ConfigError::Invalid {
                message: "experiment needs at least one slot".to_string(),
            });
        }
        let clock = cfg.clock;
        let slots = cfg.slots;
        let width = clock.width();
        let rngs = gm_sim::RngFactory::new(cfg.seed);

        let mut cluster = Cluster::new(cfg.cluster.clone());
        cluster.set_slot_width(width);
        let workload = Workload::generate(cfg.workload.clone(), cfg.seed);
        let model = PlanningModel::from_spec(&cfg.cluster);

        let green_trace = cfg.energy.source.try_materialize(clock, slots, &rngs)?;
        let forecaster = cfg.energy.forecast.build(&green_trace, clock, &rngs);
        let battery_spec = cfg.energy.battery.unwrap_or_else(|| BatterySpec::lithium_ion(0.0));
        let battery = Battery::new(battery_spec);
        let ledger = EnergyLedger::new(clock, cfg.energy.grid);
        let policy = cfg.policy.build();

        let positioning_s =
            cfg.cluster.disk.avg_seek.as_secs_f64() + cfg.cluster.disk.avg_rotation.as_secs_f64();
        let secs_per_byte = 1.0 / cfg.cluster.disk.transfer_bps;
        let total_batch_bw = model.gears as f64 * model.disks_per_gear as f64 * model.disk_bw_bps;

        let failure_dice = FailureDice::new(cfg.seed);
        let n_disks = cfg.cluster.topology.n_disks();

        Ok(Simulation {
            cfg: cfg.clone(),
            clock,
            slots,
            hours: clock.width_hours(),
            cluster,
            workload,
            model,
            green_trace,
            forecaster,
            battery_spec,
            battery,
            ledger,
            policy,
            hist: LogHistogram::for_latency_secs(),
            jobs: Vec::new(),
            job_index: HashMap::new(),
            batch_report: BatchReport::default(),
            gears_series: Vec::with_capacity(slots),
            positioning_s,
            secs_per_byte,
            total_batch_bw,
            rr_cursor: 0,
            failure_dice,
            prev_spinups: vec![0u64; n_disks],
            repair_jobs: HashMap::new(),
            next_repair_id: 1u64 << 40, // well above workload job ids
            repairs_completed: 0,
            cursor: 0,
            observers: Vec::new(),
            time_phases: false,
        })
    }

    /// Build a simulation, panicking on configuration errors (the historic
    /// behaviour; message-compatible with the old panicking path).
    pub fn new(cfg: &ExperimentConfig) -> Simulation {
        Simulation::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attach an observer (builder style).
    pub fn with_observer(mut self, observer: Box<dyn SlotObserver + Send>) -> Self {
        self.add_observer(observer);
        self
    }

    /// Attach an observer.
    pub fn add_observer(&mut self, observer: Box<dyn SlotObserver + Send>) {
        self.time_phases = self.time_phases || observer.wants_phases();
        self.observers.push(observer);
    }

    /// Index of the next slot to simulate.
    pub fn current_slot(&self) -> usize {
        self.cursor
    }

    /// Total slots in the horizon.
    pub fn total_slots(&self) -> usize {
        self.slots
    }

    /// Whether the horizon is exhausted.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.slots
    }

    /// Battery state of charge right now (Wh).
    pub fn battery_soc_wh(&self) -> f64 {
        self.battery.stored_wh()
    }

    /// Simulate one slot. Returns `None` once the horizon is exhausted.
    #[allow(clippy::too_many_lines)] // the slot loop is one coherent unit
    pub fn step(&mut self) -> Option<SlotOutcome> {
        if self.cursor >= self.slots {
            return None;
        }
        let s = self.cursor;
        let clock = self.clock;
        let width = clock.width();
        let hours = self.hours;
        let now = clock.slot_start(s);
        let slot_end = clock.slot_end(s);
        let phase_start = self.time_phases.then(Instant::now);

        // ---- decide ----------------------------------------------------
        self.battery.apply_self_discharge(width);

        // Failure injection: draw per disk, spawn repair jobs.
        let failures_before = self.cluster.total_failures();
        if let Some(fail_spec) = self.cfg.failures {
            for (d, prev) in self.prev_spinups.iter_mut().enumerate() {
                let spinups = self.cluster.disk_spinups(d);
                let cycles = spinups - *prev;
                *prev = spinups;
                let p =
                    fail_spec.failure_probability(hours, self.cluster.disk_in_standby(d), cycles);
                if self.failure_dice.draw(d, s) < p {
                    let report = self.cluster.fail_disk(d, now);
                    if report.rebuild_bytes > 0 {
                        let id = JobId(self.next_repair_id);
                        self.next_repair_id += 1;
                        self.repair_jobs.insert(id, d);
                        self.job_index.insert(id, self.jobs.len());
                        self.jobs.push(BatchJob::new(
                            id,
                            gm_workload::BatchKind::Repair,
                            now,
                            now + gm_sim::SimDuration::from_hours(24),
                            report.rebuild_bytes,
                        ));
                    }
                }
            }
        }
        let disk_failures = self.cluster.total_failures() - failures_before;

        // Batch arrivals.
        let mut jobs_submitted = 0usize;
        for job in self.workload.batch_arrivals_in_slot(clock, s) {
            self.batch_report.jobs_submitted += 1;
            self.batch_report.bytes_submitted += job.total_bytes;
            self.job_index.insert(job.id, self.jobs.len());
            self.jobs.push(job);
            jobs_submitted += 1;
        }

        // Forecasts: the policy sees the forecaster's view of the whole
        // window, *including* the current slot. With the Oracle forecaster
        // this reproduces the era's accurate-next-slot-prediction
        // convention exactly; with imperfect forecasters the policy may now
        // misjudge even the present — which is what forecast-sensitivity
        // experiments measure. Energy settlement always uses the truth.
        let green_forecast_wh: Vec<f64> =
            self.forecaster.predict(s, DEFAULT_HORIZON).into_iter().map(|w| w * hours).collect();
        let interactive_busy_secs: Vec<f64> = (0..DEFAULT_HORIZON)
            .map(|k| {
                self.workload.interactive().expected_busy_secs_in_slot(
                    clock,
                    s + k,
                    self.positioning_s,
                    self.secs_per_byte,
                )
            })
            .collect();

        // Job views.
        let pending_count = self.jobs.iter().filter(|j| j.is_pending()).count();
        let share_bps = self.total_batch_bw * TOTAL_RHO / pending_count.max(1) as f64;
        let job_views: Vec<JobView> = self
            .jobs
            .iter()
            .filter(|j| j.is_pending())
            .map(|j| JobView {
                id: j.id,
                remaining_bytes: j.remaining_bytes,
                deadline_slot: deadline_slot_for(clock, j.deadline),
                critical: j.is_critical(now, share_bps),
            })
            .collect();

        let ctx = SchedContext {
            slot: s,
            now,
            clock,
            green_forecast_wh,
            interactive_busy_secs,
            jobs: job_views,
            battery: BatteryView {
                stored_wh: self.battery.stored_wh(),
                headroom_wh: self.battery.headroom_wh(),
                efficiency: self.battery.spec().efficiency,
                charge_capacity_wh: self.battery.charge_capacity_wh(width),
                discharge_capacity_wh: self.battery.discharge_capacity_wh(width),
            },
            model: self.model,
            writelog_pending_bytes: self.cluster.write_log().pending_total(),
            grid: self.cfg.energy.grid,
        };

        let decision = self.policy.decide(&ctx);
        let phase_start = self.emit_phase(s, Phase::Decide, phase_start);

        // ---- execute ---------------------------------------------------
        let gears = decision.gears.clamp(1, self.model.gears);
        self.cluster.set_active_gears(gears, now);
        self.gears_series.push(gears);

        // Interactive service: record globally (for the final report) and
        // per slot (for the outcome), in the same order as always.
        let mut slot_hist = LogHistogram::for_latency_secs();
        for req in self.workload.requests_in_slot(clock, s) {
            let served = self.cluster.serve_request(&req);
            let latency_s = served.latency.as_secs_f64();
            self.hist.record(latency_s);
            slot_hist.record(latency_s);
        }

        // Batch execution: spread each job's bytes across the active disks.
        let mut executed_batch_bytes = 0u64;
        let active_disks: Vec<usize> =
            (0..gears).flat_map(|g| self.cluster.topology().disks_in_gear(g)).collect();
        for (job_id, bytes) in &decision.batch_bytes {
            let Some(&idx) = self.job_index.get(job_id) else { continue };
            let job = &mut self.jobs[idx];
            let bytes = (*bytes).min(job.remaining_bytes);
            if bytes == 0 {
                continue;
            }
            // Repair jobs write onto their specific replacement disk.
            if let Some(&disk) = self.repair_jobs.get(job_id) {
                let served = self.cluster.rebuild_step(disk, bytes, now);
                job.perform(bytes, served.completion);
                executed_batch_bytes += bytes;
                continue;
            }
            // Spread over up to 32 disks per job per slot (keeps chunks
            // sequential and large).
            let spread = active_disks.len().clamp(1, 32);
            let per = (bytes / spread as u64).max(1);
            let mut assigned = 0u64;
            let mut last_completion = now;
            for k in 0..spread {
                if assigned >= bytes {
                    break;
                }
                let chunk = per.min(bytes - assigned);
                let disk = active_disks[(self.rr_cursor + k) % active_disks.len()];
                let served = self.cluster.add_sequential_work(disk, chunk, now);
                last_completion = last_completion.max(served.completion);
                assigned += chunk;
            }
            self.rr_cursor = (self.rr_cursor + spread) % active_disks.len().max(1);
            job.perform(assigned, last_completion);
            executed_batch_bytes += assigned;
        }

        // Write-log reclaim.
        if decision.reclaim_budget_bytes > 0 {
            self.cluster.reclaim(decision.reclaim_budget_bytes, now);
        }
        let phase_start = self.emit_phase(s, Phase::Execute, phase_start);

        // ---- settle ----------------------------------------------------
        let slot_energy = self.cluster.end_slot(slot_end, width);
        let load_wh = slot_energy.total_wh();
        let green_wh = self.green_trace.get(s) * hours;
        let green_direct = green_wh.min(load_wh);
        let surplus = green_wh - green_direct;
        let charge = self.battery.charge(surplus, width);
        let curtailed = surplus - charge.drawn_wh;
        let deficit = load_wh - green_direct;
        // Discharge timing per the configured strategy.
        let mid = now + width / 2;
        let hour = mid.hour_of_day();
        let allowed = match self.cfg.energy.discharge {
            DischargeStrategy::Eager => deficit,
            DischargeStrategy::PeakOnly => {
                if (7.0..23.0).contains(&hour) {
                    deficit
                } else {
                    0.0
                }
            }
            DischargeStrategy::Reserve(frac) => {
                if (17.0..23.0).contains(&hour) {
                    deficit // the peak may spend the reserve
                } else {
                    let reserve = self.battery.spec().usable_wh() * frac.clamp(0.0, 1.0);
                    deficit.min((self.battery.stored_wh() - reserve).max(0.0))
                }
            }
        };
        let battery_out = self.battery.discharge(allowed, width);
        let brown = deficit - battery_out;

        self.ledger.record_slot(
            s,
            SlotFlows {
                green_produced_wh: green_wh,
                green_direct_wh: green_direct,
                battery_drawn_wh: charge.drawn_wh,
                battery_out_wh: battery_out,
                brown_wh: brown,
                curtailed_wh: curtailed,
                load_wh,
            },
        );
        self.ledger.add_spinup_overhead(slot_energy.spinup_overhead_wh);
        self.ledger.add_reclaim_overhead(slot_energy.reclaim_overhead_wh);

        self.forecaster.observe_actual(s, self.green_trace.get(s));

        // Retire completed jobs (each counted exactly once: completed jobs
        // leave the index below). Repair completions restore redundancy
        // instead of entering the batch statistics.
        let mut jobs_completed = 0usize;
        let mut deadline_misses = 0usize;
        let mut slot_repairs = 0u64;
        for j in self.jobs.iter() {
            if let Some(met) = j.met_deadline() {
                if self.job_index.contains_key(&j.id) {
                    if let Some(&disk) = self.repair_jobs.get(&j.id) {
                        self.cluster.mark_rebuilt(disk);
                        self.repairs_completed += 1;
                        slot_repairs += 1;
                    } else {
                        self.batch_report.jobs_completed += 1;
                        self.batch_report.bytes_completed += j.total_bytes;
                        jobs_completed += 1;
                        if !met {
                            self.batch_report.deadline_misses += 1;
                            deadline_misses += 1;
                        }
                    }
                }
            }
        }
        let jobs = &self.jobs;
        self.job_index.retain(|_, &mut idx| jobs[idx].is_pending());
        self.emit_phase(s, Phase::Settle, phase_start);

        self.cursor += 1;

        let usable = self.battery_spec.usable_wh();
        let outcome = SlotOutcome {
            slot: s,
            gears,
            requested_batch_bytes: decision.batch_bytes.iter().map(|(_, b)| b).sum(),
            executed_batch_bytes,
            decision,
            energy: EnergyFlows {
                green_produced_wh: green_wh,
                green_direct_wh: green_direct,
                battery_in_wh: charge.drawn_wh,
                battery_out_wh: battery_out,
                grid_wh: brown,
                curtailed_wh: curtailed,
                load_wh,
            },
            battery_soc_wh: self.battery.stored_wh(),
            battery_soc_frac: if usable > 0.0 { self.battery.stored_wh() / usable } else { 0.0 },
            events: SlotEvents {
                jobs_submitted,
                jobs_completed,
                deadline_misses,
                repairs_completed: slot_repairs,
                disk_failures,
            },
            latency: LatencyReport::from_histogram(&slot_hist),
            pending_jobs: self.job_index.len(),
            writelog_pending_bytes: self.cluster.write_log().pending_total(),
        };
        for obs in &mut self.observers {
            obs.on_slot(&outcome);
        }
        Some(outcome)
    }

    /// Emit the elapsed time since `start` as a phase sample and restart
    /// the clock. No-op (and no clock reads) when no observer asked for
    /// phase timing.
    fn emit_phase(&mut self, slot: usize, phase: Phase, start: Option<Instant>) -> Option<Instant> {
        let start = start?;
        let nanos = start.elapsed().as_nanos() as u64;
        for obs in &mut self.observers {
            if obs.wants_phases() {
                obs.on_phase(slot, phase, nanos);
            }
        }
        Some(Instant::now())
    }

    /// Run the remaining slots and produce the final report.
    pub fn run_to_end(mut self) -> RunReport {
        while self.step().is_some() {}
        self.into_report()
    }

    /// Produce the end-of-run report from the current state (normally
    /// called with the horizon exhausted; an early call reports the run so
    /// far, with every not-yet-simulated slot absent from the series).
    pub fn into_report(mut self) -> RunReport {
        // Unfinished work at the end of the horizon (repair jobs are
        // tracked separately and excluded from batch statistics).
        let horizon_end = self.clock.slot_end(self.slots - 1);
        for j in
            self.jobs.iter().filter(|j| j.is_pending() && !self.repair_jobs.contains_key(&j.id))
        {
            self.batch_report.bytes_completed += j.total_bytes - j.remaining_bytes;
            if j.deadline <= horizon_end {
                self.batch_report.unfinished_late += 1;
            }
        }

        self.ledger.set_battery_losses(
            self.battery.efficiency_loss_wh(),
            self.battery.self_discharge_loss_wh(),
        );

        let battery_label = if self.battery_spec.capacity_wh > 0.0 {
            format!(
                "LI-like:{:.1}kWh(σ={})",
                self.battery_spec.capacity_wh / 1000.0,
                self.battery_spec.efficiency
            )
        } else {
            "none".to_string()
        };

        for obs in &mut self.observers {
            obs.on_finish();
        }

        let totals = self.ledger.totals();
        RunReport {
            policy: self.policy.label(),
            source: self.cfg.energy.source.label(),
            battery: battery_label,
            seed: self.cfg.seed,
            slots: self.slots,
            load_kwh: totals.load_wh / 1000.0,
            brown_kwh: self.ledger.brown_kwh(),
            green_produced_kwh: totals.green_produced_wh / 1000.0,
            green_direct_kwh: totals.green_direct_wh / 1000.0,
            battery_out_kwh: totals.battery_out_wh / 1000.0,
            curtailed_kwh: totals.curtailed_wh / 1000.0,
            battery_eff_loss_kwh: self.ledger.battery_efficiency_loss_wh() / 1000.0,
            battery_selfdisch_kwh: self.ledger.battery_self_discharge_wh() / 1000.0,
            spinup_overhead_kwh: self.ledger.spinup_overhead_wh() / 1000.0,
            reclaim_overhead_kwh: self.ledger.reclaim_overhead_wh() / 1000.0,
            green_utilization: self.ledger.green_utilization(),
            green_coverage: self.ledger.green_coverage(),
            carbon_kg: self.ledger.carbon_g() / 1000.0,
            cost_dollars: self.ledger.cost_dollars(),
            battery_cycles: self.battery.equivalent_full_cycles(),
            battery_wear_dollars: self.battery.wear_cost_dollars(),
            latency: LatencyReport::from_histogram(&self.hist),
            batch: self.batch_report,
            spinups: self.cluster.total_spinups(),
            forced_spinups: self.cluster.total_forced_spinups(),
            writelog_peak_bytes: self.cluster.write_log().peak_pending(),
            failures: self.cluster.total_failures(),
            lost_objects: self.cluster.total_lost_objects(),
            degraded_reads: self.cluster.degraded_reads(),
            rebuild_bytes: self.cluster.total_rebuild_bytes(),
            repairs_completed: self.repairs_completed,
            cache_hit_ratio: self.cluster.cache().hit_ratio(),
            gears_series: self.gears_series,
            load_series_wh: self.ledger.load_series().values().to_vec(),
            green_series_wh: self.ledger.green_series().values().to_vec(),
            brown_series_wh: self.ledger.brown_series().values().to_vec(),
            battery_out_series_wh: self.ledger.battery_out_series().values().to_vec(),
            curtailed_series_wh: self.ledger.curtailed_series().values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceKind;
    use crate::observe::{NullObserver, PhaseTimer};
    use crate::policy::PolicyKind;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig::small_demo(11).with_slots(24)
    }

    #[test]
    fn step_returns_one_outcome_per_slot_then_none() {
        let mut sim = Simulation::new(&quick_cfg());
        for s in 0..24 {
            assert_eq!(sim.current_slot(), s);
            let o = sim.step().expect("slot available");
            assert_eq!(o.slot, s);
            assert!((1..=3).contains(&o.gears));
        }
        assert!(sim.is_done());
        assert!(sim.step().is_none());
        assert!(sim.step().is_none(), "stays exhausted");
    }

    #[test]
    fn outcomes_satisfy_energy_identities() {
        let mut sim = Simulation::new(&quick_cfg());
        while let Some(o) = sim.step() {
            let e = &o.energy;
            assert!(
                (e.green_direct_wh + e.battery_out_wh + e.grid_wh - e.load_wh).abs() < 1e-9,
                "slot {}: supply identity",
                o.slot
            );
            assert!(
                (e.green_direct_wh + e.battery_in_wh + e.curtailed_wh - e.green_produced_wh).abs()
                    < 1e-9,
                "slot {}: production identity",
                o.slot
            );
            assert!(o.battery_soc_wh >= 0.0);
            assert!((0.0..=1.0).contains(&o.battery_soc_frac));
            assert!(o.executed_batch_bytes <= o.requested_batch_bytes);
        }
    }

    #[test]
    fn stepwise_report_equals_run_experiment() {
        let cfg = quick_cfg();
        let via_wrapper = crate::harness::run_experiment(&cfg);
        let mut sim = Simulation::new(&cfg);
        while sim.step().is_some() {}
        let via_steps = sim.into_report();
        assert_eq!(
            serde_json::to_string(&via_wrapper).unwrap(),
            serde_json::to_string(&via_steps).unwrap(),
            "step-wise run must be field-for-field identical"
        );
    }

    #[test]
    fn observers_do_not_change_the_report() {
        let cfg = quick_cfg();
        let bare = crate::harness::run_experiment(&cfg);
        let (timer, profile) = PhaseTimer::new();
        let observed = Simulation::new(&cfg)
            .with_observer(Box::new(NullObserver))
            .with_observer(Box::new(timer))
            .run_to_end();
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
        let p = profile.lock().unwrap();
        assert_eq!(p.slots, 24);
        assert!(p.total_ns() > 0);
    }

    #[test]
    fn try_new_reports_missing_trace_instead_of_panicking() {
        let cfg = quick_cfg().with_source(SourceKind::TraceCsv {
            label: "x".into(),
            path: "/nonexistent/definitely-missing.csv".into(),
        });
        let err = Simulation::try_new(&cfg).err().expect("missing trace is an error");
        let msg = err.to_string();
        assert!(
            msg.starts_with("trace x: cannot read /nonexistent/definitely-missing.csv"),
            "{msg}"
        );
    }

    #[test]
    fn try_new_rejects_zero_slots() {
        let cfg = quick_cfg().with_slots(0);
        assert!(matches!(Simulation::try_new(&cfg), Err(ConfigError::Invalid { .. })));
    }

    #[test]
    fn policy_decisions_are_observable() {
        let mut sim = Simulation::new(&quick_cfg().with_policy(PolicyKind::AllOn));
        let o = sim.step().expect("first slot");
        assert_eq!(o.decision.gears, 3, "all-on always asks for every gear");
        assert_eq!(o.gears, 3);
    }
}
