//! The step-wise simulation core.
//!
//! [`Simulation`] is the resumable state machine behind
//! [`crate::harness::run_experiment`]: construct it from an
//! [`ExperimentConfig`], drive it one slot at a time with
//! [`Simulation::step`] (each step returns a [`SlotOutcome`] describing
//! everything that happened in that slot), or let
//! [`Simulation::run_to_end`] finish the horizon and produce the final
//! [`RunReport`].
//!
//! ```text
//! each step (one slot), the phase pipeline (see crate::phases):
//!   Forecast — battery self-discharge, green forecast, expected
//!              interactive busy time
//!   Classify — failure injection, batch arrivals, job views
//!   Plan     — SchedContext assembly over the scratch, policy.decide()
//!   Gear     — clamp and apply the gear decision
//!   Execute  — serve interactive requests, spread batch bytes over
//!              active disks, write-log reclaim
//!   Settle   — integrate energy, settle green → battery → grid, record
//!              the ledger slot, update forecasters, retire finished jobs
//! ```
//!
//! Each phase reads the immutable [`SlotContext`] and exchanges bulk data
//! through a caller-owned [`SlotScratch`] of reusable buffers, so the
//! steady-state slot loop allocates nothing. Attached [`SlotObserver`]s
//! receive each outcome (and optionally per-phase wall-clock); they cannot
//! influence the run, so reports are identical with or without observers.

use crate::config::{ConfigError, ExperimentConfig};
use crate::observe::{Phase, SlotObserver};
use crate::phases::{self, SlotContext, SlotScratch};
use crate::policy::{Decision, PlanningModel};
use crate::report::{BatchReport, LatencyReport, RunReport};
use crate::scheduler::DEFAULT_HORIZON;
use crate::world::{World, WorldCache};
use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::forecast::Forecaster;
use gm_energy::ledger::EnergyLedger;
use gm_sim::time::{SimTime, SlotIdx};
use gm_sim::{LogHistogram, SlotClock, TimeSeries};
use gm_storage::{Cluster, FailureDice};
use gm_workload::trace::Workload;
use gm_workload::{BatchJob, JobId};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Last slot whose *end* is at or before `deadline` — the latest slot in
/// which deadline work can safely be scheduled.
pub(crate) fn deadline_slot_for(clock: SlotClock, deadline: SimTime) -> SlotIdx {
    if deadline.0 < clock.width().0 {
        return 0;
    }
    let k = clock.slot_of(SimTime(deadline.0 - 1));
    if clock.slot_end(k) <= deadline {
        k
    } else {
        k.saturating_sub(1)
    }
}

/// Energy flows of one slot (Wh). The settlement identities hold exactly:
/// `load = green_direct + battery_out + grid` and
/// `green_produced = green_direct + battery_in + curtailed`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EnergyFlows {
    /// Renewable energy produced.
    pub green_produced_wh: f64,
    /// Renewable energy consumed directly by the load.
    pub green_direct_wh: f64,
    /// Surplus renewable energy accepted by the battery.
    pub battery_in_wh: f64,
    /// Deficit energy delivered by the battery.
    pub battery_out_wh: f64,
    /// Deficit energy drawn from the grid (brown).
    pub grid_wh: f64,
    /// Surplus renewable energy thrown away.
    pub curtailed_wh: f64,
    /// Total cluster consumption.
    pub load_wh: f64,
}

/// Job lifecycle events observed in one slot.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SlotEvents {
    /// Batch jobs that arrived this slot.
    pub jobs_submitted: usize,
    /// Batch jobs that completed this slot.
    pub jobs_completed: usize,
    /// Completions this slot that had already missed their deadline.
    pub deadline_misses: usize,
    /// Disk repairs that finished this slot.
    pub repairs_completed: u64,
    /// Disks that failed this slot (failure injection).
    pub disk_failures: u64,
}

/// Everything that happened in one simulated slot.
#[derive(Debug, Clone, Serialize)]
pub struct SlotOutcome {
    /// Slot index.
    pub slot: usize,
    /// Gears actually powered (the decision clamped to the physical range).
    pub gears: usize,
    /// The policy's full decision (gear request, per-job batch bytes,
    /// reclaim budget).
    pub decision: Decision,
    /// Batch bytes the policy asked to run.
    pub requested_batch_bytes: u64,
    /// Batch bytes actually executed (capped by remaining work).
    pub executed_batch_bytes: u64,
    /// Planner diagnostic: bytes whose deadline pressure exceeded the
    /// planning window's capacity this slot (0 for policies without a
    /// feasibility-checking planner). Mirrors
    /// [`Decision::infeasible_bytes`].
    pub deadline_infeasible_bytes: u64,
    /// Energy flows of the slot.
    pub energy: EnergyFlows,
    /// Battery state of charge after settlement (Wh).
    pub battery_soc_wh: f64,
    /// State of charge as a fraction of the usable window (0 when no
    /// battery is configured).
    pub battery_soc_frac: f64,
    /// Job lifecycle events.
    pub events: SlotEvents,
    /// Interactive latency distribution of this slot alone.
    pub latency: LatencyReport,
    /// Batch jobs still pending after the slot.
    pub pending_jobs: usize,
    /// Write-log backlog after the slot (bytes).
    pub writelog_pending_bytes: u64,
}

/// A resumable slot-by-slot simulation of one experiment.
///
/// Fields are `pub(crate)` so the phase modules in [`crate::phases`] can
/// operate on their slice of the state; outside the crate the simulation
/// is driven exclusively through its public methods.
pub struct Simulation {
    pub(crate) cfg: ExperimentConfig,
    pub(crate) clock: SlotClock,
    pub(crate) slots: usize,
    pub(crate) hours: f64,

    pub(crate) cluster: Cluster,
    pub(crate) workload: Arc<Workload>,
    pub(crate) model: PlanningModel,
    pub(crate) green_trace: Arc<TimeSeries>,
    pub(crate) forecaster: Box<dyn Forecaster + Send>,
    pub(crate) battery_spec: BatterySpec,
    pub(crate) battery: Battery,
    pub(crate) ledger: EnergyLedger,
    pub(crate) policy: Box<dyn crate::policy::Scheduler + Send>,

    pub(crate) hist: LogHistogram,
    pub(crate) jobs: Vec<BatchJob>,
    pub(crate) job_index: HashMap<JobId, usize>,
    /// Indices into `jobs` of the still-pending jobs, in submission order
    /// (indices only ever grow, and settle's retain preserves order), so
    /// scanning it is equivalent to filtering `jobs` by pending state.
    pub(crate) active_jobs: Vec<usize>,
    /// Cursor into the submission-ordered batch population: jobs before it
    /// have been admitted.
    pub(crate) arrivals_cursor: usize,
    pub(crate) batch_report: BatchReport,
    pub(crate) gears_series: Vec<usize>,

    pub(crate) positioning_s: f64,
    pub(crate) secs_per_byte: f64,
    pub(crate) total_batch_bw: f64,
    pub(crate) rr_cursor: usize,
    /// Memoised expected interactive busy-seconds per absolute slot (NaN =
    /// not yet computed). The expectation is pure per slot, and horizons
    /// overlap by `DEFAULT_HORIZON - 1` slots, so memoisation turns an
    /// O(horizon) recomputation per slot into O(1) amortised.
    pub(crate) busy_memo: Vec<f64>,

    pub(crate) failure_dice: FailureDice,
    pub(crate) prev_spinups: Vec<u64>,
    pub(crate) repair_jobs: HashMap<JobId, usize>,
    pub(crate) next_repair_id: u64,
    pub(crate) repairs_completed: u64,

    pub(crate) cursor: usize,
    pub(crate) observers: Vec<Box<dyn SlotObserver + Send>>,
    pub(crate) time_phases: bool,
    /// The scratch used by the allocating convenience APIs ([`Self::step`],
    /// [`Self::run_to_end`]); taken and restored around each step so
    /// external scratches (via [`Self::step_with`]) stay possible.
    pub(crate) scratch: SlotScratch,
}

impl Simulation {
    /// Build a simulation, reporting configuration problems (missing trace
    /// files, zero-slot horizons) as errors. Cold path: materialises a
    /// fresh [`World`]; sweeps share worlds via [`Simulation::try_new_in`].
    pub fn try_new(cfg: &ExperimentConfig) -> Result<Simulation, ConfigError> {
        if cfg.slots == 0 {
            return Err(ConfigError::Invalid {
                message: "experiment needs at least one slot".to_string(),
            });
        }
        let world = World::try_materialize(cfg)?;
        Ok(Simulation::from_world(cfg, world))
    }

    /// Like [`Simulation::try_new`], but materialises the world through
    /// `cache` so runs over the same scenario share their immutable inputs.
    pub fn try_new_in(
        cfg: &ExperimentConfig,
        cache: &WorldCache,
    ) -> Result<Simulation, ConfigError> {
        if cfg.slots == 0 {
            return Err(ConfigError::Invalid {
                message: "experiment needs at least one slot".to_string(),
            });
        }
        let world = World::try_materialize_in(cfg, cache)?;
        Ok(Simulation::from_world(cfg, world))
    }

    /// Build the per-run mutable state over an already-materialised world.
    ///
    /// `world` must have been materialised for `cfg` (same seed, workload,
    /// energy and cluster sections) — the cache key derivation in
    /// [`crate::world`] guarantees this on the cached path.
    pub fn from_world(cfg: &ExperimentConfig, world: World) -> Simulation {
        let clock = cfg.clock;
        let slots = cfg.slots;
        let width = clock.width();
        let rngs = gm_sim::RngFactory::new(cfg.seed);
        let World { workload, green_trace, layout } = world;

        let mut cluster = Cluster::from_layout(layout);
        cluster.set_slot_width(width);
        let model = PlanningModel::from_spec(&cfg.cluster);

        let forecaster = cfg.energy.forecast.build(&green_trace, clock, &rngs);
        let battery_spec = cfg.energy.battery.unwrap_or_else(|| BatterySpec::lithium_ion(0.0));
        let battery = Battery::new(battery_spec);
        let ledger = EnergyLedger::new(clock, cfg.energy.grid);
        let policy = cfg.policy.build();

        let positioning_s =
            cfg.cluster.disk.avg_seek.as_secs_f64() + cfg.cluster.disk.avg_rotation.as_secs_f64();
        let secs_per_byte = 1.0 / cfg.cluster.disk.transfer_bps;
        let total_batch_bw = model.gears as f64 * model.disks_per_gear as f64 * model.disk_bw_bps;

        let failure_dice = FailureDice::new(cfg.seed);
        let n_disks = cfg.cluster.topology.n_disks();

        Simulation {
            cfg: cfg.clone(),
            clock,
            slots,
            hours: clock.width_hours(),
            cluster,
            workload,
            model,
            green_trace,
            forecaster,
            battery_spec,
            battery,
            ledger,
            policy,
            hist: LogHistogram::for_latency_secs(),
            jobs: Vec::new(),
            job_index: HashMap::new(),
            active_jobs: Vec::new(),
            arrivals_cursor: 0,
            batch_report: BatchReport::default(),
            gears_series: Vec::with_capacity(slots),
            positioning_s,
            secs_per_byte,
            total_batch_bw,
            rr_cursor: 0,
            busy_memo: vec![f64::NAN; slots + DEFAULT_HORIZON],
            failure_dice,
            prev_spinups: vec![0u64; n_disks],
            repair_jobs: HashMap::new(),
            next_repair_id: 1u64 << 40, // well above workload job ids
            repairs_completed: 0,
            cursor: 0,
            observers: Vec::new(),
            time_phases: false,
            scratch: SlotScratch::new(),
        }
    }

    /// Build a simulation, panicking on configuration errors (the historic
    /// behaviour; message-compatible with the old panicking path).
    pub fn new(cfg: &ExperimentConfig) -> Simulation {
        Simulation::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Attach an observer (builder style).
    pub fn with_observer(mut self, observer: Box<dyn SlotObserver + Send>) -> Self {
        self.add_observer(observer);
        self
    }

    /// Attach an observer.
    pub fn add_observer(&mut self, observer: Box<dyn SlotObserver + Send>) {
        self.time_phases = self.time_phases || observer.wants_phases();
        self.observers.push(observer);
    }

    /// Index of the next slot to simulate.
    pub fn current_slot(&self) -> usize {
        self.cursor
    }

    /// Total slots in the horizon.
    pub fn total_slots(&self) -> usize {
        self.slots
    }

    /// Whether the horizon is exhausted.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.slots
    }

    /// Battery state of charge right now (Wh).
    pub fn battery_soc_wh(&self) -> f64 {
        self.battery.stored_wh()
    }

    /// Simulate one slot using the simulation's own scratch. Returns
    /// `None` once the horizon is exhausted.
    pub fn step(&mut self) -> Option<SlotOutcome> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.step_with(&mut scratch);
        self.scratch = scratch;
        out
    }

    /// Simulate one slot through the phase pipeline
    /// (`Forecast → Classify → Plan → Gear → Execute → Settle`, see
    /// [`crate::phases`]), exchanging bulk data through the caller-owned
    /// `scratch`. Passing the same scratch to every step (and across
    /// back-to-back simulations) keeps the steady-state loop free of heap
    /// allocation. Returns `None` once the horizon is exhausted.
    pub fn step_with(&mut self, scratch: &mut SlotScratch) -> Option<SlotOutcome> {
        if self.cursor >= self.slots {
            return None;
        }
        let s = self.cursor;
        let ctx = SlotContext {
            slot: s,
            now: self.clock.slot_start(s),
            slot_end: self.clock.slot_end(s),
            width: self.clock.width(),
            hours: self.hours,
            clock: self.clock,
        };
        let t = self.time_phases.then(Instant::now);

        phases::forecast::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Forecast, t);
        let classified = phases::classify::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Classify, t);
        let decision = phases::plan::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Plan, t);
        let gears = phases::gear::run(self, &ctx, &decision);
        let t = self.emit_phase(s, Phase::Gear, t);
        let executed_batch_bytes = phases::execute::run(self, &ctx, scratch, &decision, gears);
        let t = self.emit_phase(s, Phase::Execute, t);
        let settled = phases::settle::run(self, &ctx);
        self.emit_phase(s, Phase::Settle, t);

        self.cursor += 1;

        let usable = self.battery_spec.usable_wh();
        let outcome = SlotOutcome {
            slot: s,
            gears,
            requested_batch_bytes: decision.batch_bytes.iter().map(|(_, b)| b).sum(),
            executed_batch_bytes,
            deadline_infeasible_bytes: decision.infeasible_bytes,
            decision,
            energy: settled.energy,
            battery_soc_wh: self.battery.stored_wh(),
            battery_soc_frac: if usable > 0.0 { self.battery.stored_wh() / usable } else { 0.0 },
            events: SlotEvents {
                jobs_submitted: classified.jobs_submitted,
                jobs_completed: settled.jobs_completed,
                deadline_misses: settled.deadline_misses,
                repairs_completed: settled.repairs_completed,
                disk_failures: classified.disk_failures,
            },
            latency: LatencyReport::from_histogram(&scratch.slot_hist),
            pending_jobs: self.job_index.len(),
            writelog_pending_bytes: self.cluster.write_log().pending_total(),
        };
        for obs in &mut self.observers {
            obs.on_slot(&outcome);
        }
        Some(outcome)
    }

    /// Memoised expected interactive busy-seconds for an absolute slot
    /// (pure per slot; horizons overlap, so each slot is computed once).
    pub(crate) fn expected_busy_secs(&mut self, slot: usize) -> f64 {
        let memo = self.busy_memo.get(slot).copied().unwrap_or(f64::NAN);
        if !memo.is_nan() {
            return memo;
        }
        let busy = self.workload.interactive().expected_busy_secs_in_slot(
            self.clock,
            slot,
            self.positioning_s,
            self.secs_per_byte,
        );
        if let Some(entry) = self.busy_memo.get_mut(slot) {
            *entry = busy;
        }
        busy
    }

    /// Emit the elapsed time since `start` as a phase sample and restart
    /// the clock. No-op (and no clock reads) when no observer asked for
    /// phase timing.
    fn emit_phase(&mut self, slot: usize, phase: Phase, start: Option<Instant>) -> Option<Instant> {
        let start = start?;
        let nanos = start.elapsed().as_nanos() as u64;
        for obs in &mut self.observers {
            if obs.wants_phases() {
                obs.on_phase(slot, phase, nanos);
            }
        }
        Some(Instant::now())
    }

    /// Run the remaining slots and produce the final report.
    pub fn run_to_end(mut self) -> RunReport {
        let mut scratch = std::mem::take(&mut self.scratch);
        self.run_to_end_with(&mut scratch)
    }

    /// Run the remaining slots through a caller-owned scratch and produce
    /// the final report. Reusing one scratch across many simulations (e.g.
    /// a benchmark worker running trials back to back) avoids re-growing
    /// the per-slot buffers on every run.
    pub fn run_to_end_with(mut self, scratch: &mut SlotScratch) -> RunReport {
        while self.step_with(scratch).is_some() {}
        self.into_report()
    }

    /// Produce the end-of-run report from the current state (normally
    /// called with the horizon exhausted; an early call reports the run so
    /// far, with every not-yet-simulated slot absent from the series).
    pub fn into_report(mut self) -> RunReport {
        // Unfinished work at the end of the horizon (repair jobs are
        // tracked separately and excluded from batch statistics).
        let horizon_end = self.clock.slot_end(self.slots - 1);
        for j in
            self.jobs.iter().filter(|j| j.is_pending() && !self.repair_jobs.contains_key(&j.id))
        {
            self.batch_report.bytes_completed += j.total_bytes - j.remaining_bytes;
            if j.deadline <= horizon_end {
                self.batch_report.unfinished_late += 1;
            }
        }

        self.ledger.set_battery_losses(
            self.battery.efficiency_loss_wh(),
            self.battery.self_discharge_loss_wh(),
        );

        let battery_label = if self.battery_spec.capacity_wh > 0.0 {
            format!(
                "LI-like:{:.1}kWh(σ={})",
                self.battery_spec.capacity_wh / 1000.0,
                self.battery_spec.efficiency
            )
        } else {
            "none".to_string()
        };

        for obs in &mut self.observers {
            obs.on_finish();
        }

        let totals = self.ledger.totals();
        RunReport {
            policy: self.policy.label(),
            source: self.cfg.energy.source.label(),
            battery: battery_label,
            seed: self.cfg.seed,
            slots: self.slots,
            load_kwh: totals.load_wh / 1000.0,
            brown_kwh: self.ledger.brown_kwh(),
            green_produced_kwh: totals.green_produced_wh / 1000.0,
            green_direct_kwh: totals.green_direct_wh / 1000.0,
            battery_out_kwh: totals.battery_out_wh / 1000.0,
            curtailed_kwh: totals.curtailed_wh / 1000.0,
            battery_eff_loss_kwh: self.ledger.battery_efficiency_loss_wh() / 1000.0,
            battery_selfdisch_kwh: self.ledger.battery_self_discharge_wh() / 1000.0,
            spinup_overhead_kwh: self.ledger.spinup_overhead_wh() / 1000.0,
            reclaim_overhead_kwh: self.ledger.reclaim_overhead_wh() / 1000.0,
            green_utilization: self.ledger.green_utilization(),
            green_coverage: self.ledger.green_coverage(),
            carbon_kg: self.ledger.carbon_g() / 1000.0,
            cost_dollars: self.ledger.cost_dollars(),
            battery_cycles: self.battery.equivalent_full_cycles(),
            battery_wear_dollars: self.battery.wear_cost_dollars(),
            latency: LatencyReport::from_histogram(&self.hist),
            batch: self.batch_report,
            spinups: self.cluster.total_spinups(),
            forced_spinups: self.cluster.total_forced_spinups(),
            writelog_peak_bytes: self.cluster.write_log().peak_pending(),
            failures: self.cluster.total_failures(),
            lost_objects: self.cluster.total_lost_objects(),
            degraded_reads: self.cluster.degraded_reads(),
            rebuild_bytes: self.cluster.total_rebuild_bytes(),
            repairs_completed: self.repairs_completed,
            cache_hit_ratio: self.cluster.cache().hit_ratio(),
            gears_series: self.gears_series,
            load_series_wh: self.ledger.load_series().values().to_vec(),
            green_series_wh: self.ledger.green_series().values().to_vec(),
            brown_series_wh: self.ledger.brown_series().values().to_vec(),
            battery_out_series_wh: self.ledger.battery_out_series().values().to_vec(),
            curtailed_series_wh: self.ledger.curtailed_series().values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceKind;
    use crate::observe::{NullObserver, PhaseTimer};
    use crate::policy::PolicyKind;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig::small_demo(11).with_slots(24)
    }

    #[test]
    fn step_returns_one_outcome_per_slot_then_none() {
        let mut sim = Simulation::new(&quick_cfg());
        for s in 0..24 {
            assert_eq!(sim.current_slot(), s);
            let o = sim.step().expect("slot available");
            assert_eq!(o.slot, s);
            assert!((1..=3).contains(&o.gears));
        }
        assert!(sim.is_done());
        assert!(sim.step().is_none());
        assert!(sim.step().is_none(), "stays exhausted");
    }

    #[test]
    fn outcomes_satisfy_energy_identities() {
        let mut sim = Simulation::new(&quick_cfg());
        while let Some(o) = sim.step() {
            let e = &o.energy;
            assert!(
                (e.green_direct_wh + e.battery_out_wh + e.grid_wh - e.load_wh).abs() < 1e-9,
                "slot {}: supply identity",
                o.slot
            );
            assert!(
                (e.green_direct_wh + e.battery_in_wh + e.curtailed_wh - e.green_produced_wh).abs()
                    < 1e-9,
                "slot {}: production identity",
                o.slot
            );
            assert!(o.battery_soc_wh >= 0.0);
            assert!((0.0..=1.0).contains(&o.battery_soc_frac));
            assert!(o.executed_batch_bytes <= o.requested_batch_bytes);
        }
    }

    #[test]
    fn stepwise_report_equals_run_experiment() {
        let cfg = quick_cfg();
        let via_wrapper = crate::harness::run_experiment(&cfg);
        let mut sim = Simulation::new(&cfg);
        while sim.step().is_some() {}
        let via_steps = sim.into_report();
        assert_eq!(
            serde_json::to_string(&via_wrapper).unwrap(),
            serde_json::to_string(&via_steps).unwrap(),
            "step-wise run must be field-for-field identical"
        );
    }

    #[test]
    fn observers_do_not_change_the_report() {
        let cfg = quick_cfg();
        let bare = crate::harness::run_experiment(&cfg);
        let (timer, profile) = PhaseTimer::new();
        let observed = Simulation::new(&cfg)
            .with_observer(Box::new(NullObserver))
            .with_observer(Box::new(timer))
            .run_to_end();
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
        let p = profile.lock().unwrap();
        assert_eq!(p.slots, 24);
        assert!(p.total_ns() > 0);
    }

    #[test]
    fn try_new_reports_missing_trace_instead_of_panicking() {
        let cfg = quick_cfg().with_source(SourceKind::TraceCsv {
            label: "x".into(),
            path: "/nonexistent/definitely-missing.csv".into(),
        });
        let err = Simulation::try_new(&cfg).err().expect("missing trace is an error");
        let msg = err.to_string();
        assert!(
            msg.starts_with("trace x: cannot read /nonexistent/definitely-missing.csv"),
            "{msg}"
        );
    }

    #[test]
    fn try_new_rejects_zero_slots() {
        let cfg = quick_cfg().with_slots(0);
        assert!(matches!(Simulation::try_new(&cfg), Err(ConfigError::Invalid { .. })));
    }

    #[test]
    fn policy_decisions_are_observable() {
        let mut sim = Simulation::new(&quick_cfg().with_policy(PolicyKind::AllOn));
        let o = sim.step().expect("first slot");
        assert_eq!(o.decision.gears, 3, "all-on always asks for every gear");
        assert_eq!(o.gears, 3);
    }
}
