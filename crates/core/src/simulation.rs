//! The step-wise simulation core.
//!
//! [`Simulation`] is the resumable state machine behind
//! [`crate::harness::run_experiment`]: construct it from an
//! [`ExperimentConfig`], drive it one slot at a time with
//! [`Simulation::step`] (each step returns a [`SlotOutcome`] describing
//! everything that happened in that slot), or let
//! [`Simulation::run_to_end`] finish the horizon and produce the final
//! [`RunReport`].
//!
//! ```text
//! each step (one slot), the phase pipeline (see crate::phases):
//!   Forecast — battery self-discharge, green forecast, expected
//!              interactive busy time
//!   Classify — failure injection, batch arrivals, job views
//!   Admission— accept/defer/reject deferrable arrivals against the
//!              α-confidence green lower band (no-op when off)
//!   Plan     — SchedContext assembly over the scratch, policy.decide()
//!   Gear     — clamp and apply the gear decision
//!   Execute  — serve interactive requests, spread batch bytes over
//!              active disks, write-log reclaim
//!   Settle   — integrate energy, settle green → battery → grid, record
//!              the ledger slot, update forecasters, retire finished jobs
//! ```
//!
//! Each phase reads the immutable [`SlotContext`] and exchanges bulk data
//! through a caller-owned [`SlotScratch`] of reusable buffers, so the
//! steady-state slot loop allocates nothing. Attached [`SlotObserver`]s
//! receive each outcome (and optionally per-phase wall-clock); they cannot
//! influence the run, so reports are identical with or without observers.

use crate::config::{ConfigError, ExperimentConfig};
use crate::observe::{Phase, SlotObserver};
use crate::phases::{self, SlotContext, SlotScratch};
use crate::policy::{Decision, PlanningModel};
use crate::report::{AdmissionReport, BatchReport, LatencyReport, RunReport, SiteReport};
use crate::scheduler::DEFAULT_HORIZON;
use crate::snapshot::{SiteSnapshot, Snapshot, SNAPSHOT_VERSION};
use crate::world::{self, World, WorldCache};
use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::forecast::Forecaster;
use gm_energy::ledger::EnergyLedger;
use gm_sim::time::{SimTime, SlotIdx};
use gm_sim::{LogHistogram, SlotClock, TimeSeries};
use gm_storage::{Cluster, FailureDice};
use gm_workload::trace::Workload;
use gm_workload::{BatchJob, EventFeed, JobId, LiveCursor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Last slot whose *end* is at or before `deadline` — the latest slot in
/// which deadline work can safely be scheduled.
pub(crate) fn deadline_slot_for(clock: SlotClock, deadline: SimTime) -> SlotIdx {
    if deadline.0 < clock.width().0 {
        return 0;
    }
    let k = clock.slot_of(SimTime(deadline.0 - 1));
    if clock.slot_end(k) <= deadline {
        k
    } else {
        k.saturating_sub(1)
    }
}

/// Energy flows of one slot (Wh). The settlement identities hold exactly:
/// `load = green_direct + battery_out + grid` and
/// `green_produced = green_direct + battery_in + curtailed`.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct EnergyFlows {
    /// Renewable energy produced.
    pub green_produced_wh: f64,
    /// Renewable energy consumed directly by the load.
    pub green_direct_wh: f64,
    /// Surplus renewable energy accepted by the battery.
    pub battery_in_wh: f64,
    /// Deficit energy delivered by the battery.
    pub battery_out_wh: f64,
    /// Deficit energy drawn from the grid (brown).
    pub grid_wh: f64,
    /// Surplus renewable energy thrown away.
    pub curtailed_wh: f64,
    /// Total cluster consumption.
    pub load_wh: f64,
}

/// One site's share of a slot, reported alongside the aggregate
/// [`SlotOutcome`] fields for multi-site runs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SiteSlotEnergy {
    /// Site index (0 = home).
    pub site: usize,
    /// Gears powered at this site.
    pub gears: usize,
    /// Batch bytes executed at this site this slot.
    pub executed_batch_bytes: u64,
    /// The site's energy flows.
    pub energy: EnergyFlows,
    /// The site's battery state of charge after settlement (Wh).
    pub battery_soc_wh: f64,
}

/// Job lifecycle events observed in one slot.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct SlotEvents {
    /// Batch jobs that arrived this slot.
    pub jobs_submitted: usize,
    /// Batch jobs that completed this slot.
    pub jobs_completed: usize,
    /// Completions this slot that had already missed their deadline.
    pub deadline_misses: usize,
    /// Disk repairs that finished this slot.
    pub repairs_completed: u64,
    /// Disks that failed this slot (failure injection).
    pub disk_failures: u64,
    /// Tier-migration jobs spawned by the classifier this slot.
    pub migrations_spawned: usize,
    /// Tier-migration jobs that completed (flipped placement) this slot.
    pub migrations_completed: u64,
    /// Deferrable jobs the admission gate held back this slot (always 0
    /// with admission control off).
    pub jobs_deferred: usize,
    /// Deferrable jobs the admission gate turned away this slot.
    pub jobs_rejected: usize,
    /// Bytes of batch work turned away this slot.
    pub rejected_bytes: u64,
}

/// One tier-migration job's payload: the objects whose placement flips
/// when the job's I/O completes, and the direction of the flip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationInfo {
    /// Object indices being moved (the home cluster's dense index space).
    pub objs: Vec<u32>,
    /// `true` for replicated→erasure demotion, `false` for promotion.
    pub demote: bool,
}

/// Everything that happened in one simulated slot.
#[derive(Debug, Clone, Serialize)]
pub struct SlotOutcome {
    /// Slot index.
    pub slot: usize,
    /// Gears actually powered (the decision clamped to the physical range).
    pub gears: usize,
    /// The policy's full decision (gear request, per-job batch bytes,
    /// reclaim budget).
    pub decision: Decision,
    /// Batch bytes the policy asked to run.
    pub requested_batch_bytes: u64,
    /// Batch bytes actually executed (capped by remaining work).
    pub executed_batch_bytes: u64,
    /// Planner diagnostic: bytes whose deadline pressure exceeded the
    /// planning window's capacity this slot (0 for policies without a
    /// feasibility-checking planner). Mirrors
    /// [`Decision::infeasible_bytes`].
    pub deadline_infeasible_bytes: u64,
    /// Energy flows of the slot.
    pub energy: EnergyFlows,
    /// Battery state of charge after settlement (Wh).
    pub battery_soc_wh: f64,
    /// State of charge as a fraction of the usable window (0 when no
    /// battery is configured).
    pub battery_soc_frac: f64,
    /// Job lifecycle events.
    pub events: SlotEvents,
    /// Interactive latency distribution of this slot alone.
    pub latency: LatencyReport,
    /// Batch jobs still pending after the slot.
    pub pending_jobs: usize,
    /// Write-log backlog after the slot (bytes).
    pub writelog_pending_bytes: u64,
    /// Matcher unit-accounting residual for the slot: total units minus
    /// (placed + deferred + infeasible) in the last min-cost-flow solve.
    /// Always 0 when flow conservation holds (and for policies without a
    /// matcher); the conservation auditor asserts it.
    pub matcher_residual_units: i64,
    /// Objects classified hot after this slot (0 with tiering off).
    pub tier_hot: u64,
    /// Objects classified warm after this slot (0 with tiering off).
    pub tier_warm: u64,
    /// Objects classified cold after this slot (0 with tiering off).
    pub tier_cold: u64,
    /// Migration-job bytes executed this slot.
    pub migrated_bytes: u64,
    /// Replica bytes released by migrations completing this slot.
    pub tier_bytes_released: u64,
    /// Bytes newly written by migrations completing this slot.
    pub tier_bytes_written: u64,
    /// Raw storage capacity in use after the slot (replicas + EC shards).
    pub capacity_in_use_bytes: u64,
    /// Per-site breakdown of the aggregate fields above. Empty for
    /// single-site runs (the aggregates *are* the one site).
    #[serde(skip_serializing_if = "Vec::is_empty")]
    pub site_energy: Vec<SiteSlotEnergy>,
}

/// The per-run mutable state of one site: its cluster, energy system and
/// the bookkeeping that was per-run state back when there was exactly one
/// site. `sites[0]` is the home site — it additionally hosts the
/// interactive workload, the write log, failure injection and repair jobs,
/// which stay on the [`Simulation`] itself.
pub(crate) struct SiteState {
    /// Site label for reports.
    pub(crate) name: String,
    /// The site's renewable-source label for reports.
    pub(crate) source_label: String,
    pub(crate) cluster: Cluster,
    pub(crate) model: PlanningModel,
    pub(crate) green_trace: Arc<TimeSeries>,
    pub(crate) forecaster: Box<dyn Forecaster + Send>,
    pub(crate) battery_spec: BatterySpec,
    pub(crate) battery: Battery,
    /// UTC offset (hours) of the site; its green trace is rotated by this,
    /// so time-of-day logic (discharge windows) must use the site-local
    /// hour `(sim_hour - offset).rem_euclid(24)`.
    pub(crate) utc_offset_hours: i64,
    pub(crate) ledger: EnergyLedger,
    pub(crate) gears_series: Vec<usize>,
    pub(crate) rr_cursor: usize,
    pub(crate) prev_spinups: Vec<u64>,
    /// Total batch bytes executed at this site over the run.
    pub(crate) executed_batch_bytes: u64,
}

/// The scratch a simulation steps through: its own, or one borrowed from
/// the caller (a sweep worker reusing buffers across back-to-back runs).
enum Scratch<'s> {
    Owned(Box<SlotScratch>),
    Borrowed(&'s mut SlotScratch),
}

impl Scratch<'_> {
    fn get(&mut self) -> &mut SlotScratch {
        match self {
            Scratch::Owned(s) => s,
            Scratch::Borrowed(s) => s,
        }
    }
}

/// Builder for a [`Simulation`] — the one construction path.
///
/// ```no_run
/// use greenmatch::config::ExperimentConfig;
/// use greenmatch::phases::SlotScratch;
/// use greenmatch::simulation::Simulation;
/// use greenmatch::world::WorldCache;
///
/// let cfg = ExperimentConfig::small_demo(42);
///
/// // Cold one-off run:
/// let report = Simulation::builder(&cfg).build()?.run_to_end();
///
/// // Sweep worker: share immutable inputs and reuse slot buffers.
/// let cache = WorldCache::new();
/// let mut scratch = SlotScratch::new();
/// let report = Simulation::builder(&cfg)
///     .cache(&cache)
///     .scratch(&mut scratch)
///     .build()?
///     .run_to_end();
/// # Ok::<(), greenmatch::config::ConfigError>(())
/// ```
#[must_use = "call .build() to construct the simulation"]
pub struct SimulationBuilder<'c, 's> {
    cfg: &'c ExperimentConfig,
    world: Option<World>,
    cache: Option<&'c WorldCache>,
    scratch: Option<&'s mut SlotScratch>,
    observers: Vec<Box<dyn SlotObserver + Send>>,
    resume: Option<&'c Snapshot>,
    feed: Option<EventFeed>,
}

impl<'c, 's> SimulationBuilder<'c, 's> {
    /// Run over an already-materialised [`World`] instead of materialising
    /// one at build time. The world must have been materialised for the
    /// builder's config (same seed, workload, energy and cluster sections).
    pub fn world(mut self, world: World) -> Self {
        self.world = Some(world);
        self
    }

    /// Materialise the world through `cache`, so runs over the same
    /// scenario share their immutable inputs. Ignored when an explicit
    /// [`Self::world`] is supplied.
    pub fn cache(mut self, cache: &'c WorldCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Step through a caller-owned scratch instead of an internal one.
    /// Reusing one scratch across many simulations (e.g. a benchmark
    /// worker running trials back to back) avoids re-growing the per-slot
    /// buffers on every run.
    pub fn scratch<'n>(self, scratch: &'n mut SlotScratch) -> SimulationBuilder<'c, 'n> {
        SimulationBuilder {
            cfg: self.cfg,
            world: self.world,
            cache: self.cache,
            scratch: Some(scratch),
            observers: self.observers,
            resume: self.resume,
            feed: self.feed,
        }
    }

    /// Drive batch arrivals from an external [`EventFeed`] instead of the
    /// workload's population cursor (service mode). The feed's driver owns
    /// the pace: classify blocks until each slot's batch has been
    /// delivered, so a slow producer delays the simulated clock rather
    /// than dropping work. A feed replayed from the config's own workload
    /// produces a byte-identical run to the batch cursor; see
    /// [`gm_workload::EventFeed::replay`]. Implies what
    /// [`crate::config::ExperimentConfig::with_feed_arrivals`] would have
    /// set up, but with the caller's feed instead of a self-replay.
    pub fn feed(mut self, feed: EventFeed) -> Self {
        self.feed = Some(feed);
        self
    }

    /// Attach an observer (repeatable).
    pub fn observer(mut self, observer: Box<dyn SlotObserver + Send>) -> Self {
        self.observers.push(observer);
        self
    }

    /// Resume from a mid-run [`Snapshot`] instead of starting at slot 0.
    ///
    /// The builder's config governs the new run: passing the snapshot's
    /// own config resumes it exactly (byte-identical to never having
    /// stopped); passing a variant (different policy, battery, discharge
    /// strategy, WAN price…) *branches* the checkpoint into a what-if
    /// continuation. Either way the config must produce the same world as
    /// the checkpointed run — same seed, workload, clock, slots, sources
    /// and cluster shape — which `build` validates via the snapshot's
    /// world keys. The world is re-materialised (or cache-hit) from the
    /// config; snapshots never embed it.
    pub fn resume_from(mut self, snapshot: &'c Snapshot) -> Self {
        self.resume = Some(snapshot);
        self
    }

    /// Build the simulation, reporting configuration problems (missing
    /// trace files, zero-slot horizons, incompatible snapshots) as errors.
    pub fn build(self) -> Result<Simulation<'s>, ConfigError> {
        if self.cfg.slots == 0 {
            return Err(ConfigError::Invalid {
                message: "experiment needs at least one slot".to_string(),
            });
        }
        let world = match self.world {
            Some(world) => world,
            None => match self.cache {
                Some(cache) => World::try_materialize_in(self.cfg, cache)?,
                None => World::try_materialize(self.cfg)?,
            },
        };
        let scratch = match self.scratch {
            Some(s) => Scratch::Borrowed(s),
            None => Scratch::Owned(Box::new(SlotScratch::new())),
        };
        let mut sim = Simulation::assemble(self.cfg, world, scratch);
        sim.feed = match self.feed {
            Some(feed) => Some(feed),
            // Self-driving service mode: replay the materialised workload
            // through a pre-loaded feed. Exercises the exact feed path
            // (and is pinned byte-identical to the cursor walk).
            None if self.cfg.feed_arrivals => {
                Some(EventFeed::replay(&sim.workload, sim.clock, sim.slots))
            }
            None => None,
        };
        if let Some(snap) = self.resume {
            sim.restore_overlay(snap)?;
        }
        let resumed_at = sim.cursor;
        for obs in self.observers {
            sim.add_observer(obs);
        }
        if resumed_at > 0 {
            for obs in &mut sim.observers {
                obs.on_resume(resumed_at);
            }
        }
        Ok(sim)
    }
}

/// A resumable slot-by-slot simulation of one experiment.
///
/// Constructed exclusively through [`Simulation::builder`]. The lifetime
/// parameter is that of a caller-owned scratch installed via
/// [`SimulationBuilder::scratch`]; a simulation stepping through its own
/// scratch is `Simulation<'static>`.
///
/// Fields are `pub(crate)` so the phase modules in [`crate::phases`] can
/// operate on their slice of the state; outside the crate the simulation
/// is driven exclusively through its public methods.
pub struct Simulation<'s> {
    pub(crate) cfg: ExperimentConfig,
    pub(crate) clock: SlotClock,
    pub(crate) slots: usize,
    pub(crate) hours: f64,

    /// Per-site mutable state; index 0 is the home site. Phases that only
    /// concern the home site split the borrow with `&mut sim.sites[0]`.
    pub(crate) sites: Vec<SiteState>,
    pub(crate) workload: Arc<Workload>,
    pub(crate) policy: Box<dyn crate::policy::Scheduler + Send>,

    pub(crate) hist: LogHistogram,
    pub(crate) jobs: Vec<BatchJob>,
    pub(crate) job_index: HashMap<JobId, usize>,
    /// Indices into `jobs` of the still-pending jobs, in submission order
    /// (indices only ever grow, and settle's retain preserves order), so
    /// scanning it is equivalent to filtering `jobs` by pending state.
    pub(crate) active_jobs: Vec<usize>,
    /// Cursor into the submission-ordered batch population: jobs before it
    /// have been admitted.
    pub(crate) arrivals_cursor: usize,
    /// Advancing live-set cursor over the interactive stream population —
    /// the O(live + newly started) source of each slot's stream set.
    /// Derived state, never snapshotted: [`LiveCursor::advance_to`] is
    /// exact for any forward move, so a fresh cursor seeks to the resume
    /// slot by itself.
    pub(crate) live_cursor: LiveCursor,
    pub(crate) batch_report: BatchReport,

    pub(crate) positioning_s: f64,
    pub(crate) secs_per_byte: f64,
    pub(crate) total_batch_bw: f64,
    /// Memoised expected interactive busy-seconds per absolute slot (NaN =
    /// not yet computed). The expectation is pure per slot, and horizons
    /// overlap by `DEFAULT_HORIZON - 1` slots, so memoisation turns an
    /// O(horizon) recomputation per slot into O(1) amortised.
    pub(crate) busy_memo: Vec<f64>,

    pub(crate) failure_dice: FailureDice,
    pub(crate) repair_jobs: HashMap<JobId, usize>,
    pub(crate) next_repair_id: u64,
    pub(crate) repairs_completed: u64,

    /// Pending tier-migration jobs by id (home site only, like repairs).
    pub(crate) migration_jobs: HashMap<JobId, MigrationInfo>,
    pub(crate) next_migration_id: u64,
    pub(crate) migrations_completed: u64,
    /// Total migration-job bytes executed so far.
    pub(crate) migrated_bytes: u64,
    /// Of those, bytes executed in slots weighted by the slot's green
    /// fraction of load — `migrated_green_bytes / migrated_bytes` is the
    /// green-slot share of migration I/O.
    pub(crate) migrated_green_bytes: f64,

    /// Deferrable arrivals awaiting this slot's admission decision —
    /// filled by classify, drained by the admission phase within the same
    /// slot, so it is always empty at slot boundaries (and hence never
    /// snapshotted). Unused (empty) with admission control off.
    pub(crate) admission_queue: Vec<BatchJob>,
    /// Jobs the admission gate deferred, with the number of slots each has
    /// been held; retried FIFO every slot.
    pub(crate) admission_held: Vec<(BatchJob, usize)>,
    /// Run totals of the admission gate's decisions.
    pub(crate) admission_accepted: u64,
    pub(crate) admission_deferred: u64,
    pub(crate) admission_rejected: u64,
    pub(crate) admission_rejected_bytes: u64,
    /// Arrival source in service mode: an event feed replaces the
    /// population cursor (which then stays at 0). `None` for batch runs.
    pub(crate) feed: Option<EventFeed>,

    pub(crate) cursor: usize,
    pub(crate) observers: Vec<Box<dyn SlotObserver + Send>>,
    pub(crate) time_phases: bool,
    /// The scratch [`Self::step`] exchanges bulk data through — the
    /// simulation's own, or one borrowed from the caller at build time;
    /// taken and restored around each step to split the borrow.
    scratch: Scratch<'s>,
}

impl<'s> Simulation<'s> {
    /// Start building a simulation over the given configuration. See
    /// [`SimulationBuilder`] for the knobs (shared world cache,
    /// caller-owned scratch, observers).
    pub fn builder(cfg: &ExperimentConfig) -> SimulationBuilder<'_, 's> {
        SimulationBuilder {
            cfg,
            world: None,
            cache: None,
            scratch: None,
            observers: Vec::new(),
            resume: None,
            feed: None,
        }
    }

    /// Build the per-run mutable state over an already-materialised world.
    ///
    /// `world` must have been materialised for `cfg` (same seed, workload,
    /// energy and cluster sections) — the cache key derivation in
    /// [`crate::world`] guarantees this on the cached path.
    fn assemble(cfg: &ExperimentConfig, world: World, scratch: Scratch<'s>) -> Simulation<'s> {
        let clock = cfg.clock;
        let slots = cfg.slots;
        let width = clock.width();
        let World { workload, sites: site_worlds } = world;
        let site_cfgs = cfg.site_configs();
        debug_assert_eq!(site_cfgs.len(), site_worlds.len(), "world built for another config");

        let mut sites = Vec::with_capacity(site_cfgs.len());
        for (i, (site_cfg, site_world)) in site_cfgs.iter().zip(site_worlds).enumerate() {
            let rngs = gm_sim::RngFactory::new(cfg.site_seed(i));
            let mut cluster = Cluster::from_layout(site_world.layout);
            cluster.set_slot_width(width);
            // Temperature tiering is a home-site concern (remote clusters
            // hold no primary data, like failures and repairs).
            if i == 0 {
                if let Some(t) = cfg.tiering {
                    cluster.enable_tiering(t.ewma, t.cold_fraction_target, t.ec_k, t.ec_m);
                }
            }
            let model = PlanningModel::from_spec(&site_cfg.cluster);
            let forecaster = site_cfg.forecast.build(&site_world.green_trace, clock, &rngs);
            let battery_spec = site_cfg.battery.unwrap_or_else(|| BatterySpec::lithium_ion(0.0));
            let n_disks = site_cfg.cluster.topology.n_disks();
            sites.push(SiteState {
                name: site_cfg.name.clone(),
                source_label: site_cfg.source.label(),
                cluster,
                model,
                green_trace: site_world.green_trace,
                forecaster,
                battery_spec,
                battery: Battery::new(battery_spec),
                utc_offset_hours: site_cfg.utc_offset_hours,
                ledger: EnergyLedger::new(clock, cfg.energy.grid),
                gears_series: Vec::with_capacity(slots),
                rr_cursor: 0,
                prev_spinups: vec![0u64; n_disks],
                executed_batch_bytes: 0,
            });
        }

        let mut policy = cfg.policy.build();
        policy.set_warm_start(cfg.matcher_warm_start);
        let home_model = sites[0].model;

        let positioning_s =
            cfg.cluster.disk.avg_seek.as_secs_f64() + cfg.cluster.disk.avg_rotation.as_secs_f64();
        let secs_per_byte = 1.0 / cfg.cluster.disk.transfer_bps;
        let total_batch_bw =
            home_model.gears as f64 * home_model.disks_per_gear as f64 * home_model.disk_bw_bps;

        let failure_dice = FailureDice::new(cfg.seed);

        Simulation {
            cfg: cfg.clone(),
            clock,
            slots,
            hours: clock.width_hours(),
            sites,
            workload,
            policy,
            hist: LogHistogram::for_latency_secs(),
            jobs: Vec::new(),
            job_index: HashMap::new(),
            active_jobs: Vec::new(),
            arrivals_cursor: 0,
            live_cursor: LiveCursor::new(),
            batch_report: BatchReport::default(),
            positioning_s,
            secs_per_byte,
            total_batch_bw,
            busy_memo: vec![f64::NAN; slots + DEFAULT_HORIZON],
            failure_dice,
            repair_jobs: HashMap::new(),
            next_repair_id: 1u64 << 40, // well above workload job ids
            repairs_completed: 0,
            migration_jobs: HashMap::new(),
            next_migration_id: 1u64 << 41, // above repair ids too
            migrations_completed: 0,
            migrated_bytes: 0,
            migrated_green_bytes: 0.0,
            admission_queue: Vec::new(),
            admission_held: Vec::new(),
            admission_accepted: 0,
            admission_deferred: 0,
            admission_rejected: 0,
            admission_rejected_bytes: 0,
            feed: None,
            cursor: 0,
            observers: Vec::new(),
            time_phases: false,
            scratch,
        }
    }

    /// Attach an observer (builder style).
    pub fn with_observer(mut self, observer: Box<dyn SlotObserver + Send>) -> Self {
        self.add_observer(observer);
        self
    }

    /// Attach an observer.
    pub fn add_observer(&mut self, observer: Box<dyn SlotObserver + Send>) {
        self.time_phases = self.time_phases || observer.wants_phases();
        self.observers.push(observer);
    }

    /// Index of the next slot to simulate.
    pub fn current_slot(&self) -> usize {
        self.cursor
    }

    /// Total slots in the horizon.
    pub fn total_slots(&self) -> usize {
        self.slots
    }

    /// Whether the horizon is exhausted.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.slots
    }

    /// Battery state of charge right now, summed across sites (Wh).
    pub fn battery_soc_wh(&self) -> f64 {
        self.sites.iter().map(|site| site.battery.stored_wh()).sum()
    }

    /// Number of sites in this simulation (1 for single-site configs).
    pub fn n_sites(&self) -> usize {
        self.sites.len()
    }

    /// Capture the full mid-run state as a serializable [`Snapshot`].
    ///
    /// Call at a slot boundary (between [`Self::step`] calls). The
    /// snapshot holds everything accumulated since slot 0; the world and
    /// the policy/matcher are *not* captured — the world is referenced by
    /// its cache keys and re-materialised on resume, and the policy is
    /// rebuilt cold from config (byte-exact: the matcher's warm-start
    /// network provably reproduces cold solves). Restore with
    /// [`SimulationBuilder::resume_from`].
    pub fn snapshot(&self) -> Snapshot {
        let mut repair_jobs: Vec<(u64, usize)> =
            self.repair_jobs.iter().map(|(id, &disk)| (id.0, disk)).collect();
        repair_jobs.sort_unstable();
        let mut migration_jobs: Vec<(u64, MigrationInfo)> =
            self.migration_jobs.iter().map(|(id, info)| (id.0, info.clone())).collect();
        migration_jobs.sort_unstable_by_key(|(id, _)| *id);
        Snapshot {
            version: SNAPSHOT_VERSION,
            cfg: self.cfg.clone(),
            world_keys: world::world_keys(&self.cfg),
            cursor: self.cursor,
            sites: self
                .sites
                .iter()
                .map(|site| SiteSnapshot {
                    cluster: site.cluster.snapshot(),
                    battery: site.battery.export_state(),
                    ledger: site.ledger.clone(),
                    forecaster: site.forecaster.export_state(),
                    gears_series: site.gears_series.clone(),
                    rr_cursor: site.rr_cursor,
                    prev_spinups: site.prev_spinups.clone(),
                    executed_batch_bytes: site.executed_batch_bytes,
                })
                .collect(),
            jobs: self.jobs.clone(),
            active_jobs: self.active_jobs.clone(),
            arrivals_cursor: self.arrivals_cursor,
            batch_report: self.batch_report.clone(),
            hist: self.hist.clone(),
            repair_jobs,
            next_repair_id: self.next_repair_id,
            repairs_completed: self.repairs_completed,
            migration_jobs,
            next_migration_id: self.next_migration_id,
            migrations_completed: self.migrations_completed,
            migrated_bytes: self.migrated_bytes,
            migrated_green_bytes: self.migrated_green_bytes,
            admission_held: self.admission_held.clone(),
            admission_accepted: self.admission_accepted,
            admission_deferred: self.admission_deferred,
            admission_rejected: self.admission_rejected,
            admission_rejected_bytes: self.admission_rejected_bytes,
        }
    }

    /// Overlay a snapshot's history onto this freshly assembled
    /// simulation (the restore half of [`SimulationBuilder::resume_from`]).
    ///
    /// Config-derived state (policy, specs, planning constants, grid) was
    /// already built from the *resume* config by `assemble`; this replaces
    /// only the history-derived state. Rejects snapshots whose world keys,
    /// site count or cluster shapes do not match this simulation.
    fn restore_overlay(&mut self, snap: &Snapshot) -> Result<(), ConfigError> {
        let invalid = |message: String| ConfigError::Invalid { message };
        // Older snapshots restore with the newer fields at their defaults
        // — empty migration (v1) and admission (v2) tables, which is
        // exactly the state every such run was in.
        if !(1..=SNAPSHOT_VERSION).contains(&snap.version) {
            return Err(invalid(format!(
                "snapshot version {} not supported (this build reads versions 1 through {})",
                snap.version, SNAPSHOT_VERSION
            )));
        }
        let our_keys = world::world_keys(&self.cfg);
        if our_keys != snap.world_keys {
            return Err(invalid(
                "snapshot was taken over a different world (seed, workload, clock, slots, \
                 source or cluster section differs); only policy/battery/discharge/WAN \
                 variations can branch a checkpoint"
                    .to_string(),
            ));
        }
        if snap.cursor > self.slots {
            return Err(invalid(format!(
                "snapshot cursor {} beyond the {}-slot horizon",
                snap.cursor, self.slots
            )));
        }
        if snap.sites.len() != self.sites.len() {
            return Err(invalid(format!(
                "snapshot has {} sites, config has {}",
                snap.sites.len(),
                self.sites.len()
            )));
        }
        for (i, (site, ss)) in self.sites.iter_mut().zip(&snap.sites).enumerate() {
            site.cluster
                .restore_state(&ss.cluster)
                .map_err(|e| invalid(format!("site {i}: {e}")))?;
            if ss.gears_series.len() != snap.cursor {
                return Err(invalid(format!(
                    "site {i}: gear history has {} entries for cursor {}",
                    ss.gears_series.len(),
                    snap.cursor
                )));
            }
            if ss.prev_spinups.len() != site.prev_spinups.len() {
                return Err(invalid(format!(
                    "site {i}: spin-up table has {} disks, cluster has {}",
                    ss.prev_spinups.len(),
                    site.prev_spinups.len()
                )));
            }
            site.battery = Battery::restore(site.battery_spec, ss.battery);
            site.ledger = ss.ledger.clone();
            site.forecaster.import_state(&ss.forecaster);
            site.gears_series = ss.gears_series.clone();
            site.rr_cursor = ss.rr_cursor;
            site.prev_spinups = ss.prev_spinups.clone();
            site.executed_batch_bytes = ss.executed_batch_bytes;
        }
        if snap.arrivals_cursor > self.workload.batch_jobs().len() {
            return Err(invalid(format!(
                "snapshot admitted {} batch jobs, workload only has {}",
                snap.arrivals_cursor,
                self.workload.batch_jobs().len()
            )));
        }
        if snap.active_jobs.iter().any(|&idx| idx >= snap.jobs.len()) {
            return Err(invalid("snapshot pending-job index out of range".to_string()));
        }
        self.jobs = snap.jobs.clone();
        self.active_jobs = snap.active_jobs.clone();
        self.job_index = snap.active_jobs.iter().map(|&idx| (snap.jobs[idx].id, idx)).collect();
        self.arrivals_cursor = snap.arrivals_cursor;
        // Belt and braces: the live cursor seeks correctly from any prior
        // state, but a resumed run should start from the canonical one.
        self.live_cursor = LiveCursor::new();
        self.batch_report = snap.batch_report.clone();
        self.hist = snap.hist.clone();
        self.repair_jobs = snap.repair_jobs.iter().map(|&(id, disk)| (JobId(id), disk)).collect();
        self.next_repair_id = snap.next_repair_id;
        self.repairs_completed = snap.repairs_completed;
        self.migration_jobs =
            snap.migration_jobs.iter().map(|(id, info)| (JobId(*id), info.clone())).collect();
        self.next_migration_id = snap.next_migration_id;
        self.migrations_completed = snap.migrations_completed;
        self.migrated_bytes = snap.migrated_bytes;
        self.migrated_green_bytes = snap.migrated_green_bytes;
        self.admission_queue.clear();
        self.admission_held = snap.admission_held.clone();
        self.admission_accepted = snap.admission_accepted;
        self.admission_deferred = snap.admission_deferred;
        self.admission_rejected = snap.admission_rejected;
        self.admission_rejected_bytes = snap.admission_rejected_bytes;
        // Service mode: a feed restarts from slot 0 on every build, but
        // everything submitted before the resume cursor is already in the
        // snapshot — discard it. Only the self-driving replay feed is
        // fast-forwarded here (it is fully pre-loaded, so this never
        // blocks); resuming across an *external* feed is the driver's
        // contract to honour.
        if snap.cursor > 0 && self.cfg.feed_arrivals {
            if let Some(feed) = self.feed.as_mut() {
                let last = snap.cursor - 1;
                let mut consumed = Vec::new();
                feed.take_arrivals_before(last, self.clock.slot_end(last), &mut consumed);
            }
        }
        self.cursor = snap.cursor;
        Ok(())
    }

    /// Simulate one slot through the phase pipeline
    /// (`Forecast → Classify → Admission → Plan → Gear → Execute →
    /// Settle`, see
    /// [`crate::phases`]), exchanging bulk data through the simulation's
    /// scratch (its own, or the caller's — see
    /// [`SimulationBuilder::scratch`]). Returns `None` once the horizon is
    /// exhausted.
    pub fn step(&mut self) -> Option<SlotOutcome> {
        let mut scratch =
            std::mem::replace(&mut self.scratch, Scratch::Owned(Box::new(SlotScratch::new())));
        let out = self.step_inner(scratch.get());
        self.scratch = scratch;
        out
    }

    /// One slot over an explicit scratch borrow (the borrow-split form
    /// [`Self::step`] delegates to).
    fn step_inner(&mut self, scratch: &mut SlotScratch) -> Option<SlotOutcome> {
        if self.cursor >= self.slots {
            return None;
        }
        let s = self.cursor;
        let ctx = SlotContext {
            slot: s,
            now: self.clock.slot_start(s),
            slot_end: self.clock.slot_end(s),
            width: self.clock.width(),
            hours: self.hours,
            clock: self.clock,
        };
        let t = self.time_phases.then(Instant::now);

        phases::forecast::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Forecast, t);
        let classified = phases::classify::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Classify, t);
        let admitted = phases::admission::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Admission, t);
        let decision = phases::plan::run(self, &ctx, scratch);
        let t = self.emit_phase(s, Phase::Plan, t);
        let gears = phases::gear::run(self, &ctx, &decision);
        let t = self.emit_phase(s, Phase::Gear, t);
        // Migration jobs execute through the generic batch path; their
        // slot share is the drop in their remaining work across execute.
        let migration_remaining_before = self.migration_remaining_bytes();
        let executed_batch_bytes = phases::execute::run(self, &ctx, scratch, &decision, gears);
        let migrated_bytes = migration_remaining_before - self.migration_remaining_bytes();
        let t = self.emit_phase(s, Phase::Execute, t);
        let settled = phases::settle::run(self, &ctx);
        self.emit_phase(s, Phase::Settle, t);

        if migrated_bytes > 0 {
            self.migrated_bytes += migrated_bytes;
            let e = &settled.energy;
            if e.load_wh > 0.0 {
                let green_frac = ((e.load_wh - e.grid_wh) / e.load_wh).clamp(0.0, 1.0);
                self.migrated_green_bytes += migrated_bytes as f64 * green_frac;
            }
        }

        self.cursor += 1;

        let usable: f64 = self.sites.iter().map(|site| site.battery_spec.usable_wh()).sum();
        let soc = self.battery_soc_wh();
        let site_energy: Vec<SiteSlotEnergy> = if self.sites.len() > 1 {
            settled
                .site_energy
                .iter()
                .enumerate()
                .map(|(i, &energy)| SiteSlotEnergy {
                    site: i,
                    gears: self.sites[i].gears_series.last().copied().unwrap_or(0),
                    executed_batch_bytes: scratch.site_executed_bytes.get(i).copied().unwrap_or(0),
                    energy,
                    battery_soc_wh: self.sites[i].battery.stored_wh(),
                })
                .collect()
        } else {
            Vec::new()
        };
        let outcome = SlotOutcome {
            slot: s,
            gears,
            requested_batch_bytes: decision.batch_bytes.iter().map(|(_, b)| b).sum::<u64>()
                + decision.total_remote_bytes(),
            executed_batch_bytes,
            deadline_infeasible_bytes: decision.infeasible_bytes,
            decision,
            energy: settled.energy,
            battery_soc_wh: soc,
            battery_soc_frac: if usable > 0.0 { soc / usable } else { 0.0 },
            events: SlotEvents {
                jobs_submitted: classified.jobs_submitted + admitted.accepted,
                jobs_completed: settled.jobs_completed,
                deadline_misses: settled.deadline_misses,
                repairs_completed: settled.repairs_completed,
                disk_failures: classified.disk_failures,
                migrations_spawned: classified.migrations_spawned,
                migrations_completed: settled.migrations_completed,
                jobs_deferred: admitted.deferred,
                jobs_rejected: admitted.rejected,
                rejected_bytes: admitted.rejected_bytes,
            },
            latency: LatencyReport::from_histogram(&scratch.slot_hist),
            pending_jobs: self.job_index.len(),
            writelog_pending_bytes: self.sites[0].cluster.write_log().pending_total(),
            matcher_residual_units: self.policy.matcher_residual_units(),
            tier_hot: classified.tier_hot,
            tier_warm: classified.tier_warm,
            tier_cold: classified.tier_cold,
            migrated_bytes,
            tier_bytes_released: settled.tier_bytes_released,
            tier_bytes_written: settled.tier_bytes_written,
            capacity_in_use_bytes: self.sites[0].cluster.capacity_in_use_bytes(),
            site_energy,
        };
        for obs in &mut self.observers {
            obs.on_slot(&outcome);
        }
        Some(outcome)
    }

    /// Remaining bytes across all tracked migration jobs (0 with tiering
    /// off — the table stays empty, so the hot path pays one branch).
    fn migration_remaining_bytes(&self) -> u64 {
        if self.migration_jobs.is_empty() {
            return 0;
        }
        self.migration_jobs.keys().map(|id| self.jobs[self.job_index[id]].remaining_bytes).sum()
    }

    /// Memoised expected interactive busy-seconds for an absolute slot
    /// (pure per slot; horizons overlap, so each slot is computed once).
    pub(crate) fn expected_busy_secs(&mut self, slot: usize) -> f64 {
        let memo = self.busy_memo.get(slot).copied().unwrap_or(f64::NAN);
        if !memo.is_nan() {
            return memo;
        }
        let busy = self.workload.interactive().expected_busy_secs_in_slot(
            self.clock,
            slot,
            self.positioning_s,
            self.secs_per_byte,
        );
        if let Some(entry) = self.busy_memo.get_mut(slot) {
            *entry = busy;
        }
        busy
    }

    /// Emit the elapsed time since `start` as a phase sample and restart
    /// the clock. No-op (and no clock reads) when no observer asked for
    /// phase timing.
    fn emit_phase(&mut self, slot: usize, phase: Phase, start: Option<Instant>) -> Option<Instant> {
        let start = start?;
        let nanos = start.elapsed().as_nanos() as u64;
        for obs in &mut self.observers {
            if obs.wants_phases() {
                obs.on_phase(slot, phase, nanos);
            }
        }
        Some(Instant::now())
    }

    /// Run the remaining slots and produce the final report.
    pub fn run_to_end(mut self) -> RunReport {
        let mut scratch =
            std::mem::replace(&mut self.scratch, Scratch::Owned(Box::new(SlotScratch::new())));
        while self.step_inner(scratch.get()).is_some() {}
        self.scratch = scratch;
        self.into_report()
    }

    /// Produce the end-of-run report from the current state (normally
    /// called with the horizon exhausted; an early call reports the run so
    /// far, with every not-yet-simulated slot absent from the series).
    pub fn into_report(mut self) -> RunReport {
        // Unfinished work at the end of the horizon (repair and migration
        // jobs are tracked separately and excluded from batch statistics).
        let horizon_end = self.clock.slot_end(self.slots - 1);
        for j in self.jobs.iter().filter(|j| {
            j.is_pending()
                && !self.repair_jobs.contains_key(&j.id)
                && !self.migration_jobs.contains_key(&j.id)
        }) {
            self.batch_report.bytes_completed += j.total_bytes - j.remaining_bytes;
            if j.deadline <= horizon_end {
                self.batch_report.unfinished_late += 1;
            }
        }

        for site in &mut self.sites {
            let efficiency_loss = site.battery.efficiency_loss_wh();
            let self_discharge = site.battery.self_discharge_loss_wh();
            site.ledger.set_battery_losses(efficiency_loss, self_discharge);
        }

        for obs in &mut self.observers {
            obs.on_finish();
        }

        // Aggregate energy accounting across sites. Exact for a single
        // site: every accumulator starts at zero and adds one term, and the
        // ratio formulas below replicate the ledger's own.
        let mut load_wh = 0.0;
        let mut brown_wh = 0.0;
        let mut green_produced_wh = 0.0;
        let mut green_direct_wh = 0.0;
        let mut battery_out_wh = 0.0;
        let mut curtailed_wh = 0.0;
        let mut battery_eff_loss_wh = 0.0;
        let mut battery_selfdisch_wh = 0.0;
        let mut spinup_overhead_wh = 0.0;
        let mut reclaim_overhead_wh = 0.0;
        let mut carbon_g = 0.0;
        let mut cost_dollars = 0.0;
        let mut battery_cycles = 0.0;
        let mut battery_wear_dollars = 0.0;
        let mut spinups = 0u64;
        let mut forced_spinups = 0u64;
        for site in &self.sites {
            let totals = site.ledger.totals();
            load_wh += totals.load_wh;
            brown_wh += totals.brown_wh;
            green_produced_wh += totals.green_produced_wh;
            green_direct_wh += totals.green_direct_wh;
            battery_out_wh += totals.battery_out_wh;
            curtailed_wh += totals.curtailed_wh;
            battery_eff_loss_wh += site.ledger.battery_efficiency_loss_wh();
            battery_selfdisch_wh += site.ledger.battery_self_discharge_wh();
            spinup_overhead_wh += site.ledger.spinup_overhead_wh();
            reclaim_overhead_wh += site.ledger.reclaim_overhead_wh();
            carbon_g += site.ledger.carbon_g();
            cost_dollars += site.ledger.cost_dollars();
            battery_cycles += site.battery.equivalent_full_cycles();
            battery_wear_dollars += site.battery.wear_cost_dollars();
            spinups += site.cluster.total_spinups();
            forced_spinups += site.cluster.total_forced_spinups();
        }
        let green_utilization = if green_produced_wh == 0.0 {
            0.0
        } else {
            (green_direct_wh + battery_out_wh) / green_produced_wh
        };
        let green_coverage =
            if load_wh == 0.0 { 0.0 } else { (green_direct_wh + battery_out_wh) / load_wh };

        // Element-wise summed per-slot series (the home site's values,
        // untouched, for a single site).
        let mut load_series_wh = self.sites[0].ledger.load_series().values().to_vec();
        let mut green_series_wh = self.sites[0].ledger.green_series().values().to_vec();
        let mut brown_series_wh = self.sites[0].ledger.brown_series().values().to_vec();
        let mut battery_out_series_wh = self.sites[0].ledger.battery_out_series().values().to_vec();
        let mut curtailed_series_wh = self.sites[0].ledger.curtailed_series().values().to_vec();
        for site in &self.sites[1..] {
            add_series(&mut load_series_wh, site.ledger.load_series().values());
            add_series(&mut green_series_wh, site.ledger.green_series().values());
            add_series(&mut brown_series_wh, site.ledger.brown_series().values());
            add_series(&mut battery_out_series_wh, site.ledger.battery_out_series().values());
            add_series(&mut curtailed_series_wh, site.ledger.curtailed_series().values());
        }

        let sites = if self.sites.len() > 1 {
            self.sites
                .iter()
                .enumerate()
                .map(|(i, site)| {
                    let totals = site.ledger.totals();
                    SiteReport {
                        site: i,
                        name: site.name.clone(),
                        source: site.source_label.clone(),
                        battery: battery_label(&site.battery_spec),
                        load_kwh: totals.load_wh / 1000.0,
                        brown_kwh: site.ledger.brown_kwh(),
                        green_produced_kwh: totals.green_produced_wh / 1000.0,
                        green_direct_kwh: totals.green_direct_wh / 1000.0,
                        battery_out_kwh: totals.battery_out_wh / 1000.0,
                        curtailed_kwh: totals.curtailed_wh / 1000.0,
                        green_utilization: site.ledger.green_utilization(),
                        green_coverage: site.ledger.green_coverage(),
                        executed_batch_bytes: site.executed_batch_bytes,
                        spinups: site.cluster.total_spinups(),
                    }
                })
                .collect()
        } else {
            Vec::new()
        };

        let admission = self.cfg.admission.is_some().then_some(AdmissionReport {
            accepted: self.admission_accepted,
            deferred: self.admission_deferred,
            rejected: self.admission_rejected,
            rejected_bytes: self.admission_rejected_bytes,
            pending_at_end: self.admission_held.len(),
        });
        let home = &mut self.sites[0];
        RunReport {
            policy: self.policy.label(),
            source: self.cfg.energy.source.label(),
            battery: battery_label(&home.battery_spec),
            seed: self.cfg.seed,
            slots: self.slots,
            load_kwh: load_wh / 1000.0,
            brown_kwh: brown_wh / 1000.0,
            green_produced_kwh: green_produced_wh / 1000.0,
            green_direct_kwh: green_direct_wh / 1000.0,
            battery_out_kwh: battery_out_wh / 1000.0,
            curtailed_kwh: curtailed_wh / 1000.0,
            battery_eff_loss_kwh: battery_eff_loss_wh / 1000.0,
            battery_selfdisch_kwh: battery_selfdisch_wh / 1000.0,
            spinup_overhead_kwh: spinup_overhead_wh / 1000.0,
            reclaim_overhead_kwh: reclaim_overhead_wh / 1000.0,
            green_utilization,
            green_coverage,
            carbon_kg: carbon_g / 1000.0,
            cost_dollars,
            battery_cycles,
            battery_wear_dollars,
            latency: LatencyReport::from_histogram(&self.hist),
            batch: self.batch_report,
            spinups,
            forced_spinups,
            writelog_peak_bytes: home.cluster.write_log().peak_pending(),
            failures: home.cluster.total_failures(),
            lost_objects: home.cluster.total_lost_objects(),
            degraded_reads: home.cluster.degraded_reads(),
            rebuild_bytes: home.cluster.total_rebuild_bytes(),
            repairs_completed: self.repairs_completed,
            migrations_completed: self.migrations_completed,
            migrated_bytes: self.migrated_bytes,
            migration_green_share: if self.migrated_bytes > 0 {
                self.migrated_green_bytes / self.migrated_bytes as f64
            } else {
                0.0
            },
            capacity_in_use_bytes: home.cluster.capacity_in_use_bytes(),
            ec_objects: home.cluster.ec_objects() as u64,
            cache_hit_ratio: home.cluster.cache().hit_ratio(),
            admission,
            gears_series: std::mem::take(&mut home.gears_series),
            load_series_wh,
            green_series_wh,
            brown_series_wh,
            battery_out_series_wh,
            curtailed_series_wh,
            sites,
        }
    }
}

/// Report label of a battery spec (the historic single-battery label).
fn battery_label(spec: &BatterySpec) -> String {
    if spec.capacity_wh > 0.0 {
        format!("LI-like:{:.1}kWh(σ={})", spec.capacity_wh / 1000.0, spec.efficiency)
    } else {
        "none".to_string()
    }
}

/// `a[i] += b[i]` for two equal-length per-slot series.
fn add_series(a: &mut [f64], b: &[f64]) {
    debug_assert_eq!(a.len(), b.len(), "site series lengths diverged");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceKind;
    use crate::observe::{NullObserver, PhaseTimer};
    use crate::policy::PolicyKind;

    fn quick_cfg() -> ExperimentConfig {
        ExperimentConfig::small_demo(11).with_slots(24)
    }

    fn sim(cfg: &ExperimentConfig) -> Simulation<'static> {
        Simulation::builder(cfg).build().expect("config materialises")
    }

    #[test]
    fn step_returns_one_outcome_per_slot_then_none() {
        let mut sim = sim(&quick_cfg());
        for s in 0..24 {
            assert_eq!(sim.current_slot(), s);
            let o = sim.step().expect("slot available");
            assert_eq!(o.slot, s);
            assert!((1..=3).contains(&o.gears));
        }
        assert!(sim.is_done());
        assert!(sim.step().is_none());
        assert!(sim.step().is_none(), "stays exhausted");
    }

    #[test]
    fn outcomes_satisfy_energy_identities() {
        let mut sim = sim(&quick_cfg());
        while let Some(o) = sim.step() {
            let e = &o.energy;
            assert!(
                (e.green_direct_wh + e.battery_out_wh + e.grid_wh - e.load_wh).abs() < 1e-9,
                "slot {}: supply identity",
                o.slot
            );
            assert!(
                (e.green_direct_wh + e.battery_in_wh + e.curtailed_wh - e.green_produced_wh).abs()
                    < 1e-9,
                "slot {}: production identity",
                o.slot
            );
            assert!(o.battery_soc_wh >= 0.0);
            assert!((0.0..=1.0).contains(&o.battery_soc_frac));
            assert!(o.executed_batch_bytes <= o.requested_batch_bytes);
        }
    }

    #[test]
    fn stepwise_report_equals_run_experiment() {
        let cfg = quick_cfg();
        let via_wrapper = crate::harness::run_experiment(&cfg);
        let mut sim = sim(&cfg);
        while sim.step().is_some() {}
        let via_steps = sim.into_report();
        assert_eq!(
            serde_json::to_string(&via_wrapper).unwrap(),
            serde_json::to_string(&via_steps).unwrap(),
            "step-wise run must be field-for-field identical"
        );
    }

    #[test]
    fn observers_do_not_change_the_report() {
        let cfg = quick_cfg();
        let bare = crate::harness::run_experiment(&cfg);
        let (timer, profile) = PhaseTimer::new();
        let observed = sim(&cfg)
            .with_observer(Box::new(NullObserver))
            .with_observer(Box::new(timer))
            .run_to_end();
        assert_eq!(
            serde_json::to_string(&bare).unwrap(),
            serde_json::to_string(&observed).unwrap()
        );
        let p = profile.lock().unwrap();
        assert_eq!(p.slots, 24);
        assert!(p.total_ns() > 0);
    }

    #[test]
    fn build_reports_missing_trace_instead_of_panicking() {
        let cfg = quick_cfg().with_source(SourceKind::TraceCsv {
            label: "x".into(),
            path: "/nonexistent/definitely-missing.csv".into(),
        });
        let err = Simulation::builder(&cfg).build().err().expect("missing trace is an error");
        let msg = err.to_string();
        assert!(
            msg.starts_with("trace x: cannot read /nonexistent/definitely-missing.csv"),
            "{msg}"
        );
    }

    #[test]
    fn build_rejects_zero_slots() {
        let cfg = quick_cfg().with_slots(0);
        assert!(matches!(Simulation::builder(&cfg).build(), Err(ConfigError::Invalid { .. })));
    }

    #[test]
    fn policy_decisions_are_observable() {
        let mut sim = sim(&quick_cfg().with_policy(PolicyKind::AllOn));
        let o = sim.step().expect("first slot");
        assert_eq!(o.decision.gears, 3, "all-on always asks for every gear");
        assert_eq!(o.gears, 3);
    }

    #[test]
    fn single_site_runs_have_no_site_breakdown() {
        let mut sim = sim(&quick_cfg());
        while let Some(o) = sim.step() {
            assert!(o.site_energy.is_empty());
        }
        assert!(sim.into_report().sites.is_empty());
    }

    #[test]
    fn multi_site_run_aggregates_per_site_flows() {
        let base =
            quick_cfg().with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 }).with_slots(48);
        let mut sites = base.site_configs();
        let mut east = sites[0].clone();
        east.name = "east".into();
        east.utc_offset_hours = 8;
        sites.push(east);
        let cfg = base.with_sites(sites).with_wan_cost(200);

        let mut sim = sim(&cfg);
        assert_eq!(sim.n_sites(), 2);
        while let Some(o) = sim.step() {
            assert_eq!(o.site_energy.len(), 2, "slot {}", o.slot);
            let load: f64 = o.site_energy.iter().map(|s| s.energy.load_wh).sum();
            assert!((load - o.energy.load_wh).abs() < 1e-9, "slot {}", o.slot);
            let executed: u64 = o.site_energy.iter().map(|s| s.executed_batch_bytes).sum();
            assert_eq!(executed, o.executed_batch_bytes, "slot {}", o.slot);
        }
        let report = sim.into_report();
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.sites[0].name, "site0");
        assert_eq!(report.sites[1].name, "east");
        for (total, per_site) in [
            (report.load_kwh, report.sites.iter().map(|s| s.load_kwh).sum::<f64>()),
            (report.brown_kwh, report.sites.iter().map(|s| s.brown_kwh).sum::<f64>()),
            (
                report.green_produced_kwh,
                report.sites.iter().map(|s| s.green_produced_kwh).sum::<f64>(),
            ),
        ] {
            assert!((total - per_site).abs() < 1e-9, "{total} vs {per_site}");
        }
        assert_eq!(report.spinups, report.sites.iter().map(|s| s.spinups).sum::<u64>());
    }

    #[test]
    fn offset_site_shifts_green_production_in_time() {
        // Site 1 is site 0's solar field pushed 8 hours east: its trace is
        // the home trace rotated, so the two sites peak at different slots.
        let base = quick_cfg().with_slots(48);
        let mut sites = base.site_configs();
        let mut east = sites[0].clone();
        east.name = "east".into();
        east.utc_offset_hours = 8;
        sites.push(east);
        let cfg = base.with_sites(sites);

        let world = crate::world::World::try_materialize(&cfg).expect("materializes");
        let home = world.sites[0].green_trace.as_ref();
        let east = world.sites[1].green_trace.as_ref();
        let n = cfg.slots;
        let peak = |trace: &gm_sim::series::TimeSeries| {
            (0..n).max_by(|&a, &b| trace.get(a).total_cmp(&trace.get(b))).unwrap()
        };
        assert_ne!(peak(home) % 24, peak(east) % 24, "offset shifts the solar peak");
    }

    #[test]
    fn discharge_windows_follow_site_local_time() {
        // Regression: PeakOnly/Reserve windows used to be evaluated with
        // the *global* clock hour for every site, so an offset site
        // discharged during the home site's evening instead of its own.
        use crate::config::DischargeStrategy;
        let base = quick_cfg().with_slots(72);
        let mut sites = base.site_configs();
        let mut east = sites[0].clone();
        east.name = "east".into();
        east.utc_offset_hours = 8;
        sites.push(east);
        let mut cfg = base.with_sites(sites).with_wan_cost(200);
        cfg.energy.discharge = DischargeStrategy::PeakOnly;

        let mut sim = sim(&cfg);
        let mut east_out = 0.0;
        while let Some(o) = sim.step() {
            let hour = (o.slot % 24) as f64 + 0.5;
            if !(7.0..23.0).contains(&hour) {
                assert_eq!(
                    o.site_energy[0].energy.battery_out_wh, 0.0,
                    "home off-peak discharge at slot {}",
                    o.slot
                );
            }
            let local = (hour - 8.0).rem_euclid(24.0);
            let out = o.site_energy[1].energy.battery_out_wh;
            if !(7.0..23.0).contains(&local) {
                assert_eq!(out, 0.0, "east discharge at slot {} (local hour {local})", o.slot);
            }
            east_out += out;
        }
        assert!(east_out > 0.0, "east site must discharge during its local peak");
    }

    #[test]
    fn completed_repairs_leave_the_repair_table() {
        // Regression: `repair_jobs` entries were never removed on repair
        // completion, so the table grew without bound and every retired id
        // stayed live for execute-phase lookups.
        let mut cfg = quick_cfg().with_policy(PolicyKind::PowerProportional);
        cfg.slots = 7 * 24;
        cfg.failures = Some(gm_storage::FailureSpec {
            afr: 20.0,
            standby_factor: 0.5,
            spinup_wear_hours: 10.0,
        });
        let mut sim = sim(&cfg);
        while sim.step().is_some() {}

        let pending_repairs =
            sim.active_jobs.iter().filter(|&&idx| sim.jobs[idx].id.0 >= (1u64 << 40)).count();
        assert_eq!(
            sim.repair_jobs.len(),
            pending_repairs,
            "completed repairs must leave the repair table"
        );
        for id in sim.repair_jobs.keys() {
            assert!(sim.job_index.contains_key(id), "stale repair entry {}", id.0);
        }
        let report = sim.into_report();
        assert!(report.repairs_completed > 0, "storm must complete repairs");
    }
}
