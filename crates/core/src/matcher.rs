//! The GreenMatch matcher: assign deferrable batch bytes to forecast slots.
//!
//! Each slot, pending deferrable work is matched against the next `H` slots
//! by solving a small transportation problem with [`crate::mincostflow`]:
//!
//! ```text
//!  source ──(group bytes)──► deadline-group d ──► site×slot (s,t) ──► sink
//!                                   │                  green arc: cap = surplus-funded units, cost = t
//!                                   │                  brown arc: cap = rest of capacity,     cost = BROWN + t
//!                                   └──(far deadlines)──► beyond ──► sink   (cost = DEFER)
//! ```
//!
//! * Jobs are aggregated into **deadline groups** (work is divisible and
//!   jobs within a group are interchangeable), keeping the graph at
//!   ~`2H` nodes per site regardless of job count.
//! * Work is quantised into [`UNIT_BYTES`] units.
//! * A slot's **green capacity** is the work fundable by its predicted
//!   green surplus (forecast minus the non-batch floor: minimum-gear idle
//!   power plus the interactive marginal); the remainder of its physical
//!   capacity is **brown** and costs [`BROWN_COST`] per unit. The linear
//!   time-preference term breaks ties toward earlier slots so plans do not
//!   thrash between equal-cost schedules.
//! * Groups whose deadline is inside the window may overflow to `beyond`
//!   only at [`INFEASIBLE_COST`], so the solver stays feasible under
//!   overload and the overflow is a congestion signal.
//! * Single-site matching is the one-site case of the same network —
//!   there is exactly one solver code path to audit.
//!
//! # The `Matcher` handle and warm starts
//!
//! [`Matcher`] is the sole entry point. It owns the flow network, every
//! work vector, and the warm-start state, so one handle held across slots
//! performs no steady-state allocation. The network's *topology* depends
//! only on `(horizon, n_sites)`: every arc the problem could need exists
//! (zero-capacity arcs are invisible to the solver), and consecutive
//! rounds with the same shape only **re-price** the arcs whose bin
//! (deadline-group units, forecast green cap, busy-seconds-derived
//! capacity, WAN toll, brown price) actually changed — flows are rewound
//! to zero and the identical deterministic solver reruns, so the warm
//! path is byte-for-byte equal to a cold build. When *nothing* changed,
//! the previous round's schedule and stats replay without solving at all.
//! A shape change (horizon or site count) triggers the cold rebuild
//! fallback.
//!
//! Gear-up fixed costs are deliberately *not* in the flow network (they are
//! concave); the executing policy re-checks gear economics when it turns
//! the slot-0 plan into a [`crate::policy::Decision`].

use crate::mincostflow::{EdgeId, MinCostFlow};
use crate::policy::{JobView, PlanningModel, SiteView};
use gm_sim::time::SlotIdx;

/// Quantum of batch work in the flow network (8 GiB).
pub const UNIT_BYTES: u64 = 8 << 30;
/// Per-unit cost of brown-funded capacity (green costs only its slot offset).
pub const BROWN_COST: i64 = 1_000;
/// Per-unit cost of deferring past-window work (far deadlines only).
pub const DEFER_COST: i64 = 100;
/// Per-unit cost of the overload escape for in-window deadlines.
pub const INFEASIBLE_COST: i64 = 100_000;

/// Input to one matching round.
///
/// `sites[0]` is the home site (zero WAN cost by construction); a
/// single-site round passes a one-element slice. Remote sites serve no
/// interactive traffic, so `interactive_busy_secs` applies to the home
/// site only.
#[derive(Debug, Clone)]
pub struct MatchInput<'a> {
    /// Pending deferrable jobs.
    pub jobs: &'a [JobView],
    /// Slot being decided (offset 0 of the window).
    pub current_slot: SlotIdx,
    /// Window length in slots.
    pub horizon: usize,
    /// Per-site capacity views, home first (index 0). The home view's WAN
    /// cost is zero by construction.
    pub sites: &'a [SiteView<'a>],
    /// Home-site expected interactive busy-seconds per slot, index 0 = the
    /// slot being decided.
    pub interactive_busy_secs: &'a [f64],
    /// Slot width in seconds.
    pub slot_secs: f64,
    /// Per-offset brown cost override (e.g. scaled by the grid's forecast
    /// carbon intensity for carbon-aware scheduling). `None` ⇒ uniform
    /// [`BROWN_COST`]. Values should be on the same scale as `BROWN_COST`;
    /// the override applies to every site's brown arcs.
    pub brown_cost_per_slot: Option<&'a [i64]>,
}

/// Copy-out summary of one matching round; the per-site schedule stays in
/// the [`Matcher`] (see [`Matcher::per_site_slot_bytes`]).
///
/// For single-site rounds the remote fields are zero and `bytes_now` is
/// the whole slot-0 plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Bytes the plan wants executed in the current slot at the home site.
    pub bytes_now: u64,
    /// Bytes the plan wants executed in the current slot on non-home sites.
    pub remote_bytes_now: u64,
    /// Bytes the whole plan places on non-home sites (any offset); each
    /// paid its site's WAN cost.
    pub wan_bytes: u64,
    /// Bytes pushed to the `beyond` node (deferred past the window).
    pub deferred_bytes: u64,
    /// Bytes that could only be placed via the overload escape (deadline
    /// pressure exceeds window capacity).
    pub infeasible_bytes: u64,
    /// Bytes of the plan sitting on green-funded arcs (all sites).
    pub green_bytes: u64,
    /// Bytes of the plan sitting on brown-funded arcs (all sites).
    pub brown_bytes: u64,
    /// Total solver cost (diagnostic).
    pub cost: i64,
    /// Unit-accounting residual: total units minus (placed + deferred +
    /// infeasible). Zero whenever the network conserved flow; the
    /// conservation auditor asserts it stays zero in release builds, where
    /// the solver's `debug_assert` is compiled out.
    pub unaccounted_units: i64,
}

/// How the matcher's solve rounds were served, for diagnostics and the
/// kernel bench: cold rebuilds, warm re-priced solves, and memo replays.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveCounts {
    /// Rounds that rebuilt the network from scratch (first round, shape
    /// change, or warm start disabled).
    pub cold: u64,
    /// Rounds that rewound flows, re-priced changed arcs and re-solved.
    pub warm: u64,
    /// Rounds whose inputs were bit-identical to the previous round: the
    /// cached schedule and stats replayed without solving.
    pub memo: u64,
}

/// Estimated non-batch energy floor (Wh) of one slot: idle power at the
/// interactive minimum gear level plus the interactive marginal.
#[must_use]
pub fn non_batch_floor_wh(model: &PlanningModel, busy_secs: f64, slot_secs: f64) -> f64 {
    let min_g = model.min_gears_for_interactive(busy_secs, slot_secs);
    let hours = slot_secs / 3600.0;
    let interactive_marginal_wh =
        busy_secs / 3600.0 * (model.batch_wh_per_byte * model.disk_bw_bps * 3600.0);
    model.idle_w(min_g) * hours + interactive_marginal_wh
}

/// Eligible window of deadline group `gi` (inclusive last slot offset).
fn last_slot(gi: usize, h: usize) -> usize {
    if gi == h {
        h - 1
    } else {
        gi.min(h - 1)
    }
}

/// Escape-arc cost of deadline group `gi`: far groups defer benignly,
/// in-window groups escape only as an overload signal.
fn escape_cost(gi: usize, h: usize) -> i64 {
    if gi == h {
        DEFER_COST
    } else {
        INFEASIBLE_COST
    }
}

/// The stateful matcher: flow network, work vectors and warm-start state
/// for repeated matching rounds.
///
/// One handle is held across slots (by [`crate::scheduler::GreenMatchPolicy`],
/// and transitively by every simulation and `JobPool` worker); see the
/// module docs for the warm-start contract. [`Matcher::solve`] is the only
/// solve entry point.
#[derive(Debug, Clone, Default)]
pub struct Matcher {
    flow: MinCostFlow,
    /// Warm-start enabled? Cold rebuilds every round when false.
    warm_start: bool,
    /// Retained network shape; `horizon == 0` ⇒ nothing retained.
    horizon: usize,
    n_sites: usize,
    // Per-round work vectors (bins), shared by build and diff passes.
    group_units: Vec<i64>,
    green_caps: Vec<i64>,
    brown_caps: Vec<i64>,
    brown_arc_costs: Vec<i64>,
    wan: Vec<i64>,
    // Bins the retained network is currently priced with — the warm
    // path's drift detector. Comparing these (sequential integer
    // vectors) is far cheaper than interrogating every arc through its
    // handle, and lets re-pricing touch only the drifted arcs.
    prev_group_units: Vec<i64>,
    prev_green_caps: Vec<i64>,
    prev_brown_caps: Vec<i64>,
    prev_brown_arc_costs: Vec<i64>,
    prev_wan: Vec<i64>,
    prev_beyond_cap: i64,
    // Arc handles of the retained dense topology, in build order.
    supply_arcs: Vec<EdgeId>,
    group_slot_arcs: Vec<EdgeId>,
    escape_arcs: Vec<EdgeId>,
    green_arcs: Vec<EdgeId>,
    brown_arcs: Vec<EdgeId>,
    beyond_arc: Option<EdgeId>,
    // Most recent schedule + stats (the memo replay payload).
    per_site_slot_bytes: Vec<u64>,
    last_stats: MatchStats,
    stats_valid: bool,
    counts: SolveCounts,
}

impl Matcher {
    /// A fresh matcher with warm starts enabled.
    #[must_use]
    pub fn new() -> Self {
        Matcher { warm_start: true, ..Matcher::default() }
    }

    /// Enable or disable warm starts. Disabling forces a cold rebuild
    /// every round — the reference path the equivalence tests compare
    /// against. Takes effect on the next [`Matcher::solve`].
    pub fn set_warm_start(&mut self, on: bool) {
        self.warm_start = on;
        if !on {
            // Drop the retained shape so a later re-enable starts cold.
            self.horizon = 0;
            self.stats_valid = false;
        }
    }

    /// Whether warm starts are enabled.
    #[must_use]
    pub fn warm_start(&self) -> bool {
        self.warm_start
    }

    /// How the rounds so far were served (cold / warm / memo).
    #[must_use]
    pub fn solve_counts(&self) -> SolveCounts {
        self.counts
    }

    /// Bytes planned per `site × slot` (row-major: `site * horizon + slot`)
    /// from the most recent [`Matcher::solve`] call.
    #[must_use]
    pub fn per_site_slot_bytes(&self) -> &[u64] {
        &self.per_site_slot_bytes
    }

    /// The home site's planned bytes per window offset (0 = run now) from
    /// the most recent round — the whole schedule of a single-site round.
    #[must_use]
    pub fn per_slot_bytes(&self) -> &[u64] {
        &self.per_site_slot_bytes[..self.horizon.min(self.per_site_slot_bytes.len())]
    }

    /// Bytes planned at window offset `t` on `site` in the most recent
    /// round (0 for out-of-range indices).
    #[must_use]
    pub fn site_slot_bytes(&self, site: usize, t: usize) -> u64 {
        if site >= self.n_sites || t >= self.horizon {
            return 0;
        }
        self.per_site_slot_bytes[site * self.horizon + t]
    }

    /// Bytes the plan wants executed in the current slot on `site`.
    #[must_use]
    pub fn bytes_now(&self, site: usize) -> u64 {
        self.site_slot_bytes(site, 0)
    }

    /// Solve one matching round.
    ///
    /// The per-site schedule is retained on the handle (see
    /// [`Matcher::per_site_slot_bytes`]); the returned [`MatchStats`] is
    /// the copy-out summary. Warm-started, re-priced and memo-replayed
    /// rounds are byte-for-byte identical to a cold solve of the same
    /// input.
    ///
    /// # Panics
    ///
    /// If `input.sites` is empty (the home site is mandatory).
    pub fn solve(&mut self, input: &MatchInput<'_>) -> MatchStats {
        assert!(!input.sites.is_empty(), "MatchInput requires at least the home site");
        let h = input.horizon.max(1);
        let n_sites = input.sites.len();

        // Deadline groups, clamped into the window; group h collects the
        // far deadlines.
        let group_units = &mut self.group_units;
        group_units.clear();
        group_units.resize(h + 1, 0);
        for j in input.jobs {
            if j.remaining_bytes == 0 {
                continue;
            }
            let units = (j.remaining_bytes.div_ceil(UNIT_BYTES)) as i64;
            let off = j.deadline_slot.saturating_sub(input.current_slot);
            let g = off.min(h); // ≥ h ⇒ far
            group_units[g] += units;
        }
        let total_units: i64 = group_units.iter().sum();

        // Per-site×slot bins: green capacity funded by forecast surplus,
        // brown capacity as the physical remainder, brown price per offset.
        self.green_caps.clear();
        self.brown_caps.clear();
        self.wan.clear();
        for (si, site) in input.sites.iter().enumerate() {
            self.wan.push(if si == 0 { 0 } else { site.wan_cost_per_unit });
            for t in 0..h {
                let busy = if si == 0 {
                    input.interactive_busy_secs.get(t).copied().unwrap_or(0.0)
                } else {
                    0.0
                };
                let capacity_units =
                    (site.model.batch_capacity_bytes(site.model.gears, busy, input.slot_secs)
                        / UNIT_BYTES) as i64;
                let surplus_wh = (site.green_forecast_wh.get(t).copied().unwrap_or(0.0)
                    - non_batch_floor_wh(&site.model, busy, input.slot_secs))
                .max(0.0);
                let green_units = ((site.model.bytes_fundable_by(surplus_wh) / UNIT_BYTES) as i64)
                    .min(capacity_units);
                self.green_caps.push(green_units);
                self.brown_caps.push(capacity_units - green_units);
            }
        }
        self.brown_arc_costs.clear();
        for t in 0..h {
            let base =
                input.brown_cost_per_slot.and_then(|c| c.get(t).copied()).unwrap_or(BROWN_COST);
            self.brown_arc_costs.push(base + (h - t) as i64);
        }

        // Dispatch: cold rebuild on shape change (or warm start off), memo
        // replay when nothing changed, warm re-price otherwise.
        if !self.warm_start || self.horizon != h || self.n_sites != n_sites {
            self.rebuild(h, n_sites, total_units);
            self.counts.cold += 1;
        } else if !self.reprice(total_units) {
            if self.stats_valid {
                self.counts.memo += 1;
                return self.last_stats;
            }
            // No cached stats to replay (defensive; cannot happen on the
            // normal path): rewind and re-solve the unchanged network.
            self.flow.rewind();
            self.counts.warm += 1;
        } else {
            self.counts.warm += 1;
        }
        self.run_solve(total_units);
        self.last_stats
    }

    /// Cold path: rebuild the dense network for shape `(h, n_sites)` from
    /// the current bins, retaining every arc handle for later re-pricing.
    fn rebuild(&mut self, h: usize, n_sites: usize, total_units: i64) {
        self.horizon = h;
        self.n_sites = n_sites;
        self.stats_valid = false;
        // Node numbering: slot node (s, t) = slot_base + s*h + t.
        let source = 0usize;
        let group_base = 1usize;
        let slot_base = group_base + h + 1;
        let beyond = slot_base + n_sites * h;
        let sink = beyond + 1;
        let g = &mut self.flow;
        g.reset(sink + 1);

        // Source → groups.
        self.supply_arcs.clear();
        for (gi, &units) in self.group_units.iter().enumerate() {
            self.supply_arcs.push(g.add_edge(source, group_base + gi, units, 0));
        }

        // Groups → eligible slots on every site (+ escapes). Non-home
        // sites charge their WAN transfer cost per unit on the way in.
        self.group_slot_arcs.clear();
        self.escape_arcs.clear();
        for (gi, &units) in self.group_units.iter().enumerate() {
            let last = last_slot(gi, h);
            for si in 0..n_sites {
                for t in 0..=last {
                    self.group_slot_arcs.push(g.add_edge(
                        group_base + gi,
                        slot_base + si * h + t,
                        units,
                        self.wan[si],
                    ));
                }
            }
            self.escape_arcs.push(g.add_edge(group_base + gi, beyond, units, escape_cost(gi, h)));
        }

        // Site-slots → sink (green + brown arcs per site).
        self.green_arcs.clear();
        self.brown_arcs.clear();
        for si in 0..n_sites {
            for t in 0..h {
                let node = slot_base + si * h + t;
                self.green_arcs.push(g.add_edge(node, sink, self.green_caps[si * h + t], t as i64));
                self.brown_arcs.push(g.add_edge(
                    node,
                    sink,
                    self.brown_caps[si * h + t],
                    self.brown_arc_costs[t],
                ));
            }
        }
        self.beyond_arc = Some(g.add_edge(beyond, sink, total_units.max(1), 0));
        self.save_bins(total_units.max(1));
    }

    /// Record the bins the network is now priced with (the warm path's
    /// drift baseline). Must be called whenever arc parameters are
    /// (re)written from the current bins.
    fn save_bins(&mut self, beyond_cap: i64) {
        self.prev_group_units.clone_from(&self.group_units);
        self.prev_green_caps.clone_from(&self.green_caps);
        self.prev_brown_caps.clone_from(&self.brown_caps);
        self.prev_brown_arc_costs.clone_from(&self.brown_arc_costs);
        self.prev_wan.clone_from(&self.wan);
        self.prev_beyond_cap = beyond_cap;
    }

    /// Warm path: diff the current bins against the bins the retained
    /// network is priced with; if anything differs, rewind all flows and
    /// re-price exactly the drifted arcs. Returns whether anything changed
    /// (false ⇒ the round is bit-identical to the previous one).
    ///
    /// The diff runs over plain integer vectors — sequential compares the
    /// optimiser turns into wide memcmp — rather than interrogating every
    /// arc through its handle (two dependent loads per arc). The
    /// invariant that makes this sound: every path that writes arc
    /// parameters ([`Self::rebuild`], this method) records the bins it
    /// wrote via [`Self::save_bins`], and `solve`'s flow mutations are
    /// undone by `rewind`, so `prev_*` always describes the network's
    /// configured parameters exactly.
    fn reprice(&mut self, total_units: i64) -> bool {
        let (h, n_sites) = (self.horizon, self.n_sites);
        let beyond_cap = total_units.max(1);
        let changed = self.group_units != self.prev_group_units
            || self.green_caps != self.prev_green_caps
            || self.brown_caps != self.prev_brown_caps
            || self.brown_arc_costs != self.prev_brown_arc_costs
            || self.wan != self.prev_wan
            || beyond_cap != self.prev_beyond_cap;
        if !changed {
            return false;
        }
        // Re-price: zero all flows, then update only the drifted arcs.
        self.flow.rewind();
        for (gi, &units) in self.group_units.iter().enumerate() {
            if units != self.prev_group_units[gi] {
                self.flow.set_edge(self.supply_arcs[gi], units, 0);
                self.flow.set_edge(self.escape_arcs[gi], units, escape_cost(gi, h));
            }
        }
        let mut k = 0usize;
        for (gi, &units) in self.group_units.iter().enumerate() {
            let gu_drift = units != self.prev_group_units[gi];
            let last = last_slot(gi, h);
            for si in 0..n_sites {
                if gu_drift || self.wan[si] != self.prev_wan[si] {
                    for _t in 0..=last {
                        self.flow.set_edge(self.group_slot_arcs[k], units, self.wan[si]);
                        k += 1;
                    }
                } else {
                    k += last + 1;
                }
            }
        }
        for si in 0..n_sites {
            for t in 0..h {
                let b = si * h + t;
                if self.green_caps[b] != self.prev_green_caps[b] {
                    self.flow.set_edge(self.green_arcs[b], self.green_caps[b], t as i64);
                }
                if self.brown_caps[b] != self.prev_brown_caps[b]
                    || self.brown_arc_costs[t] != self.prev_brown_arc_costs[t]
                {
                    self.flow.set_edge(
                        self.brown_arcs[b],
                        self.brown_caps[b],
                        self.brown_arc_costs[t],
                    );
                }
            }
        }
        if beyond_cap != self.prev_beyond_cap {
            let beyond = self.beyond_arc.expect("retained topology has a beyond arc");
            self.flow.set_edge(beyond, beyond_cap, 0);
        }
        self.save_bins(beyond_cap);
        true
    }

    /// Run the deterministic solver on the prepared network and extract the
    /// schedule and stats.
    fn run_solve(&mut self, total_units: i64) {
        let (h, n_sites) = (self.horizon, self.n_sites);
        let source = 0usize;
        let slot_base = 1 + h + 1;
        let sink = slot_base + n_sites * h + 1;
        let result = self.flow.solve(source, sink, total_units);
        debug_assert_eq!(result.flow, total_units, "network must absorb all work");

        let per_site_slot_bytes = &mut self.per_site_slot_bytes;
        per_site_slot_bytes.clear();
        per_site_slot_bytes.resize(n_sites * h, 0);
        let mut green_bytes = 0u64;
        let mut brown_bytes = 0u64;
        let mut wan_bytes = 0u64;
        let mut remote_bytes_now = 0u64;
        let mut placed_units = 0i64;
        for si in 0..n_sites {
            for t in 0..h {
                let b = si * h + t;
                let fg = self.flow.flow_on(self.green_arcs[b]);
                let fb = self.flow.flow_on(self.brown_arcs[b]);
                green_bytes += fg as u64 * UNIT_BYTES;
                brown_bytes += fb as u64 * UNIT_BYTES;
                let units = fg + fb;
                placed_units += units;
                let bytes = units as u64 * UNIT_BYTES;
                per_site_slot_bytes[b] = bytes;
                if si > 0 {
                    wan_bytes += bytes;
                    if t == 0 {
                        remote_bytes_now += bytes;
                    }
                }
            }
        }
        let beyond = self.beyond_arc.expect("solved topology has a beyond arc");
        let beyond_units = self.flow.flow_on(beyond);
        // Split the escape flow into benign deferral vs deadline overflow
        // by re-deriving how much far-group work there was.
        let far_units = self.group_units[h];
        let deferred_units = beyond_units.min(far_units);
        let infeasible_units = beyond_units - deferred_units;

        self.last_stats = MatchStats {
            bytes_now: per_site_slot_bytes.first().copied().unwrap_or(0),
            remote_bytes_now,
            wan_bytes,
            deferred_bytes: deferred_units as u64 * UNIT_BYTES,
            infeasible_bytes: infeasible_units as u64 * UNIT_BYTES,
            green_bytes,
            brown_bytes,
            cost: result.cost,
            unaccounted_units: total_units - placed_units - beyond_units,
        };
        self.stats_valid = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatteryView, SiteView};
    use gm_storage::ClusterSpec;
    use gm_workload::JobId;

    fn model() -> PlanningModel {
        PlanningModel::from_spec(&ClusterSpec::small())
    }

    fn job(id: u64, gib: u64, deadline_slot: usize) -> JobView {
        JobView { id: JobId(id), remaining_bytes: gib << 30, deadline_slot, critical: false }
    }

    /// Green forecast with surplus only in the given offsets.
    fn forecast(h: usize, green_offsets: &[usize], wh: f64) -> Vec<f64> {
        let mut v = vec![0.0; h];
        for &o in green_offsets {
            v[o] = wh;
        }
        v
    }

    fn site_views<'a>(forecasts: &'a [Vec<f64>], wan_cost_per_unit: i64) -> Vec<SiteView<'a>> {
        forecasts
            .iter()
            .enumerate()
            .map(|(i, f)| SiteView {
                site: i,
                green_forecast_wh: f,
                model: model(),
                wan_cost_per_unit: if i == 0 { 0 } else { wan_cost_per_unit },
                battery: BatteryView::default(),
            })
            .collect()
    }

    fn input<'a>(
        jobs: &'a [JobView],
        sites: &'a [SiteView<'a>],
        busy: &'a [f64],
    ) -> MatchInput<'a> {
        MatchInput {
            jobs,
            current_slot: 0,
            horizon: busy.len(),
            sites,
            interactive_busy_secs: busy,
            slot_secs: 3600.0,
            brown_cost_per_slot: None,
        }
    }

    /// One-shot single-site solve on a fresh handle; returns the stats and
    /// the home schedule.
    fn solve_single(jobs: &[JobView], green: &[f64], busy: &[f64]) -> (MatchStats, Vec<u64>) {
        let forecasts = vec![green.to_vec()];
        let sites = site_views(&forecasts, 0);
        let mut m = Matcher::new();
        let stats = m.solve(&input(jobs, &sites, busy));
        (stats, m.per_slot_bytes().to_vec())
    }

    #[test]
    fn work_flows_to_green_slots() {
        // Surplus at offset 3 only; job deadline at offset 6.
        let jobs = vec![job(1, 64, 6)];
        let green = forecast(8, &[3], 5_000.0);
        let busy = vec![0.0; 8];
        let (stats, plan) = solve_single(&jobs, &green, &busy);
        assert_eq!(stats.bytes_now, 0, "nothing runs in the brown present");
        assert!(plan[3] >= 64 << 30, "work lands in the green slot");
        assert_eq!(stats.brown_bytes, 0);
        assert!(stats.green_bytes >= 64 << 30);
        assert_eq!(stats.infeasible_bytes, 0);
    }

    #[test]
    fn deadline_forces_brown_when_no_green_in_window() {
        let jobs = vec![job(1, 64, 2)];
        let green = forecast(8, &[], 0.0);
        let busy = vec![0.0; 8];
        let (stats, plan) = solve_single(&jobs, &green, &busy);
        let placed: u64 = plan[..3].iter().sum();
        assert!(placed >= 64 << 30, "deadline work placed despite brown cost");
        assert!(stats.brown_bytes >= 64 << 30);
        assert_eq!(stats.deferred_bytes, 0);
    }

    #[test]
    fn far_deadlines_defer_past_window() {
        let jobs = vec![job(1, 64, 1_000)];
        let green = forecast(8, &[], 0.0);
        let busy = vec![0.0; 8];
        let (stats, _) = solve_single(&jobs, &green, &busy);
        assert_eq!(stats.bytes_now, 0);
        assert!(stats.deferred_bytes >= 64 << 30, "no green, far deadline ⇒ wait");
        assert_eq!(stats.infeasible_bytes, 0);
    }

    #[test]
    fn far_work_still_takes_free_green() {
        let jobs = vec![job(1, 64, 1_000)];
        let green = forecast(8, &[2], 5_000.0);
        let busy = vec![0.0; 8];
        let (_, plan) = solve_single(&jobs, &green, &busy);
        assert!(plan[2] > 0, "green capacity is cheaper than deferring");
    }

    #[test]
    fn earlier_green_preferred_on_ties() {
        let jobs = vec![job(1, 16, 1_000)];
        let green = forecast(8, &[2, 5], 5_000.0);
        let busy = vec![0.0; 8];
        let (_, plan) = solve_single(&jobs, &green, &busy);
        assert!(plan[2] >= plan[5]);
        assert!(plan[2] >= 16 << 30);
    }

    #[test]
    fn overload_reports_infeasible_bytes() {
        // One-slot window; more deadline work than one slot's capacity.
        let capacity = model().batch_capacity_bytes(3, 0.0, 3600.0);
        let too_much_gib = (capacity / (1 << 30)) * 3;
        let jobs = vec![job(1, too_much_gib, 0)];
        let green = forecast(1, &[], 0.0);
        let busy = vec![0.0; 1];
        let (stats, plan) = solve_single(&jobs, &green, &busy);
        assert!(stats.infeasible_bytes > 0, "overflow must be flagged");
        assert!(plan[0] > 0, "window still packed full");
    }

    #[test]
    fn no_jobs_is_an_empty_plan() {
        let green = forecast(4, &[1], 1_000.0);
        let busy = vec![0.0; 4];
        let (stats, _) = solve_single(&[], &green, &busy);
        assert_eq!(stats.bytes_now, 0);
        assert_eq!(stats.green_bytes + stats.brown_bytes + stats.deferred_bytes, 0);
        assert_eq!(stats.cost, 0);
    }

    #[test]
    fn interactive_load_shrinks_green_capacity() {
        let jobs = vec![job(1, 512, 1_000)];
        // 400 Wh: barely above the 1-gear idle floor when idle, below the
        // 2-gear floor once interactive load forces a second gear.
        let green = forecast(4, &[1], 400.0);
        let idle_busy = vec![0.0; 4];
        let (_, plan_idle) = solve_single(&jobs, &green, &idle_busy);
        // Same green, but heavy interactive load in slot 1.
        let loaded_busy = vec![0.0, 12_000.0, 0.0, 0.0];
        let (_, plan_loaded) = solve_single(&jobs, &green, &loaded_busy);
        assert!(
            plan_loaded[1] < plan_idle[1],
            "interactive floor eats green surplus: {} vs {}",
            plan_loaded[1],
            plan_idle[1]
        );
    }

    #[test]
    fn brown_cost_override_steers_forced_work() {
        // No green; deadline at offset 2, so the work must land in offsets
        // 0..=2 on brown power. Uniform pricing procrastinates to offset 2;
        // an override making offset 0 far cheaper pulls it forward.
        let jobs = vec![job(1, 16, 2)];
        let green = forecast(4, &[], 0.0);
        let busy = vec![0.0; 4];
        let (uniform, plan) = solve_single(&jobs, &green, &busy);
        assert_eq!(uniform.bytes_now, 0, "uniform pricing procrastinates");
        assert!(plan[2] >= 16 << 30);

        let costs = vec![100i64, 5_000, 5_000, 5_000];
        let forecasts = vec![green.clone()];
        let sites = site_views(&forecasts, 0);
        let mut inp = input(&jobs, &sites, &busy);
        inp.brown_cost_per_slot = Some(&costs);
        let mut m = Matcher::new();
        let steered = m.solve(&inp);
        assert!(steered.bytes_now >= 16 << 30, "cheap-now pricing runs now");
    }

    #[test]
    fn handle_reuse_matches_fresh_solve() {
        // One handle across rounds of different shape and horizon must
        // reproduce exactly what a fresh handle produces (shape changes
        // exercise the cold fallback; repeats exercise warm and memo).
        let mut reused = Matcher::new();
        let rounds: Vec<(Vec<JobView>, Vec<f64>)> = vec![
            (vec![job(1, 64, 6)], forecast(8, &[3], 5_000.0)),
            (vec![job(2, 64, 2), job(3, 16, 1_000)], forecast(4, &[], 0.0)),
            (vec![], forecast(6, &[1], 1_000.0)),
            (vec![job(4, 512, 1_000)], forecast(8, &[2, 5], 5_000.0)),
            (vec![job(4, 512, 1_000)], forecast(8, &[2, 5], 5_000.0)),
            (vec![job(4, 256, 900)], forecast(8, &[2], 5_000.0)),
        ];
        for (jobs, green) in &rounds {
            let busy = vec![0.0; green.len()];
            let forecasts = vec![green.clone()];
            let sites = site_views(&forecasts, 0);
            let inp = input(jobs, &sites, &busy);
            let mut fresh = Matcher::new();
            let want = fresh.solve(&inp);
            let got = reused.solve(&inp);
            assert_eq!(got, want);
            assert_eq!(reused.per_slot_bytes(), fresh.per_slot_bytes());
        }
        let c = reused.solve_counts();
        assert!(c.cold >= 3, "shape changes fall back cold: {c:?}");
        assert!(c.memo >= 1, "the repeated round replays from memo: {c:?}");
        assert!(c.warm >= 1, "the same-shape perturbed round re-prices: {c:?}");
    }

    #[test]
    fn warm_start_off_matches_on() {
        let mut warm = Matcher::new();
        let mut cold = Matcher::new();
        cold.set_warm_start(false);
        assert!(warm.warm_start() && !cold.warm_start());
        let rounds: Vec<(Vec<JobView>, Vec<f64>)> = vec![
            (vec![job(1, 64, 6)], forecast(8, &[3], 5_000.0)),
            (vec![job(1, 64, 5)], forecast(8, &[3], 4_000.0)),
            (vec![job(1, 48, 4)], forecast(8, &[2], 4_000.0)),
            (vec![job(1, 48, 4)], forecast(8, &[2], 4_000.0)),
        ];
        for (jobs, green) in &rounds {
            let busy = vec![0.0; green.len()];
            let forecasts = vec![green.clone()];
            let sites = site_views(&forecasts, 0);
            let inp = input(jobs, &sites, &busy);
            assert_eq!(warm.solve(&inp), cold.solve(&inp));
            assert_eq!(warm.per_slot_bytes(), cold.per_slot_bytes());
        }
        assert_eq!(cold.solve_counts().warm, 0);
        assert_eq!(cold.solve_counts().memo, 0);
        assert!(warm.solve_counts().warm + warm.solve_counts().memo >= 2);
    }

    #[test]
    fn cheap_wan_ships_deadline_work_to_remote_green() {
        // No green at home, surplus on the remote site, deadline inside the
        // window: brown at home costs BROWN_COST per unit, remote green
        // costs the WAN fee. Cheap WAN ⇒ ship; ruinous WAN ⇒ stay home.
        let jobs = vec![job(1, 64, 2)];
        let busy = vec![0.0; 8];
        let forecasts = vec![forecast(8, &[], 0.0), forecast(8, &[1], 5_000.0)];

        let cheap = site_views(&forecasts, 200);
        let mut m = Matcher::new();
        let shipped = m.solve(&input(&jobs, &cheap, &busy));
        assert!(shipped.wan_bytes >= 64 << 30, "cheap WAN ships to remote green");
        assert_eq!(shipped.brown_bytes, 0);
        assert!(m.site_slot_bytes(1, 1) >= 64 << 30);

        let ruinous = site_views(&forecasts, 1_000_000);
        let stayed = m.solve(&input(&jobs, &ruinous, &busy));
        assert_eq!(stayed.wan_bytes, 0, "ruinous WAN keeps work on home brown");
        assert!(stayed.brown_bytes >= 64 << 30);
    }

    #[test]
    fn multi_site_plans_conserve_bytes_and_respect_capacity() {
        // Property test over pseudo-random rounds: every unit of work is
        // accounted for (placed, deferred, or flagged infeasible), no
        // site-slot exceeds its physical capacity, and the reused warm
        // handle agrees with a cold solve of every round.
        let mut seed = 0x00C0_FFEE_u64;
        let mut rng = move || gm_sim::rng::splitmix64(&mut seed);
        let mut m = Matcher::new();
        for round in 0..40 {
            let h = 2 + (rng() % 10) as usize;
            let n_sites = 1 + (rng() % 3) as usize;
            let wan = [0, 200, 2_000, 500_000][(rng() % 4) as usize];
            let n_jobs = (rng() % 12) as usize;
            let jobs: Vec<JobView> = (0..n_jobs)
                .map(|i| {
                    let gib = rng() % 1_500;
                    let deadline = (rng() % (3 * h as u64)) as usize;
                    job(i as u64, gib, deadline)
                })
                .collect();
            let forecasts: Vec<Vec<f64>> =
                (0..n_sites).map(|_| (0..h).map(|_| (rng() % 8_000) as f64).collect()).collect();
            let busy: Vec<f64> = (0..h).map(|_| (rng() % 4_000) as f64).collect();
            let sites = site_views(&forecasts, wan);
            let inp = input(&jobs, &sites, &busy);
            let stats = m.solve(&inp);
            let mut fresh = Matcher::new();
            fresh.set_warm_start(false);
            assert_eq!(fresh.solve(&inp), stats, "round {round}: warm == cold");
            assert_eq!(fresh.per_site_slot_bytes(), m.per_site_slot_bytes(), "round {round}");

            let total: u64 =
                jobs.iter().map(|j| j.remaining_bytes.div_ceil(UNIT_BYTES) * UNIT_BYTES).sum();
            let placed: u64 = m.per_site_slot_bytes().iter().sum();
            assert_eq!(
                placed + stats.deferred_bytes + stats.infeasible_bytes,
                total,
                "round {round}: every unit placed, deferred, or infeasible"
            );
            assert_eq!(stats.green_bytes + stats.brown_bytes, placed, "round {round}");
            assert_eq!(stats.unaccounted_units, 0, "round {round}: flow conserved");
            for (si, site) in sites.iter().enumerate() {
                for (t, &slot_busy) in busy.iter().enumerate().take(h) {
                    let b = if si == 0 { slot_busy } else { 0.0 };
                    let cap = site.model.batch_capacity_bytes(site.model.gears, b, 3600.0);
                    assert!(
                        m.site_slot_bytes(si, t) <= cap,
                        "round {round}: site {si} slot {t} over capacity"
                    );
                }
            }
        }
    }

    #[test]
    fn non_batch_floor_includes_idle_and_marginal() {
        let m = model();
        let floor0 = non_batch_floor_wh(&m, 0.0, 3600.0);
        let floor1 = non_batch_floor_wh(&m, 7_200.0, 3600.0);
        // Idle slot: one idle gear = 284 Wh.
        assert!((floor0 - 284.0).abs() < 1e-6, "{floor0}");
        assert!(floor1 > floor0, "busy slot has a higher floor");
    }
}
