//! The GreenMatch matcher: assign deferrable batch bytes to forecast slots.
//!
//! Each slot, pending deferrable work is matched against the next `H` slots
//! by solving a small transportation problem with [`crate::mincostflow`]:
//!
//! ```text
//!  source ──(group bytes)──► deadline-group d ──► slot t (t ≤ d) ──► sink
//!                                   │                  green arc: cap = surplus-funded units, cost = t
//!                                   │                  brown arc: cap = rest of capacity,     cost = BROWN + t
//!                                   └──(far deadlines)──► beyond ──► sink   (cost = DEFER)
//! ```
//!
//! * Jobs are aggregated into **deadline groups** (work is divisible and
//!   jobs within a group are interchangeable), keeping the graph at
//!   ~`2H` nodes regardless of job count.
//! * Work is quantised into [`UNIT_BYTES`] units.
//! * A slot's **green capacity** is the work fundable by its predicted
//!   green surplus (forecast minus the non-batch floor: minimum-gear idle
//!   power plus the interactive marginal); the remainder of its physical
//!   capacity is **brown** and costs [`BROWN_COST`] per unit. The linear
//!   time-preference term breaks ties toward earlier slots so plans do not
//!   thrash between equal-cost schedules.
//! * Groups whose deadline is inside the window may overflow to `beyond`
//!   only at [`INFEASIBLE_COST`], so the solver stays feasible under
//!   overload and the overflow is a congestion signal.
//!
//! Gear-up fixed costs are deliberately *not* in the flow network (they are
//! concave); the executing policy re-checks gear economics when it turns
//! the slot-0 plan into a [`crate::policy::Decision`].

use crate::mincostflow::{EdgeId, MinCostFlow};
use crate::policy::{JobView, PlanningModel, SiteView};
use gm_sim::time::SlotIdx;

/// Quantum of batch work in the flow network (8 GiB).
pub const UNIT_BYTES: u64 = 8 << 30;
/// Per-unit cost of brown-funded capacity (green costs only its slot offset).
pub const BROWN_COST: i64 = 1_000;
/// Per-unit cost of deferring past-window work (far deadlines only).
pub const DEFER_COST: i64 = 100;
/// Per-unit cost of the overload escape for in-window deadlines.
pub const INFEASIBLE_COST: i64 = 100_000;

/// Input to one matching round.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchInput<'a> {
    /// Pending deferrable jobs.
    pub jobs: &'a [JobView],
    /// Slot being decided (offset 0 of the window).
    pub current_slot: SlotIdx,
    /// Window length in slots.
    pub horizon: usize,
    /// Forecast green energy per slot (Wh), index 0 = current slot.
    pub green_forecast_wh: &'a [f64],
    /// Expected interactive busy-seconds per slot, same indexing.
    pub interactive_busy_secs: &'a [f64],
    /// Planning arithmetic.
    pub model: PlanningModel,
    /// Slot width in seconds.
    pub slot_secs: f64,
    /// Per-offset brown cost override (e.g. scaled by the grid's carbon
    /// intensity for carbon-aware scheduling). `None` ⇒ uniform
    /// [`BROWN_COST`]. Values should be on the same scale as `BROWN_COST`.
    pub brown_cost_per_slot: Option<&'a [i64]>,
}

/// Output of one matching round.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchPlan {
    /// Bytes planned per window offset (0 = run now).
    pub per_slot_bytes: Vec<u64>,
    /// Bytes pushed to the `beyond` node (deferred past the window).
    pub deferred_bytes: u64,
    /// Bytes that could only be placed via the overload escape (deadline
    /// pressure exceeds window capacity).
    pub infeasible_bytes: u64,
    /// Bytes of the plan sitting on green-funded arcs.
    pub green_bytes: u64,
    /// Bytes of the plan sitting on brown-funded arcs.
    pub brown_bytes: u64,
    /// Total solver cost (diagnostic).
    pub cost: i64,
}

impl MatchPlan {
    /// Bytes the plan wants executed in the current slot.
    #[must_use]
    pub fn bytes_now(&self) -> u64 {
        self.per_slot_bytes.first().copied().unwrap_or(0)
    }
}

/// Reusable state for repeated matching rounds: the flow network plus every
/// work vector one round needs. A policy holds one scratch across slots so
/// steady-state matching performs no heap allocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MatcherScratch {
    flow: MinCostFlow,
    group_units: Vec<i64>,
    green_arcs: Vec<Option<EdgeId>>,
    brown_arcs: Vec<Option<EdgeId>>,
    per_slot_bytes: Vec<u64>,
}

impl MatcherScratch {
    /// Bytes planned per window offset (0 = run now) from the most recent
    /// [`solve_with`] call.
    #[must_use]
    pub fn per_slot_bytes(&self) -> &[u64] {
        &self.per_slot_bytes
    }
}

/// Copy-out summary of one matching round; the per-slot schedule stays in
/// the [`MatcherScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchStats {
    /// Bytes the plan wants executed in the current slot.
    pub bytes_now: u64,
    /// Bytes pushed to the `beyond` node (deferred past the window).
    pub deferred_bytes: u64,
    /// Bytes that could only be placed via the overload escape.
    pub infeasible_bytes: u64,
    /// Bytes of the plan sitting on green-funded arcs.
    pub green_bytes: u64,
    /// Bytes of the plan sitting on brown-funded arcs.
    pub brown_bytes: u64,
    /// Total solver cost (diagnostic).
    pub cost: i64,
    /// Unit-accounting residual: total units minus (placed + deferred +
    /// infeasible). Zero whenever the network conserved flow; the
    /// conservation auditor asserts it stays zero in release builds, where
    /// the solver's `debug_assert` is compiled out.
    pub unaccounted_units: i64,
}

/// Estimated non-batch energy floor (Wh) of window offset `k`: idle power
/// at the interactive minimum gear level plus the interactive marginal.
#[must_use]
pub fn non_batch_floor_wh(input: &MatchInput<'_>, k: usize) -> f64 {
    let busy = input.interactive_busy_secs.get(k).copied().unwrap_or(0.0);
    floor_wh(&input.model, busy, input.slot_secs)
}

/// The non-batch floor arithmetic shared by the single- and multi-site
/// solvers: idle power at the interactive minimum gear level plus the
/// interactive marginal, for one slot.
fn floor_wh(model: &PlanningModel, busy: f64, slot_secs: f64) -> f64 {
    let min_g = model.min_gears_for_interactive(busy, slot_secs);
    let hours = slot_secs / 3600.0;
    let interactive_marginal_wh =
        busy / 3600.0 * (model.batch_wh_per_byte * model.disk_bw_bps * 3600.0);
    model.idle_w(min_g) * hours + interactive_marginal_wh
}

/// Solve one matching round, allocating a fresh plan. Allocation-free
/// callers use [`solve_with`] and read the schedule out of the scratch.
#[must_use]
pub fn solve(input: &MatchInput<'_>) -> MatchPlan {
    let mut scratch = MatcherScratch::default();
    let stats = solve_with(input, &mut scratch);
    MatchPlan {
        per_slot_bytes: scratch.per_slot_bytes,
        deferred_bytes: stats.deferred_bytes,
        infeasible_bytes: stats.infeasible_bytes,
        green_bytes: stats.green_bytes,
        brown_bytes: stats.brown_bytes,
        cost: stats.cost,
    }
}

/// Solve one matching round into reusable scratch state. The per-slot
/// schedule is left in [`MatcherScratch::per_slot_bytes`].
pub fn solve_with(input: &MatchInput<'_>, scratch: &mut MatcherScratch) -> MatchStats {
    let h = input.horizon.max(1);
    // Aggregate jobs into deadline groups, clamped into the window; the
    // "far" group collects deadlines beyond it.
    // Group index: 0..h for in-window deadline offsets, h = far.
    let group_units = &mut scratch.group_units;
    group_units.clear();
    group_units.resize(h + 1, 0);
    for j in input.jobs {
        if j.remaining_bytes == 0 {
            continue;
        }
        let units = (j.remaining_bytes.div_ceil(UNIT_BYTES)) as i64;
        let off = j.deadline_slot.saturating_sub(input.current_slot);
        let g = off.min(h); // ≥ h ⇒ far
        group_units[g] += units;
    }
    let total_units: i64 = group_units.iter().sum();

    // Node numbering.
    let source = 0usize;
    let group_base = 1usize; // h+1 group nodes
    let slot_base = group_base + h + 1; // h slot nodes
    let beyond = slot_base + h;
    let sink = beyond + 1;
    let g = &mut scratch.flow;
    g.reset(sink + 1);

    // Source → groups.
    for (gi, &units) in group_units.iter().enumerate() {
        if units > 0 {
            g.add_edge(source, group_base + gi, units, 0);
        }
    }

    // Groups → eligible slots (+ escapes).
    for (gi, &units) in group_units.iter().enumerate() {
        if units == 0 {
            continue;
        }
        let last_slot = if gi == h { h - 1 } else { gi.min(h - 1) };
        for t in 0..=last_slot {
            g.add_edge(group_base + gi, slot_base + t, units, 0);
        }
        let escape_cost = if gi == h { DEFER_COST } else { INFEASIBLE_COST };
        g.add_edge(group_base + gi, beyond, units, escape_cost);
    }

    // Slots → sink (green + brown arcs), remember handles for extraction.
    let green_arcs = &mut scratch.green_arcs;
    green_arcs.clear();
    green_arcs.resize(h, None);
    let brown_arcs = &mut scratch.brown_arcs;
    brown_arcs.clear();
    brown_arcs.resize(h, None);
    for t in 0..h {
        let busy = input.interactive_busy_secs.get(t).copied().unwrap_or(0.0);
        let capacity_units =
            (input.model.batch_capacity_bytes(input.model.gears, busy, input.slot_secs)
                / UNIT_BYTES) as i64;
        if capacity_units == 0 {
            continue;
        }
        let surplus_wh = (input.green_forecast_wh.get(t).copied().unwrap_or(0.0)
            - non_batch_floor_wh(input, t))
        .max(0.0);
        let green_units =
            ((input.model.bytes_fundable_by(surplus_wh) / UNIT_BYTES) as i64).min(capacity_units);
        if green_units > 0 {
            green_arcs[t] = Some(g.add_edge(slot_base + t, sink, green_units, t as i64));
        }
        let brown_units = capacity_units - green_units;
        if brown_units > 0 {
            // Brown capacity procrastinates: prefer the *latest* feasible
            // slot, so re-planning with fresh forecasts can still rescue the
            // work into a green window. A per-slot override (carbon-aware
            // mode) can additionally steer brown work toward clean hours.
            let base =
                input.brown_cost_per_slot.and_then(|c| c.get(t).copied()).unwrap_or(BROWN_COST);
            brown_arcs[t] =
                Some(g.add_edge(slot_base + t, sink, brown_units, base + (h - t) as i64));
        }
    }
    let beyond_arc = g.add_edge(beyond, sink, total_units.max(1), 0);

    let result = g.solve(source, sink, total_units);
    debug_assert_eq!(result.flow, total_units, "network must absorb all work");

    // Extract per-slot plan.
    let per_slot_bytes = &mut scratch.per_slot_bytes;
    per_slot_bytes.clear();
    per_slot_bytes.resize(h, 0);
    let mut green_bytes = 0u64;
    let mut brown_bytes = 0u64;
    let mut placed_units = 0i64;
    for t in 0..h {
        let mut units = 0i64;
        if let Some(e) = green_arcs[t] {
            let f = g.flow_on(e);
            units += f;
            green_bytes += f as u64 * UNIT_BYTES;
        }
        if let Some(e) = brown_arcs[t] {
            let f = g.flow_on(e);
            units += f;
            brown_bytes += f as u64 * UNIT_BYTES;
        }
        placed_units += units;
        per_slot_bytes[t] = units as u64 * UNIT_BYTES;
    }
    let beyond_units = g.flow_on(beyond_arc);
    // Split the escape flow into benign deferral vs deadline overflow by
    // re-deriving how much far-group work there was.
    let far_units = group_units[h];
    let deferred_units = beyond_units.min(far_units);
    let infeasible_units = beyond_units - deferred_units;

    MatchStats {
        bytes_now: per_slot_bytes.first().copied().unwrap_or(0),
        deferred_bytes: deferred_units as u64 * UNIT_BYTES,
        infeasible_bytes: infeasible_units as u64 * UNIT_BYTES,
        green_bytes,
        brown_bytes,
        cost: result.cost,
        unaccounted_units: total_units - placed_units - beyond_units,
    }
}

// ---------------------------------------------------------------------------
// Multi-site matching
// ---------------------------------------------------------------------------

/// Input to one multi-site matching round: the single-site problem with the
/// slot axis generalised to `site × slot`. Placing a unit on a non-home
/// site additionally pays that site's WAN transfer cost per unit.
#[derive(Debug, Clone)]
pub struct MultiMatchInput<'a> {
    /// Pending deferrable jobs.
    pub jobs: &'a [JobView],
    /// Slot being decided (offset 0 of the window).
    pub current_slot: SlotIdx,
    /// Window length in slots.
    pub horizon: usize,
    /// Per-site capacity views, home first (index 0). The home view's WAN
    /// cost is zero by construction.
    pub sites: &'a [SiteView<'a>],
    /// Home-site expected interactive busy-seconds per slot (remote sites
    /// serve no interactive traffic).
    pub interactive_busy_secs: &'a [f64],
    /// Slot width in seconds.
    pub slot_secs: f64,
    /// Per-offset brown cost override (see [`MatchInput`]); applies to
    /// every site's brown arcs.
    pub brown_cost_per_slot: Option<&'a [i64]>,
}

/// Reusable state for repeated multi-site matching rounds, mirroring
/// [`MatcherScratch`] with the per-slot schedule generalised to a flat
/// `site × slot` matrix.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MultiMatcherScratch {
    flow: MinCostFlow,
    group_units: Vec<i64>,
    green_arcs: Vec<Option<EdgeId>>,
    brown_arcs: Vec<Option<EdgeId>>,
    per_site_slot_bytes: Vec<u64>,
    n_sites: usize,
    horizon: usize,
}

impl MultiMatcherScratch {
    /// Bytes planned per `site × slot` (row-major: `site * horizon + slot`)
    /// from the most recent [`solve_sites_with`] call.
    #[must_use]
    pub fn per_site_slot_bytes(&self) -> &[u64] {
        &self.per_site_slot_bytes
    }

    /// Bytes planned at window offset `t` on `site` in the most recent
    /// round (0 for out-of-range indices).
    #[must_use]
    pub fn site_slot_bytes(&self, site: usize, t: usize) -> u64 {
        if site >= self.n_sites || t >= self.horizon {
            return 0;
        }
        self.per_site_slot_bytes[site * self.horizon + t]
    }

    /// Bytes the plan wants executed in the current slot on `site`.
    #[must_use]
    pub fn bytes_now(&self, site: usize) -> u64 {
        self.site_slot_bytes(site, 0)
    }
}

/// Copy-out summary of one multi-site matching round; the per-site schedule
/// stays in the [`MultiMatcherScratch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiMatchStats {
    /// Bytes the plan wants executed in the current slot at the home site.
    pub bytes_now_home: u64,
    /// Bytes the plan wants executed in the current slot on non-home sites.
    pub remote_bytes_now: u64,
    /// Bytes the whole plan places on non-home sites (any offset); each
    /// paid its site's WAN cost.
    pub wan_bytes: u64,
    /// Bytes pushed to the `beyond` node (deferred past the window).
    pub deferred_bytes: u64,
    /// Bytes that could only be placed via the overload escape.
    pub infeasible_bytes: u64,
    /// Bytes of the plan sitting on green-funded arcs (all sites).
    pub green_bytes: u64,
    /// Bytes of the plan sitting on brown-funded arcs (all sites).
    pub brown_bytes: u64,
    /// Total solver cost (diagnostic).
    pub cost: i64,
    /// Unit-accounting residual: total units minus (placed + deferred +
    /// infeasible). Zero whenever the network conserved flow (see
    /// [`MatchStats::unaccounted_units`]).
    pub unaccounted_units: i64,
}

/// Solve one multi-site matching round into reusable scratch state.
///
/// The network is [`solve_with`]'s with one slot node per `site × offset`
/// pair: every deadline group may reach any site's eligible slots, paying
/// the site's WAN cost per unit on the group→slot arc, and each site's
/// slots carry their own green/brown capacity split (remote sites have no
/// interactive floor). The per-site schedule is left in
/// [`MultiMatcherScratch::per_site_slot_bytes`].
pub fn solve_sites_with(
    input: &MultiMatchInput<'_>,
    scratch: &mut MultiMatcherScratch,
) -> MultiMatchStats {
    let h = input.horizon.max(1);
    let n_sites = input.sites.len().max(1);
    scratch.horizon = h;
    scratch.n_sites = n_sites;

    // Deadline groups, exactly as in the single-site round.
    let group_units = &mut scratch.group_units;
    group_units.clear();
    group_units.resize(h + 1, 0);
    for j in input.jobs {
        if j.remaining_bytes == 0 {
            continue;
        }
        let units = (j.remaining_bytes.div_ceil(UNIT_BYTES)) as i64;
        let off = j.deadline_slot.saturating_sub(input.current_slot);
        let g = off.min(h);
        group_units[g] += units;
    }
    let total_units: i64 = group_units.iter().sum();

    // Node numbering: slot node (s, t) = slot_base + s*h + t.
    let source = 0usize;
    let group_base = 1usize;
    let slot_base = group_base + h + 1;
    let beyond = slot_base + n_sites * h;
    let sink = beyond + 1;
    let g = &mut scratch.flow;
    g.reset(sink + 1);

    // Source → groups.
    for (gi, &units) in group_units.iter().enumerate() {
        if units > 0 {
            g.add_edge(source, group_base + gi, units, 0);
        }
    }

    // Groups → eligible slots on every site (+ escapes). Non-home sites
    // charge their WAN transfer cost per unit on the way in.
    for (gi, &units) in group_units.iter().enumerate() {
        if units == 0 {
            continue;
        }
        let last_slot = if gi == h { h - 1 } else { gi.min(h - 1) };
        for (si, site) in input.sites.iter().enumerate() {
            let wan = if si == 0 { 0 } else { site.wan_cost_per_unit };
            for t in 0..=last_slot {
                g.add_edge(group_base + gi, slot_base + si * h + t, units, wan);
            }
        }
        let escape_cost = if gi == h { DEFER_COST } else { INFEASIBLE_COST };
        g.add_edge(group_base + gi, beyond, units, escape_cost);
    }

    // Site-slots → sink (green + brown arcs per site).
    let green_arcs = &mut scratch.green_arcs;
    green_arcs.clear();
    green_arcs.resize(n_sites * h, None);
    let brown_arcs = &mut scratch.brown_arcs;
    brown_arcs.clear();
    brown_arcs.resize(n_sites * h, None);
    for (si, site) in input.sites.iter().enumerate() {
        for t in 0..h {
            let busy = if si == 0 {
                input.interactive_busy_secs.get(t).copied().unwrap_or(0.0)
            } else {
                0.0
            };
            let capacity_units =
                (site.model.batch_capacity_bytes(site.model.gears, busy, input.slot_secs)
                    / UNIT_BYTES) as i64;
            if capacity_units == 0 {
                continue;
            }
            let surplus_wh = (site.green_forecast_wh.get(t).copied().unwrap_or(0.0)
                - floor_wh(&site.model, busy, input.slot_secs))
            .max(0.0);
            let green_units = ((site.model.bytes_fundable_by(surplus_wh) / UNIT_BYTES) as i64)
                .min(capacity_units);
            let node = slot_base + si * h + t;
            if green_units > 0 {
                green_arcs[si * h + t] = Some(g.add_edge(node, sink, green_units, t as i64));
            }
            let brown_units = capacity_units - green_units;
            if brown_units > 0 {
                let base =
                    input.brown_cost_per_slot.and_then(|c| c.get(t).copied()).unwrap_or(BROWN_COST);
                brown_arcs[si * h + t] =
                    Some(g.add_edge(node, sink, brown_units, base + (h - t) as i64));
            }
        }
    }
    let beyond_arc = g.add_edge(beyond, sink, total_units.max(1), 0);

    let result = g.solve(source, sink, total_units);
    debug_assert_eq!(result.flow, total_units, "network must absorb all work");

    // Extract the per-site schedule.
    let per_site_slot_bytes = &mut scratch.per_site_slot_bytes;
    per_site_slot_bytes.clear();
    per_site_slot_bytes.resize(n_sites * h, 0);
    let mut green_bytes = 0u64;
    let mut brown_bytes = 0u64;
    let mut wan_bytes = 0u64;
    let mut remote_bytes_now = 0u64;
    let mut placed_units = 0i64;
    for si in 0..n_sites {
        for t in 0..h {
            let mut units = 0i64;
            if let Some(e) = green_arcs[si * h + t] {
                let f = g.flow_on(e);
                units += f;
                green_bytes += f as u64 * UNIT_BYTES;
            }
            if let Some(e) = brown_arcs[si * h + t] {
                let f = g.flow_on(e);
                units += f;
                brown_bytes += f as u64 * UNIT_BYTES;
            }
            placed_units += units;
            let bytes = units as u64 * UNIT_BYTES;
            per_site_slot_bytes[si * h + t] = bytes;
            if si > 0 {
                wan_bytes += bytes;
                if t == 0 {
                    remote_bytes_now += bytes;
                }
            }
        }
    }
    let beyond_units = g.flow_on(beyond_arc);
    let far_units = group_units[h];
    let deferred_units = beyond_units.min(far_units);
    let infeasible_units = beyond_units - deferred_units;

    MultiMatchStats {
        bytes_now_home: per_site_slot_bytes.first().copied().unwrap_or(0),
        remote_bytes_now,
        wan_bytes,
        deferred_bytes: deferred_units as u64 * UNIT_BYTES,
        infeasible_bytes: infeasible_units as u64 * UNIT_BYTES,
        green_bytes,
        brown_bytes,
        cost: result.cost,
        unaccounted_units: total_units - placed_units - beyond_units,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_storage::ClusterSpec;
    use gm_workload::JobId;

    fn model() -> PlanningModel {
        PlanningModel::from_spec(&ClusterSpec::small())
    }

    fn job(id: u64, gib: u64, deadline_slot: usize) -> JobView {
        JobView { id: JobId(id), remaining_bytes: gib << 30, deadline_slot, critical: false }
    }

    /// Green forecast with surplus only in the given offsets.
    fn forecast(h: usize, green_offsets: &[usize], wh: f64) -> Vec<f64> {
        let mut v = vec![0.0; h];
        for &o in green_offsets {
            v[o] = wh;
        }
        v
    }

    fn input<'a>(jobs: &'a [JobView], green: &'a [f64], busy: &'a [f64]) -> MatchInput<'a> {
        MatchInput {
            jobs,
            current_slot: 0,
            horizon: green.len(),
            green_forecast_wh: green,
            interactive_busy_secs: busy,
            model: model(),
            slot_secs: 3600.0,
            brown_cost_per_slot: None,
        }
    }

    #[test]
    fn work_flows_to_green_slots() {
        // Surplus at offset 3 only; job deadline at offset 6.
        let jobs = vec![job(1, 64, 6)];
        let green = forecast(8, &[3], 5_000.0);
        let busy = vec![0.0; 8];
        let plan = solve(&input(&jobs, &green, &busy));
        assert_eq!(plan.bytes_now(), 0, "nothing runs in the brown present");
        assert!(plan.per_slot_bytes[3] >= 64 << 30, "work lands in the green slot");
        assert_eq!(plan.brown_bytes, 0);
        assert!(plan.green_bytes >= 64 << 30);
        assert_eq!(plan.infeasible_bytes, 0);
    }

    #[test]
    fn deadline_forces_brown_when_no_green_in_window() {
        let jobs = vec![job(1, 64, 2)];
        let green = forecast(8, &[], 0.0);
        let busy = vec![0.0; 8];
        let plan = solve(&input(&jobs, &green, &busy));
        let placed: u64 = plan.per_slot_bytes[..3].iter().sum();
        assert!(placed >= 64 << 30, "deadline work placed despite brown cost");
        assert!(plan.brown_bytes >= 64 << 30);
        assert_eq!(plan.deferred_bytes, 0);
    }

    #[test]
    fn far_deadlines_defer_past_window() {
        let jobs = vec![job(1, 64, 1_000)];
        let green = forecast(8, &[], 0.0);
        let busy = vec![0.0; 8];
        let plan = solve(&input(&jobs, &green, &busy));
        assert_eq!(plan.bytes_now(), 0);
        assert!(plan.deferred_bytes >= 64 << 30, "no green, far deadline ⇒ wait");
        assert_eq!(plan.infeasible_bytes, 0);
    }

    #[test]
    fn far_work_still_takes_free_green() {
        let jobs = vec![job(1, 64, 1_000)];
        let green = forecast(8, &[2], 5_000.0);
        let busy = vec![0.0; 8];
        let plan = solve(&input(&jobs, &green, &busy));
        assert!(plan.per_slot_bytes[2] > 0, "green capacity is cheaper than deferring");
    }

    #[test]
    fn earlier_green_preferred_on_ties() {
        let jobs = vec![job(1, 16, 1_000)];
        let green = forecast(8, &[2, 5], 5_000.0);
        let busy = vec![0.0; 8];
        let plan = solve(&input(&jobs, &green, &busy));
        assert!(plan.per_slot_bytes[2] >= plan.per_slot_bytes[5]);
        assert!(plan.per_slot_bytes[2] >= 16 << 30);
    }

    #[test]
    fn overload_reports_infeasible_bytes() {
        // One-slot window; more deadline work than one slot's capacity.
        let capacity = model().batch_capacity_bytes(3, 0.0, 3600.0);
        let too_much_gib = (capacity / (1 << 30)) * 3;
        let jobs = vec![job(1, too_much_gib, 0)];
        let green = forecast(1, &[], 0.0);
        let busy = vec![0.0; 1];
        let plan = solve(&input(&jobs, &green, &busy));
        assert!(plan.infeasible_bytes > 0, "overflow must be flagged");
        assert!(plan.per_slot_bytes[0] > 0, "window still packed full");
    }

    #[test]
    fn no_jobs_is_an_empty_plan() {
        let green = forecast(4, &[1], 1_000.0);
        let busy = vec![0.0; 4];
        let plan = solve(&input(&[], &green, &busy));
        assert_eq!(plan.bytes_now(), 0);
        assert_eq!(plan.green_bytes + plan.brown_bytes + plan.deferred_bytes, 0);
        assert_eq!(plan.cost, 0);
    }

    #[test]
    fn interactive_load_shrinks_green_capacity() {
        let jobs = vec![job(1, 512, 1_000)];
        // 400 Wh: barely above the 1-gear idle floor when idle, below the
        // 2-gear floor once interactive load forces a second gear.
        let green = forecast(4, &[1], 400.0);
        let idle_busy = vec![0.0; 4];
        let plan_idle = solve(&input(&jobs, &green, &idle_busy));
        // Same green, but heavy interactive load in slot 1.
        let loaded_busy = vec![0.0, 12_000.0, 0.0, 0.0];
        let plan_loaded = solve(&input(&jobs, &green, &loaded_busy));
        assert!(
            plan_loaded.per_slot_bytes[1] < plan_idle.per_slot_bytes[1],
            "interactive floor eats green surplus: {} vs {}",
            plan_loaded.per_slot_bytes[1],
            plan_idle.per_slot_bytes[1]
        );
    }

    #[test]
    fn brown_cost_override_steers_forced_work() {
        // No green; deadline at offset 2, so the work must land in offsets
        // 0..=2 on brown power. Uniform pricing procrastinates to offset 2;
        // an override making offset 0 far cheaper pulls it forward.
        let jobs = vec![job(1, 16, 2)];
        let green = forecast(4, &[], 0.0);
        let busy = vec![0.0; 4];
        let uniform = solve(&input(&jobs, &green, &busy));
        assert_eq!(uniform.bytes_now(), 0, "uniform pricing procrastinates");
        assert!(uniform.per_slot_bytes[2] >= 16 << 30);

        let costs = vec![100i64, 5_000, 5_000, 5_000];
        let mut inp = input(&jobs, &green, &busy);
        inp.brown_cost_per_slot = Some(&costs);
        let steered = solve(&inp);
        assert!(steered.bytes_now() >= 16 << 30, "cheap-now pricing runs now");
    }

    #[test]
    fn scratch_reuse_matches_fresh_solve() {
        // One scratch across rounds of different shape and horizon must
        // reproduce exactly what fresh per-round allocation produces.
        let mut scratch = MatcherScratch::default();
        let rounds: Vec<(Vec<JobView>, Vec<f64>)> = vec![
            (vec![job(1, 64, 6)], forecast(8, &[3], 5_000.0)),
            (vec![job(2, 64, 2), job(3, 16, 1_000)], forecast(4, &[], 0.0)),
            (vec![], forecast(6, &[1], 1_000.0)),
            (vec![job(4, 512, 1_000)], forecast(8, &[2, 5], 5_000.0)),
        ];
        for (jobs, green) in &rounds {
            let busy = vec![0.0; green.len()];
            let inp = input(jobs, green, &busy);
            let fresh = solve(&inp);
            let stats = solve_with(&inp, &mut scratch);
            assert_eq!(scratch.per_slot_bytes(), &fresh.per_slot_bytes[..]);
            assert_eq!(stats.bytes_now, fresh.bytes_now());
            assert_eq!(stats.deferred_bytes, fresh.deferred_bytes);
            assert_eq!(stats.infeasible_bytes, fresh.infeasible_bytes);
            assert_eq!(stats.green_bytes, fresh.green_bytes);
            assert_eq!(stats.brown_bytes, fresh.brown_bytes);
            assert_eq!(stats.cost, fresh.cost);
        }
    }

    fn site_views<'a>(
        forecasts: &'a [Vec<f64>],
        wan_cost_per_unit: i64,
    ) -> Vec<crate::policy::SiteView<'a>> {
        forecasts
            .iter()
            .enumerate()
            .map(|(i, f)| crate::policy::SiteView {
                site: i,
                green_forecast_wh: f,
                model: model(),
                wan_cost_per_unit: if i == 0 { 0 } else { wan_cost_per_unit },
                battery: crate::policy::BatteryView::default(),
            })
            .collect()
    }

    fn multi_input<'a>(
        jobs: &'a [JobView],
        sites: &'a [crate::policy::SiteView<'a>],
        busy: &'a [f64],
    ) -> MultiMatchInput<'a> {
        MultiMatchInput {
            jobs,
            current_slot: 0,
            horizon: busy.len(),
            sites,
            interactive_busy_secs: busy,
            slot_secs: 3600.0,
            brown_cost_per_slot: None,
        }
    }

    #[test]
    fn one_site_multi_solve_matches_single_solve() {
        // The multi-site network with one site is the single-site network;
        // the schedules must agree exactly.
        let mut single = MatcherScratch::default();
        let mut multi = MultiMatcherScratch::default();
        let rounds: Vec<(Vec<JobView>, Vec<f64>)> = vec![
            (vec![job(1, 64, 6)], forecast(8, &[3], 5_000.0)),
            (vec![job(2, 64, 2), job(3, 16, 1_000)], forecast(4, &[], 0.0)),
            (vec![job(4, 512, 1_000)], forecast(8, &[2, 5], 5_000.0)),
        ];
        for (jobs, green) in &rounds {
            let busy = vec![0.0; green.len()];
            let stats = solve_with(&input(jobs, green, &busy), &mut single);
            let forecasts = vec![green.clone()];
            let sites = site_views(&forecasts, 0);
            let mstats = solve_sites_with(&multi_input(jobs, &sites, &busy), &mut multi);
            assert_eq!(multi.per_site_slot_bytes(), single.per_slot_bytes());
            assert_eq!(mstats.bytes_now_home, stats.bytes_now);
            assert_eq!(mstats.remote_bytes_now, 0);
            assert_eq!(mstats.wan_bytes, 0);
            assert_eq!(mstats.deferred_bytes, stats.deferred_bytes);
            assert_eq!(mstats.infeasible_bytes, stats.infeasible_bytes);
            assert_eq!(mstats.green_bytes, stats.green_bytes);
            assert_eq!(mstats.brown_bytes, stats.brown_bytes);
            assert_eq!(mstats.cost, stats.cost);
        }
    }

    #[test]
    fn cheap_wan_ships_deadline_work_to_remote_green() {
        // No green at home, surplus on the remote site, deadline inside the
        // window: brown at home costs BROWN_COST per unit, remote green
        // costs the WAN fee. Cheap WAN ⇒ ship; ruinous WAN ⇒ stay home.
        let jobs = vec![job(1, 64, 2)];
        let busy = vec![0.0; 8];
        let forecasts = vec![forecast(8, &[], 0.0), forecast(8, &[1], 5_000.0)];

        let cheap = site_views(&forecasts, 200);
        let mut scratch = MultiMatcherScratch::default();
        let shipped = solve_sites_with(&multi_input(&jobs, &cheap, &busy), &mut scratch);
        assert!(shipped.wan_bytes >= 64 << 30, "cheap WAN ships to remote green");
        assert_eq!(shipped.brown_bytes, 0);
        assert!(scratch.site_slot_bytes(1, 1) >= 64 << 30);

        let ruinous = site_views(&forecasts, 1_000_000);
        let stayed = solve_sites_with(&multi_input(&jobs, &ruinous, &busy), &mut scratch);
        assert_eq!(stayed.wan_bytes, 0, "ruinous WAN keeps work on home brown");
        assert!(stayed.brown_bytes >= 64 << 30);
    }

    #[test]
    fn multi_site_plans_conserve_bytes_and_respect_capacity() {
        // Property test over pseudo-random rounds: every unit of work is
        // accounted for (placed, deferred, or flagged infeasible), and no
        // site-slot exceeds its physical capacity.
        let mut seed = 0x00C0_FFEE_u64;
        let mut rng = move || gm_sim::rng::splitmix64(&mut seed);
        let mut scratch = MultiMatcherScratch::default();
        for round in 0..40 {
            let h = 2 + (rng() % 10) as usize;
            let n_sites = 1 + (rng() % 3) as usize;
            let wan = [0, 200, 2_000, 500_000][(rng() % 4) as usize];
            let n_jobs = (rng() % 12) as usize;
            let jobs: Vec<JobView> = (0..n_jobs)
                .map(|i| {
                    let gib = rng() % 1_500;
                    let deadline = (rng() % (3 * h as u64)) as usize;
                    job(i as u64, gib, deadline)
                })
                .collect();
            let forecasts: Vec<Vec<f64>> =
                (0..n_sites).map(|_| (0..h).map(|_| (rng() % 8_000) as f64).collect()).collect();
            let busy: Vec<f64> = (0..h).map(|_| (rng() % 4_000) as f64).collect();
            let sites = site_views(&forecasts, wan);
            let inp = multi_input(&jobs, &sites, &busy);
            let stats = solve_sites_with(&inp, &mut scratch);

            let total: u64 =
                jobs.iter().map(|j| j.remaining_bytes.div_ceil(UNIT_BYTES) * UNIT_BYTES).sum();
            let placed: u64 = scratch.per_site_slot_bytes().iter().sum();
            assert_eq!(
                placed + stats.deferred_bytes + stats.infeasible_bytes,
                total,
                "round {round}: every unit placed, deferred, or infeasible"
            );
            assert_eq!(stats.green_bytes + stats.brown_bytes, placed, "round {round}");
            assert_eq!(stats.unaccounted_units, 0, "round {round}: flow conserved");
            for (si, site) in sites.iter().enumerate() {
                for (t, &slot_busy) in busy.iter().enumerate().take(h) {
                    let b = if si == 0 { slot_busy } else { 0.0 };
                    let cap = site.model.batch_capacity_bytes(site.model.gears, b, 3600.0);
                    assert!(
                        scratch.site_slot_bytes(si, t) <= cap,
                        "round {round}: site {si} slot {t} over capacity"
                    );
                }
            }
        }
    }

    #[test]
    fn non_batch_floor_includes_idle_and_marginal() {
        let jobs: Vec<JobView> = vec![];
        let green = vec![0.0; 2];
        let busy = vec![0.0, 7_200.0];
        let inp = input(&jobs, &green, &busy);
        let floor0 = non_batch_floor_wh(&inp, 0);
        let floor1 = non_batch_floor_wh(&inp, 1);
        // Offset 0: one idle gear = 284 Wh.
        assert!((floor0 - 284.0).abs() < 1e-6, "{floor0}");
        assert!(floor1 > floor0, "busy slot has a higher floor");
    }
}
