//! Baseline scheduling policies.
//!
//! Each baseline isolates one ingredient of the design space:
//!
//! * [`AllOn`] — no power management, no deferral: the energy-oblivious
//!   reference. With a battery configured, this *is* the "ESD-only"
//!   policy: all renewable matching is left to the storage device.
//! * [`PowerProportional`] — spatial matching only, driven purely by load
//!   (gears follow interactive demand + pending batch), renewable-blind.
//! * [`EdfPolicy`] — PowerProportional with strict earliest-deadline-first
//!   batch ordering; isolates the effect of ordering.
//! * [`GreedyGreen`] — temporal matching with a one-slot horizon: run
//!   deferrable work only when the *current* slot shows green surplus
//!   (plus deadline-forced work), the classic opportunistic policy.

use crate::policy::{edf_fill, Decision, SchedContext, Scheduler};

/// Everything on, all work ASAP.
pub struct AllOn;

impl Scheduler for AllOn {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let capacity = ctx.model.batch_capacity_bytes(
            ctx.model.gears,
            ctx.interactive_busy_secs.first().copied().unwrap_or(0.0),
            ctx.slot_secs(),
        );
        Decision {
            gears: ctx.model.gears,
            batch_bytes: edf_fill(ctx.jobs, capacity),
            reclaim_budget_bytes: u64::MAX,
            infeasible_bytes: 0,
            remote_batch_bytes: Vec::new(),
        }
    }

    fn label(&self) -> String {
        "all-on".into()
    }
}

/// Gears sized to the work, batch ASAP, renewable-blind.
pub struct PowerProportional;

impl PowerProportional {
    fn decide_inner(ctx: &SchedContext<'_>) -> Decision {
        let busy = ctx.interactive_busy_secs.first().copied().unwrap_or(0.0);
        let min_g = ctx.min_gears_now();
        // Raise gears until pending batch fits in this slot, or max out.
        let pending = ctx.pending_batch_bytes() + ctx.writelog_pending_bytes;
        let mut gears = min_g;
        while gears < ctx.model.gears
            && ctx.model.batch_capacity_bytes(gears, busy, ctx.slot_secs()) < pending
        {
            gears += 1;
        }
        let capacity = ctx.model.batch_capacity_bytes(gears, busy, ctx.slot_secs());
        Decision {
            gears,
            batch_bytes: edf_fill(ctx.jobs, capacity),
            reclaim_budget_bytes: u64::MAX,
            infeasible_bytes: 0,
            remote_batch_bytes: Vec::new(),
        }
    }
}

impl Scheduler for PowerProportional {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        Self::decide_inner(ctx)
    }

    fn label(&self) -> String {
        "power-prop".into()
    }
}

/// PowerProportional with explicit EDF ordering (identical gear logic; the
/// separation exists so ordering effects can be measured in isolation —
/// `edf_fill` already orders by deadline, so this is the *reference*
/// ordering implementation baselines are compared against).
pub struct EdfPolicy;

impl Scheduler for EdfPolicy {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        PowerProportional::decide_inner(ctx)
    }

    fn label(&self) -> String {
        "edf".into()
    }
}

/// One-slot-horizon opportunistic policy.
///
/// Green surplus this slot (beyond the minimum-gear idle floor and the
/// interactive marginal) funds batch work; deadline-critical jobs run
/// regardless. Gears rise only as far as the surplus pays for.
pub struct GreedyGreen;

impl Scheduler for GreedyGreen {
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision {
        let busy = ctx.interactive_busy_secs.first().copied().unwrap_or(0.0);
        let slot_secs = ctx.slot_secs();
        let hours = ctx.slot_hours();
        let green_wh = ctx.green_forecast_wh.first().copied().unwrap_or(0.0);
        let min_g = ctx.min_gears_now();

        // Deadline-forced work always runs (a contiguous column scan).
        let critical_bytes: u64 = ctx.jobs.critical_bytes();

        // Surplus after the mandatory floor.
        let floor_wh = ctx.model.idle_w(min_g) * hours + ctx.model.batch_energy_wh(critical_bytes);
        let mut surplus_wh = (green_wh - floor_wh).max(0.0);

        // Raise gears while the surplus pays the extra idle energy and
        // there is work to run.
        let pending = ctx.pending_batch_bytes();
        let mut gears = min_g;
        while gears < ctx.model.gears {
            let gear_cost = ctx.model.gear_idle_wh_per_hour * hours;
            let would_have = ctx.model.batch_capacity_bytes(gears, busy, slot_secs);
            if surplus_wh > gear_cost && pending > would_have {
                surplus_wh -= gear_cost;
                gears += 1;
            } else {
                break;
            }
        }

        // Green-funded bytes at the chosen gear level, plus critical work.
        let fundable = ctx.model.bytes_fundable_by(surplus_wh);
        let capacity = ctx.model.batch_capacity_bytes(gears, busy, slot_secs);
        let budget = fundable.saturating_add(critical_bytes).min(capacity);
        // Reclaim only piggybacks on green slots (it is deferrable too).
        let reclaim = if surplus_wh > 0.0 { u64::MAX } else { 0 };
        Decision {
            gears,
            batch_bytes: edf_fill(ctx.jobs, budget),
            reclaim_budget_bytes: reclaim,
            infeasible_bytes: 0,
            remote_batch_bytes: Vec::new(),
        }
    }

    fn label(&self) -> String {
        "greedy-green".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatteryView, JobColumns, JobView, PlanningModel};
    use gm_sim::time::SimTime;
    use gm_sim::SlotClock;
    use gm_storage::ClusterSpec;
    use gm_workload::JobId;

    /// Owned backing store for a borrowed [`SchedContext`].
    struct OwnedCtx {
        green: Vec<f64>,
        busy: Vec<f64>,
        jobs: JobColumns,
    }

    impl OwnedCtx {
        fn as_ctx(&self) -> SchedContext<'_> {
            SchedContext {
                slot: 12,
                now: SimTime::from_hours(12),
                clock: SlotClock::hourly(),
                green_forecast_wh: &self.green,
                interactive_busy_secs: &self.busy,
                jobs: &self.jobs,
                battery: BatteryView::default(),
                model: PlanningModel::from_spec(&ClusterSpec::small()),
                writelog_pending_bytes: 0,
                grid: gm_energy::grid::Grid::typical_eu(),
                sites: &[],
            }
        }
    }

    fn ctx(green_wh: f64, jobs: Vec<JobView>) -> OwnedCtx {
        OwnedCtx { green: vec![green_wh; 24], busy: vec![1_000.0; 24], jobs: jobs.into() }
    }

    fn job(id: u64, gib: u64, deadline: usize, critical: bool) -> JobView {
        JobView { id: JobId(id), remaining_bytes: gib << 30, deadline_slot: deadline, critical }
    }

    #[test]
    fn all_on_runs_everything_at_max_gears() {
        let c = ctx(0.0, vec![job(1, 10, 20, false), job(2, 5, 15, false)]);
        let d = AllOn.decide(&c.as_ctx());
        assert_eq!(d.gears, 3);
        assert_eq!(d.total_batch_bytes(), 15 << 30, "all pending fits easily");
        // EDF order: job 2 (deadline 15) first.
        assert_eq!(d.batch_bytes[0].0, JobId(2));
    }

    #[test]
    fn power_prop_uses_min_gears_when_light() {
        let c = ctx(0.0, vec![job(1, 1, 20, false)]);
        let d = PowerProportional.decide(&c.as_ctx());
        assert_eq!(d.gears, 1, "light load fits one gear");
        assert_eq!(d.total_batch_bytes(), 1 << 30);
    }

    #[test]
    fn power_prop_raises_gears_for_heavy_backlog() {
        // One gear slot capacity ≈ 1.6 TB; ask for 5 TB.
        let c = ctx(0.0, vec![job(1, 5 * 1024, 20, false)]);
        let d = PowerProportional.decide(&c.as_ctx());
        assert!(d.gears >= 2, "backlog forces gear-up, got {}", d.gears);
    }

    #[test]
    fn greedy_green_defers_without_surplus() {
        let c = ctx(0.0, vec![job(1, 10, 20, false)]);
        let d = GreedyGreen.decide(&c.as_ctx());
        assert_eq!(d.gears, 1);
        assert_eq!(d.total_batch_bytes(), 0, "no green, no deadline pressure ⇒ defer");
        assert_eq!(d.reclaim_budget_bytes, 0);
    }

    #[test]
    fn greedy_green_runs_critical_even_brown() {
        let c = ctx(0.0, vec![job(1, 2, 12, true)]);
        let d = GreedyGreen.decide(&c.as_ctx());
        assert_eq!(d.total_batch_bytes(), 2 << 30, "deadline overrides greenness");
    }

    #[test]
    fn greedy_green_spends_surplus() {
        // Plenty of green: idle floor at 1 gear ≈ 284 Wh; give 3 kWh, and
        // more pending work (4 TiB) than one gear's slot capacity.
        let c = ctx(3_000.0, vec![job(1, 4 * 1024, 20, false)]);
        let d = GreedyGreen.decide(&c.as_ctx());
        assert!(d.total_batch_bytes() > 0, "surplus funds deferred work");
        assert!(d.gears >= 2, "surplus also pays for gear-up, got {}", d.gears);
        assert_eq!(d.reclaim_budget_bytes, u64::MAX);
    }

    #[test]
    fn edf_matches_power_prop_gears() {
        let c = ctx(0.0, vec![job(1, 3, 20, false), job(2, 3, 5, false)]);
        let a = PowerProportional.decide(&c.as_ctx());
        let b = EdfPolicy.decide(&c.as_ctx());
        assert_eq!(a.gears, b.gears);
        assert_eq!(a.batch_bytes, b.batch_bytes);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AllOn.label(), "all-on");
        assert_eq!(PowerProportional.label(), "power-prop");
        assert_eq!(EdfPolicy.label(), "edf");
        assert_eq!(GreedyGreen.label(), "greedy-green");
    }
}
