//! End-to-end experiment harness.
//!
//! [`run_experiment`] is the one-shot convenience entry point: it builds a
//! [`crate::simulation::Simulation`] from the configuration and runs it to
//! the end of the horizon. The slot loop itself lives in
//! [`crate::simulation`]; see that module for the step structure
//! (decide → execute → settle) and for the observer hooks that expose
//! per-slot telemetry.
//!
//! The supply-settlement order (green first, battery second, grid last) is
//! common to every policy; policies differentiate themselves purely through
//! *when* work runs and *how many* gears are powered.

use crate::config::ExperimentConfig;
use crate::report::RunReport;
use crate::simulation::Simulation;

#[cfg(test)]
pub(crate) use crate::simulation::deadline_slot_for;

/// Run one experiment to completion.
///
/// Equivalent to `Simulation::builder(cfg).build()?.run_to_end()` — the
/// step-wise API produces a field-for-field identical report. Panics on
/// configuration errors (missing trace files, zero-slot horizons); build
/// through [`Simulation::builder`] directly to handle them instead.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunReport {
    Simulation::builder(cfg).build().unwrap_or_else(|e| panic!("{e}")).run_to_end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceKind;
    use crate::policy::PolicyKind;
    use gm_energy::solar::SolarProfile;
    use gm_sim::time::SimTime;
    use gm_sim::SlotClock;

    fn quick_cfg(policy: PolicyKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_demo(7);
        cfg.policy = policy;
        cfg.slots = 48; // two days is enough for unit checks
        cfg
    }

    #[test]
    fn deadline_slot_helper() {
        let c = SlotClock::hourly();
        // Deadline exactly at the end of slot 11.
        assert_eq!(deadline_slot_for(c, SimTime::from_hours(12)), 11);
        // Mid-slot deadline: last safe slot is the previous one.
        assert_eq!(
            deadline_slot_for(c, SimTime::from_hours(12) + gm_sim::SimDuration::from_mins(30)),
            11
        );
        // Deadline within the first slot.
        assert_eq!(deadline_slot_for(c, SimTime(5)), 0);
    }

    #[test]
    fn run_completes_and_balances() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert_eq!(r.slots, 48);
        assert!(r.load_kwh > 0.0);
        assert!(r.brown_kwh >= 0.0);
        // Supply identity at the report level.
        let served = r.green_direct_kwh + r.battery_out_kwh + r.brown_kwh;
        assert!((served - r.load_kwh).abs() < 1e-6, "served {served} vs load {}", r.load_kwh);
        assert!(r.green_utilization >= 0.0 && r.green_utilization <= 1.0);
        assert!(r.latency.count > 0, "interactive requests were served");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_experiment(&quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 }));
        let b = run_experiment(&quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 }));
        assert_eq!(a.brown_kwh, b.brown_kwh);
        assert_eq!(a.latency.count, b.latency.count);
        assert_eq!(a.gears_series, b.gears_series);
        assert_eq!(a.spinups, b.spinups);
    }

    #[test]
    fn all_on_never_changes_gears() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert!(r.gears_series.iter().all(|&g| g == 3));
        assert_eq!(r.spinups, 0, "nothing ever spun down");
    }

    #[test]
    fn power_prop_uses_fewer_gear_hours_than_all_on() {
        let all_on = run_experiment(&quick_cfg(PolicyKind::AllOn));
        let pp = run_experiment(&quick_cfg(PolicyKind::PowerProportional));
        let gh_all: usize = all_on.gears_series.iter().sum();
        let gh_pp: usize = pp.gears_series.iter().sum();
        assert!(gh_pp < gh_all, "power-prop parks gears: {gh_pp} vs {gh_all}");
        assert!(pp.load_kwh < all_on.load_kwh, "less idle burn");
    }

    #[test]
    fn greenmatch_consumes_less_brown_than_all_on_without_battery() {
        let mut cfg_a = quick_cfg(PolicyKind::AllOn);
        cfg_a.energy.battery = None;
        let mut cfg_g = quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 });
        cfg_g.energy.battery = None;
        let a = run_experiment(&cfg_a);
        let g = run_experiment(&cfg_g);
        assert!(
            g.brown_kwh < a.brown_kwh,
            "greenmatch {} should beat all-on {}",
            g.brown_kwh,
            a.brown_kwh
        );
    }

    #[test]
    fn battery_reduces_brown_for_all_on() {
        let mut with = quick_cfg(PolicyKind::AllOn);
        with.energy.source =
            SourceKind::Solar { area_m2: 120.0, profile: SolarProfile::SunnySummer };
        let mut without = with.clone();
        without.energy.battery = None;
        let r_with = run_experiment(&with);
        let r_without = run_experiment(&without);
        assert!(
            r_with.brown_kwh < r_without.brown_kwh,
            "battery {} vs none {}",
            r_with.brown_kwh,
            r_without.brown_kwh
        );
        assert!(r_with.battery_out_kwh > 0.0);
    }

    #[test]
    fn batch_jobs_complete_under_every_policy() {
        for policy in [
            PolicyKind::AllOn,
            PolicyKind::PowerProportional,
            PolicyKind::GreedyGreen,
            PolicyKind::GreenMatch { delay_fraction: 1.0 },
        ] {
            let r = run_experiment(&quick_cfg(policy));
            assert!(r.batch.jobs_submitted > 0);
            let done_frac = r.batch.jobs_completed as f64 / r.batch.jobs_submitted as f64;
            assert!(
                done_frac > 0.7,
                "{}: only {:.0}% of jobs completed",
                r.policy,
                done_frac * 100.0
            );
            assert!(
                r.batch.miss_rate() < 0.30,
                "{}: miss rate {:.1}%",
                r.policy,
                r.batch.miss_rate() * 100.0
            );
        }
    }

    #[test]
    fn failure_injection_spawns_and_completes_repairs() {
        let mut cfg = quick_cfg(PolicyKind::PowerProportional);
        cfg.slots = 7 * 24;
        // Absurdly high AFR so a one-week run sees plenty of failures.
        cfg.failures = Some(gm_storage::FailureSpec {
            afr: 20.0,
            standby_factor: 0.5,
            spinup_wear_hours: 10.0,
        });
        let r = run_experiment(&cfg);
        assert!(r.failures > 0, "with AFR 2000%/yr a week must see failures");
        assert!(r.rebuild_bytes > 0);
        assert!(r.repairs_completed > 0, "repair jobs scheduled and finished");
        assert!(
            r.repairs_completed <= r.failures,
            "{} repairs vs {} failures",
            r.repairs_completed,
            r.failures
        );
        // Batch stats must not be polluted by repairs.
        assert_eq!(r.batch.jobs_submitted, {
            let mut clean = cfg.clone();
            clean.failures = None;
            run_experiment(&clean).batch.jobs_submitted
        });
    }

    #[test]
    fn discharge_strategies_shift_battery_use() {
        use crate::config::DischargeStrategy;
        let base = quick_cfg(PolicyKind::AllOn);
        let mut peak_only = base.clone();
        peak_only.energy.discharge = DischargeStrategy::PeakOnly;
        let mut reserve = base.clone();
        reserve.energy.discharge = DischargeStrategy::Reserve(0.5);

        let eager = run_experiment(&base);
        let po = run_experiment(&peak_only);
        let rv = run_experiment(&reserve);

        // Same physics: identical load, different attribution.
        assert!((eager.load_kwh - po.load_kwh).abs() < 1e-6);
        // Peak-only never discharges off-peak: check the series directly
        // (slots 23..7 have midpoints off-peak).
        for (s, &out) in po.battery_out_series_wh.iter().enumerate() {
            let hour = (s % 24) as f64 + 0.5;
            if !(7.0..23.0).contains(&hour) {
                assert_eq!(out, 0.0, "off-peak discharge at slot {s}");
            }
        }
        // Reserve strategy holds energy back: it should never deliver more
        // total energy than eager.
        assert!(rv.battery_out_kwh <= eager.battery_out_kwh + 1e-9);
        // Grid cost ordering: restricting discharge to peak hours cannot
        // make the energy *bill* better than eager here (eager already
        // discharges whenever there is deficit), but must beat doing it
        // blindly at night rates only — sanity: all costs are positive.
        assert!(po.cost_dollars > 0.0 && eager.cost_dollars > 0.0);
    }

    #[test]
    fn no_failures_without_injection() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert_eq!(r.failures, 0);
        assert_eq!(r.lost_objects, 0);
        assert_eq!(r.rebuild_bytes, 0);
        assert_eq!(r.repairs_completed, 0);
    }

    #[test]
    fn no_renewables_means_zero_green() {
        let mut cfg = quick_cfg(PolicyKind::AllOn);
        cfg.energy.source = SourceKind::None;
        cfg.energy.battery = None;
        let r = run_experiment(&cfg);
        assert_eq!(r.green_produced_kwh, 0.0);
        assert!((r.brown_kwh - r.load_kwh).abs() < 1e-9);
        assert_eq!(r.green_coverage, 0.0);
    }
}
