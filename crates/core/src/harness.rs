//! End-to-end experiment harness.
//!
//! [`run_experiment`] wires a configuration into the slot loop:
//!
//! ```text
//! each slot:
//!   battery self-discharge
//!   batch arrivals join the pending set
//!   build the SchedContext (green forecast, interactive forecast, jobs,
//!     battery state) — slot 0 of the forecast is the actual production,
//!     per the era's accurate-next-slot-prediction convention
//!   policy.decide() → gears, batch bytes, reclaim budget
//!   execute: gear the cluster, serve every interactive request, spread
//!     the chosen batch bytes across the active disks, replay the write log
//!   integrate energy; settle the supply chain:
//!     green → load directly, surplus → battery (rate/efficiency limited),
//!     remainder curtailed; deficit → battery, remainder from the grid
//!   record the slot in the ledger; update learning forecasters
//! ```
//!
//! The supply-settlement order (green first, battery second, grid last) is
//! common to every policy; policies differentiate themselves purely through
//! *when* work runs and *how many* gears are powered.

use crate::config::ExperimentConfig;
use crate::policy::{BatteryView, JobView, PlanningModel, SchedContext, TOTAL_RHO};
use crate::report::{BatchReport, LatencyReport, RunReport};
use crate::scheduler::DEFAULT_HORIZON;
use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::ledger::{EnergyLedger, SlotFlows};
use gm_sim::time::{SimTime, SlotIdx};
use gm_sim::{LogHistogram, RngFactory};
use gm_storage::Cluster;
use gm_workload::trace::Workload;
use gm_workload::{BatchJob, JobId};
use std::collections::HashMap;

/// Last slot whose *end* is at or before `deadline` — the latest slot in
/// which deadline work can safely be scheduled.
fn deadline_slot_for(clock: gm_sim::SlotClock, deadline: SimTime) -> SlotIdx {
    if deadline.0 < clock.width().0 {
        return 0;
    }
    let k = clock.slot_of(SimTime(deadline.0 - 1));
    if clock.slot_end(k) <= deadline {
        k
    } else {
        k.saturating_sub(1)
    }
}

/// Run one experiment to completion.
pub fn run_experiment(cfg: &ExperimentConfig) -> RunReport {
    let clock = cfg.clock;
    let slots = cfg.slots;
    let width = clock.width();
    let hours = clock.width_hours();
    let rngs = RngFactory::new(cfg.seed);

    let mut cluster = Cluster::new(cfg.cluster.clone());
    cluster.set_slot_width(width);
    let workload = Workload::generate(cfg.workload.clone(), cfg.seed);
    let model = PlanningModel::from_spec(&cfg.cluster);

    let green_trace = cfg.energy.source.materialize(clock, slots, &rngs);
    let mut forecaster = cfg.energy.forecast.build(&green_trace, clock, &rngs);
    let battery_spec = cfg.energy.battery.unwrap_or_else(|| BatterySpec::lithium_ion(0.0));
    let mut battery = Battery::new(battery_spec);
    let mut ledger = EnergyLedger::new(clock, cfg.energy.grid);
    let mut policy = cfg.policy.build();

    let mut hist = LogHistogram::for_latency_secs();
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut job_index: HashMap<JobId, usize> = HashMap::new();
    let mut batch_report = BatchReport::default();
    let mut gears_series = Vec::with_capacity(slots);

    // Pre-derive per-request service constants for the interactive
    // busy-time forecast.
    let positioning_s =
        cfg.cluster.disk.avg_seek.as_secs_f64() + cfg.cluster.disk.avg_rotation.as_secs_f64();
    let secs_per_byte = 1.0 / cfg.cluster.disk.transfer_bps;
    let total_batch_bw = model.gears as f64 * model.disks_per_gear as f64 * model.disk_bw_bps;

    // Round-robin cursor so batch work spreads evenly across slots too.
    let mut rr_cursor = 0usize;

    // Failure-injection state: per-disk spin-up counts at the last slot
    // boundary (cycling wear input) and the repair-job → disk map.
    let failure_dice = gm_storage::FailureDice::new(cfg.seed);
    let n_disks = cfg.cluster.topology.n_disks();
    let mut prev_spinups = vec![0u64; n_disks];
    let mut repair_jobs: HashMap<JobId, usize> = HashMap::new();
    let mut next_repair_id = 1u64 << 40; // well above workload job ids
    let mut repairs_completed = 0u64;

    for s in 0..slots {
        let now = clock.slot_start(s);
        let slot_end = clock.slot_end(s);

        battery.apply_self_discharge(width);

        // Failure injection: draw per disk, spawn repair jobs.
        if let Some(fail_spec) = cfg.failures {
            for (d, prev) in prev_spinups.iter_mut().enumerate() {
                let spinups = cluster.disk_spinups(d);
                let cycles = spinups - *prev;
                *prev = spinups;
                let p = fail_spec.failure_probability(
                    hours,
                    cluster.disk_in_standby(d),
                    cycles,
                );
                if failure_dice.draw(d, s) < p {
                    let report = cluster.fail_disk(d, now);
                    if report.rebuild_bytes > 0 {
                        let id = JobId(next_repair_id);
                        next_repair_id += 1;
                        repair_jobs.insert(id, d);
                        job_index.insert(id, jobs.len());
                        jobs.push(BatchJob::new(
                            id,
                            gm_workload::BatchKind::Repair,
                            now,
                            now + gm_sim::SimDuration::from_hours(24),
                            report.rebuild_bytes,
                        ));
                    }
                }
            }
        }

        // Batch arrivals.
        for job in workload.batch_arrivals_in_slot(clock, s) {
            batch_report.jobs_submitted += 1;
            batch_report.bytes_submitted += job.total_bytes;
            job_index.insert(job.id, jobs.len());
            jobs.push(job);
        }

        // Forecasts: the policy sees the forecaster's view of the whole
        // window, *including* the current slot. With the Oracle forecaster
        // this reproduces the era's accurate-next-slot-prediction
        // convention exactly; with imperfect forecasters the policy may now
        // misjudge even the present — which is what forecast-sensitivity
        // experiments measure. Energy settlement always uses the truth.
        let green_forecast_wh: Vec<f64> =
            forecaster.predict(s, DEFAULT_HORIZON).into_iter().map(|w| w * hours).collect();
        let interactive_busy_secs: Vec<f64> = (0..DEFAULT_HORIZON)
            .map(|k| {
                workload.interactive().expected_busy_secs_in_slot(
                    clock,
                    s + k,
                    positioning_s,
                    secs_per_byte,
                )
            })
            .collect();

        // Job views.
        let pending_count = jobs.iter().filter(|j| j.is_pending()).count();
        let share_bps = total_batch_bw * TOTAL_RHO / pending_count.max(1) as f64;
        let job_views: Vec<JobView> = jobs
            .iter()
            .filter(|j| j.is_pending())
            .map(|j| JobView {
                id: j.id,
                remaining_bytes: j.remaining_bytes,
                deadline_slot: deadline_slot_for(clock, j.deadline),
                critical: j.is_critical(now, share_bps),
            })
            .collect();

        let ctx = SchedContext {
            slot: s,
            now,
            clock,
            green_forecast_wh,
            interactive_busy_secs,
            jobs: job_views,
            battery: BatteryView {
                stored_wh: battery.stored_wh(),
                headroom_wh: battery.headroom_wh(),
                efficiency: battery.spec().efficiency,
                charge_capacity_wh: battery.charge_capacity_wh(width),
                discharge_capacity_wh: battery.discharge_capacity_wh(width),
            },
            model,
            writelog_pending_bytes: cluster.write_log().pending_total(),
            grid: cfg.energy.grid,
        };

        let decision = policy.decide(&ctx);
        let gears = decision.gears.clamp(1, model.gears);
        cluster.set_active_gears(gears, now);
        gears_series.push(gears);

        // Interactive service.
        for req in workload.requests_in_slot(clock, s) {
            let served = cluster.serve_request(&req);
            hist.record(served.latency.as_secs_f64());
        }

        // Batch execution: spread each job's bytes across the active disks.
        let active_disks: Vec<usize> =
            (0..gears).flat_map(|g| cluster.topology().disks_in_gear(g)).collect();
        for (job_id, bytes) in &decision.batch_bytes {
            let Some(&idx) = job_index.get(job_id) else { continue };
            let job = &mut jobs[idx];
            let bytes = (*bytes).min(job.remaining_bytes);
            if bytes == 0 {
                continue;
            }
            // Repair jobs write onto their specific replacement disk.
            if let Some(&disk) = repair_jobs.get(job_id) {
                let served = cluster.rebuild_step(disk, bytes, now);
                job.perform(bytes, served.completion);
                continue;
            }
            // Spread over up to 32 disks per job per slot (keeps chunks
            // sequential and large).
            let spread = active_disks.len().clamp(1, 32);
            let per = (bytes / spread as u64).max(1);
            let mut assigned = 0u64;
            let mut last_completion = now;
            for k in 0..spread {
                if assigned >= bytes {
                    break;
                }
                let chunk = per.min(bytes - assigned);
                let disk = active_disks[(rr_cursor + k) % active_disks.len()];
                let served = cluster.add_sequential_work(disk, chunk, now);
                last_completion = last_completion.max(served.completion);
                assigned += chunk;
            }
            rr_cursor = (rr_cursor + spread) % active_disks.len().max(1);
            job.perform(assigned, last_completion);
        }

        // Write-log reclaim.
        if decision.reclaim_budget_bytes > 0 {
            cluster.reclaim(decision.reclaim_budget_bytes, now);
        }

        // Energy integration and supply settlement.
        let slot_energy = cluster.end_slot(slot_end, width);
        let load_wh = slot_energy.total_wh();
        let green_wh = green_trace.get(s) * hours;
        let green_direct = green_wh.min(load_wh);
        let surplus = green_wh - green_direct;
        let charge = battery.charge(surplus, width);
        let curtailed = surplus - charge.drawn_wh;
        let deficit = load_wh - green_direct;
        // Discharge timing per the configured strategy.
        let mid = now + width / 2;
        let hour = mid.hour_of_day();
        let allowed = match cfg.energy.discharge {
            crate::config::DischargeStrategy::Eager => deficit,
            crate::config::DischargeStrategy::PeakOnly => {
                if (7.0..23.0).contains(&hour) {
                    deficit
                } else {
                    0.0
                }
            }
            crate::config::DischargeStrategy::Reserve(frac) => {
                if (17.0..23.0).contains(&hour) {
                    deficit // the peak may spend the reserve
                } else {
                    let reserve = battery.spec().usable_wh() * frac.clamp(0.0, 1.0);
                    deficit.min((battery.stored_wh() - reserve).max(0.0))
                }
            }
        };
        let battery_out = battery.discharge(allowed, width);
        let brown = deficit - battery_out;

        ledger.record_slot(
            s,
            SlotFlows {
                green_produced_wh: green_wh,
                green_direct_wh: green_direct,
                battery_drawn_wh: charge.drawn_wh,
                battery_out_wh: battery_out,
                brown_wh: brown,
                curtailed_wh: curtailed,
                load_wh,
            },
        );
        ledger.add_spinup_overhead(slot_energy.spinup_overhead_wh);
        ledger.add_reclaim_overhead(slot_energy.reclaim_overhead_wh);

        forecaster.observe_actual(s, green_trace.get(s));

        // Retire completed jobs (each counted exactly once: completed jobs
        // leave the index below). Repair completions restore redundancy
        // instead of entering the batch statistics.
        for j in jobs.iter() {
            if let Some(met) = j.met_deadline() {
                if job_index.contains_key(&j.id) {
                    if let Some(&disk) = repair_jobs.get(&j.id) {
                        cluster.mark_rebuilt(disk);
                        repairs_completed += 1;
                    } else {
                        batch_report.jobs_completed += 1;
                        batch_report.bytes_completed += j.total_bytes;
                        if !met {
                            batch_report.deadline_misses += 1;
                        }
                    }
                }
            }
        }
        job_index.retain(|_, &mut idx| jobs[idx].is_pending());
    }

    // Unfinished work at the end of the horizon (repair jobs are tracked
    // separately and excluded from batch statistics).
    let horizon_end = clock.slot_end(slots - 1);
    for j in jobs.iter().filter(|j| j.is_pending() && !repair_jobs.contains_key(&j.id)) {
        batch_report.bytes_completed += j.total_bytes - j.remaining_bytes;
        if j.deadline <= horizon_end {
            batch_report.unfinished_late += 1;
        }
    }

    ledger.set_battery_losses(battery.efficiency_loss_wh(), battery.self_discharge_loss_wh());

    let battery_label = if battery_spec.capacity_wh > 0.0 {
        format!("LI-like:{:.1}kWh(σ={})", battery_spec.capacity_wh / 1000.0, battery_spec.efficiency)
    } else {
        "none".to_string()
    };

    let totals = ledger.totals();
    RunReport {
        policy: policy.label(),
        source: cfg.energy.source.label(),
        battery: battery_label,
        seed: cfg.seed,
        slots,
        load_kwh: totals.load_wh / 1000.0,
        brown_kwh: ledger.brown_kwh(),
        green_produced_kwh: totals.green_produced_wh / 1000.0,
        green_direct_kwh: totals.green_direct_wh / 1000.0,
        battery_out_kwh: totals.battery_out_wh / 1000.0,
        curtailed_kwh: totals.curtailed_wh / 1000.0,
        battery_eff_loss_kwh: ledger.battery_efficiency_loss_wh() / 1000.0,
        battery_selfdisch_kwh: ledger.battery_self_discharge_wh() / 1000.0,
        spinup_overhead_kwh: ledger.spinup_overhead_wh() / 1000.0,
        reclaim_overhead_kwh: ledger.reclaim_overhead_wh() / 1000.0,
        green_utilization: ledger.green_utilization(),
        green_coverage: ledger.green_coverage(),
        carbon_kg: ledger.carbon_g() / 1000.0,
        cost_dollars: ledger.cost_dollars(),
        battery_cycles: battery.equivalent_full_cycles(),
        battery_wear_dollars: battery.wear_cost_dollars(),
        latency: LatencyReport::from_histogram(&hist),
        batch: batch_report,
        spinups: cluster.total_spinups(),
        forced_spinups: cluster.total_forced_spinups(),
        writelog_peak_bytes: cluster.write_log().peak_pending(),
        failures: cluster.total_failures(),
        lost_objects: cluster.total_lost_objects(),
        degraded_reads: cluster.degraded_reads(),
        rebuild_bytes: cluster.total_rebuild_bytes(),
        repairs_completed,
        cache_hit_ratio: cluster.cache().hit_ratio(),
        gears_series,
        load_series_wh: ledger.load_series().values().to_vec(),
        green_series_wh: ledger.green_series().values().to_vec(),
        brown_series_wh: ledger.brown_series().values().to_vec(),
        battery_out_series_wh: ledger.battery_out_series().values().to_vec(),
        curtailed_series_wh: ledger.curtailed_series().values().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SourceKind;
    use crate::policy::PolicyKind;
    use gm_energy::solar::SolarProfile;
    use gm_sim::SlotClock;

    fn quick_cfg(policy: PolicyKind) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::small_demo(7);
        cfg.policy = policy;
        cfg.slots = 48; // two days is enough for unit checks
        cfg
    }

    #[test]
    fn deadline_slot_helper() {
        let c = SlotClock::hourly();
        // Deadline exactly at the end of slot 11.
        assert_eq!(deadline_slot_for(c, SimTime::from_hours(12)), 11);
        // Mid-slot deadline: last safe slot is the previous one.
        assert_eq!(
            deadline_slot_for(c, SimTime::from_hours(12) + gm_sim::SimDuration::from_mins(30)),
            11
        );
        // Deadline within the first slot.
        assert_eq!(deadline_slot_for(c, SimTime(5)), 0);
    }

    #[test]
    fn run_completes_and_balances() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert_eq!(r.slots, 48);
        assert!(r.load_kwh > 0.0);
        assert!(r.brown_kwh >= 0.0);
        // Supply identity at the report level.
        let served = r.green_direct_kwh + r.battery_out_kwh + r.brown_kwh;
        assert!((served - r.load_kwh).abs() < 1e-6, "served {served} vs load {}", r.load_kwh);
        assert!(r.green_utilization >= 0.0 && r.green_utilization <= 1.0);
        assert!(r.latency.count > 0, "interactive requests were served");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_experiment(&quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 }));
        let b = run_experiment(&quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 }));
        assert_eq!(a.brown_kwh, b.brown_kwh);
        assert_eq!(a.latency.count, b.latency.count);
        assert_eq!(a.gears_series, b.gears_series);
        assert_eq!(a.spinups, b.spinups);
    }

    #[test]
    fn all_on_never_changes_gears() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert!(r.gears_series.iter().all(|&g| g == 3));
        assert_eq!(r.spinups, 0, "nothing ever spun down");
    }

    #[test]
    fn power_prop_uses_fewer_gear_hours_than_all_on() {
        let all_on = run_experiment(&quick_cfg(PolicyKind::AllOn));
        let pp = run_experiment(&quick_cfg(PolicyKind::PowerProportional));
        let gh_all: usize = all_on.gears_series.iter().sum();
        let gh_pp: usize = pp.gears_series.iter().sum();
        assert!(gh_pp < gh_all, "power-prop parks gears: {gh_pp} vs {gh_all}");
        assert!(pp.load_kwh < all_on.load_kwh, "less idle burn");
    }

    #[test]
    fn greenmatch_consumes_less_brown_than_all_on_without_battery() {
        let mut cfg_a = quick_cfg(PolicyKind::AllOn);
        cfg_a.energy.battery = None;
        let mut cfg_g = quick_cfg(PolicyKind::GreenMatch { delay_fraction: 1.0 });
        cfg_g.energy.battery = None;
        let a = run_experiment(&cfg_a);
        let g = run_experiment(&cfg_g);
        assert!(
            g.brown_kwh < a.brown_kwh,
            "greenmatch {} should beat all-on {}",
            g.brown_kwh,
            a.brown_kwh
        );
    }

    #[test]
    fn battery_reduces_brown_for_all_on() {
        let mut with = quick_cfg(PolicyKind::AllOn);
        with.energy.source = SourceKind::Solar { area_m2: 120.0, profile: SolarProfile::SunnySummer };
        let mut without = with.clone();
        without.energy.battery = None;
        let r_with = run_experiment(&with);
        let r_without = run_experiment(&without);
        assert!(
            r_with.brown_kwh < r_without.brown_kwh,
            "battery {} vs none {}",
            r_with.brown_kwh,
            r_without.brown_kwh
        );
        assert!(r_with.battery_out_kwh > 0.0);
    }

    #[test]
    fn batch_jobs_complete_under_every_policy() {
        for policy in [
            PolicyKind::AllOn,
            PolicyKind::PowerProportional,
            PolicyKind::GreedyGreen,
            PolicyKind::GreenMatch { delay_fraction: 1.0 },
        ] {
            let r = run_experiment(&quick_cfg(policy));
            assert!(r.batch.jobs_submitted > 0);
            let done_frac = r.batch.jobs_completed as f64 / r.batch.jobs_submitted as f64;
            assert!(
                done_frac > 0.7,
                "{}: only {:.0}% of jobs completed",
                r.policy,
                done_frac * 100.0
            );
            assert!(
                r.batch.miss_rate() < 0.30,
                "{}: miss rate {:.1}%",
                r.policy,
                r.batch.miss_rate() * 100.0
            );
        }
    }

    #[test]
    fn failure_injection_spawns_and_completes_repairs() {
        let mut cfg = quick_cfg(PolicyKind::PowerProportional);
        cfg.slots = 7 * 24;
        // Absurdly high AFR so a one-week run sees plenty of failures.
        cfg.failures = Some(gm_storage::FailureSpec {
            afr: 20.0,
            standby_factor: 0.5,
            spinup_wear_hours: 10.0,
        });
        let r = run_experiment(&cfg);
        assert!(r.failures > 0, "with AFR 2000%/yr a week must see failures");
        assert!(r.rebuild_bytes > 0);
        assert!(r.repairs_completed > 0, "repair jobs scheduled and finished");
        assert!(
            r.repairs_completed <= r.failures,
            "{} repairs vs {} failures",
            r.repairs_completed,
            r.failures
        );
        // Batch stats must not be polluted by repairs.
        assert_eq!(r.batch.jobs_submitted, {
            let mut clean = cfg.clone();
            clean.failures = None;
            run_experiment(&clean).batch.jobs_submitted
        });
    }

    #[test]
    fn discharge_strategies_shift_battery_use() {
        use crate::config::DischargeStrategy;
        let base = quick_cfg(PolicyKind::AllOn);
        let mut peak_only = base.clone();
        peak_only.energy.discharge = DischargeStrategy::PeakOnly;
        let mut reserve = base.clone();
        reserve.energy.discharge = DischargeStrategy::Reserve(0.5);

        let eager = run_experiment(&base);
        let po = run_experiment(&peak_only);
        let rv = run_experiment(&reserve);

        // Same physics: identical load, different attribution.
        assert!((eager.load_kwh - po.load_kwh).abs() < 1e-6);
        // Peak-only never discharges off-peak: check the series directly
        // (slots 23..7 have midpoints off-peak).
        for (s, &out) in po.battery_out_series_wh.iter().enumerate() {
            let hour = (s % 24) as f64 + 0.5;
            if !(7.0..23.0).contains(&hour) {
                assert_eq!(out, 0.0, "off-peak discharge at slot {s}");
            }
        }
        // Reserve strategy holds energy back: it should never deliver more
        // total energy than eager.
        assert!(rv.battery_out_kwh <= eager.battery_out_kwh + 1e-9);
        // Grid cost ordering: restricting discharge to peak hours cannot
        // make the energy *bill* better than eager here (eager already
        // discharges whenever there is deficit), but must beat doing it
        // blindly at night rates only — sanity: all costs are positive.
        assert!(po.cost_dollars > 0.0 && eager.cost_dollars > 0.0);
    }

    #[test]
    fn no_failures_without_injection() {
        let r = run_experiment(&quick_cfg(PolicyKind::AllOn));
        assert_eq!(r.failures, 0);
        assert_eq!(r.lost_objects, 0);
        assert_eq!(r.rebuild_bytes, 0);
        assert_eq!(r.repairs_completed, 0);
    }

    #[test]
    fn no_renewables_means_zero_green() {
        let mut cfg = quick_cfg(PolicyKind::AllOn);
        cfg.energy.source = SourceKind::None;
        cfg.energy.battery = None;
        let r = run_experiment(&cfg);
        assert_eq!(r.green_produced_kwh, 0.0);
        assert!((r.brown_kwh - r.load_kwh).abs() < 1e-9);
        assert_eq!(r.green_coverage, 0.0);
    }
}
