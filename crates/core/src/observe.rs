//! Slot-level telemetry: the [`SlotObserver`] trait and the provided
//! observers.
//!
//! A [`crate::simulation::Simulation`] drives any number of observers;
//! after every slot each observer receives the finished
//! [`SlotOutcome`]. Observers are pure consumers — they cannot influence
//! the run, so a simulation produces an identical [`crate::RunReport`]
//! with or without them.
//!
//! Provided observers:
//!
//! * [`NullObserver`] — does nothing (the implicit default).
//! * [`JsonlTraceObserver`] — one compact JSON record per slot; output is
//!   byte-identical across same-seed runs.
//! * [`CsvSeriesObserver`] — the key per-slot series as CSV.
//! * [`PhaseTimer`] — wall-clock per simulation phase
//!   (forecast / classify / plan / gear / execute / settle), read out
//!   through a shared handle.

use crate::simulation::SlotOutcome;
use serde::Serialize;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One phase of a simulation step, for profiling observers. The variants
/// mirror the per-slot pipeline in [`crate::phases`] in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Battery relaxation and green-energy / interactive-load forecasting.
    Forecast,
    /// Failure injection, batch arrivals and job-view assembly.
    Classify,
    /// The admission gate over newly arrived deferrable jobs (a no-op
    /// instant when admission control is off).
    Admission,
    /// Context assembly and the policy decision (matching).
    Plan,
    /// Gear shifting.
    Gear,
    /// Interactive service, batch execution, reclaim.
    Execute,
    /// Energy integration, battery/grid settlement, ledger and job
    /// retirement.
    Settle,
}

/// Receives per-slot telemetry from a running simulation.
///
/// All methods have no-op defaults, so an observer implements only what it
/// needs. Observers must not assume they are the only one attached.
pub trait SlotObserver {
    /// Called once per completed slot with the full outcome.
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        let _ = outcome;
    }

    /// Whether this observer wants [`SlotObserver::on_phase`] callbacks.
    /// Phase timing costs two clock reads per phase, so the simulation
    /// only measures when some attached observer asks for it.
    fn wants_phases(&self) -> bool {
        false
    }

    /// Called after each phase of a slot with its wall-clock duration.
    fn on_phase(&mut self, slot: usize, phase: Phase, nanos: u64) {
        let _ = (slot, phase, nanos);
    }

    /// Called once when the simulation finishes (or is dropped into a
    /// report); flush buffers here.
    fn on_finish(&mut self) {}

    /// Called once, before any [`SlotObserver::on_slot`], when the
    /// simulation resumes from a snapshot: `slot` is the first slot this
    /// run will simulate (always > 0). Never called for slot-0 starts.
    ///
    /// Observers that emit a per-run preamble (e.g. a CSV header) should
    /// suppress it here — the run that wrote slots `0..slot` already
    /// emitted one, so a resumed run's output appends cleanly onto the
    /// original file.
    fn on_resume(&mut self, slot: usize) {
        let _ = slot;
    }
}

/// The do-nothing observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SlotObserver for NullObserver {}

/// Flat, stable-order record the JSONL observer emits — one line per slot.
///
/// Field order is the serialisation order; do not reorder without
/// regenerating golden trace files. Wall-clock phase timings are
/// deliberately excluded so traces stay byte-identical across runs.
#[derive(Debug, Clone, Serialize)]
struct TraceRecord {
    slot: usize,
    gears: usize,
    requested_batch_bytes: u64,
    executed_batch_bytes: u64,
    reclaim_budget_bytes: u64,
    green_produced_wh: f64,
    green_direct_wh: f64,
    battery_in_wh: f64,
    battery_out_wh: f64,
    grid_wh: f64,
    curtailed_wh: f64,
    load_wh: f64,
    battery_soc_wh: f64,
    battery_soc_frac: f64,
    jobs_submitted: usize,
    jobs_completed: usize,
    deadline_misses: usize,
    repairs_completed: u64,
    disk_failures: u64,
    pending_jobs: usize,
    writelog_pending_bytes: u64,
    latency_count: u64,
    latency_mean_s: f64,
    latency_p50_s: f64,
    latency_p99_s: f64,
    latency_max_s: f64,
}

impl TraceRecord {
    fn from_outcome(o: &SlotOutcome) -> TraceRecord {
        TraceRecord {
            slot: o.slot,
            gears: o.gears,
            requested_batch_bytes: o.requested_batch_bytes,
            executed_batch_bytes: o.executed_batch_bytes,
            reclaim_budget_bytes: o.decision.reclaim_budget_bytes,
            green_produced_wh: o.energy.green_produced_wh,
            green_direct_wh: o.energy.green_direct_wh,
            battery_in_wh: o.energy.battery_in_wh,
            battery_out_wh: o.energy.battery_out_wh,
            grid_wh: o.energy.grid_wh,
            curtailed_wh: o.energy.curtailed_wh,
            load_wh: o.energy.load_wh,
            battery_soc_wh: o.battery_soc_wh,
            battery_soc_frac: o.battery_soc_frac,
            jobs_submitted: o.events.jobs_submitted,
            jobs_completed: o.events.jobs_completed,
            deadline_misses: o.events.deadline_misses,
            repairs_completed: o.events.repairs_completed,
            disk_failures: o.events.disk_failures,
            pending_jobs: o.pending_jobs,
            writelog_pending_bytes: o.writelog_pending_bytes,
            latency_count: o.latency.count,
            latency_mean_s: o.latency.mean_s,
            latency_p50_s: o.latency.p50_s,
            latency_p99_s: o.latency.p99_s,
            latency_max_s: o.latency.max_s,
        }
    }
}

/// Writes one JSON record per slot to any writer (one line each).
///
/// Records contain only deterministic simulation state, so two same-seed
/// runs produce byte-identical files.
pub struct JsonlTraceObserver<W: Write> {
    out: BufWriter<W>,
}

impl JsonlTraceObserver<File> {
    /// Trace into a freshly created (truncated) file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceObserver::new(File::create(path)?))
    }

    /// Trace onto the end of an existing file (created if absent) — the
    /// resume path: records from a resumed run continue the original
    /// file's line sequence. JSONL has no preamble, so appending is
    /// trivially well-formed.
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlTraceObserver::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }
}

impl<W: Write> JsonlTraceObserver<W> {
    /// Trace into the given writer.
    pub fn new(writer: W) -> Self {
        JsonlTraceObserver { out: BufWriter::new(writer) }
    }
}

impl<W: Write> SlotObserver for JsonlTraceObserver<W> {
    fn on_slot(&mut self, outcome: &SlotOutcome) {
        let json = serde_json::to_string(&TraceRecord::from_outcome(outcome))
            .expect("trace record serialises");
        writeln!(self.out, "{json}").expect("write trace record");
    }

    fn on_finish(&mut self) {
        self.out.flush().expect("flush trace");
    }
}

/// Writes the key per-slot series as CSV (header + one row per slot).
///
/// The header is written lazily, just before the first row — not in the
/// constructor — so a resumed run (which receives
/// [`SlotObserver::on_resume`] first) can suppress it and append its rows
/// onto the file the original run started.
pub struct CsvSeriesObserver<W: Write> {
    out: BufWriter<W>,
    wrote_header: bool,
}

impl CsvSeriesObserver<File> {
    /// Write CSV into a freshly created (truncated) file.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSeriesObserver::new(File::create(path)?))
    }

    /// Write CSV onto the end of an existing file (created if absent) —
    /// the resume path; pairs with the header suppression in
    /// [`SlotObserver::on_resume`].
    pub fn append(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(CsvSeriesObserver::new(
            std::fs::OpenOptions::new().create(true).append(true).open(path)?,
        ))
    }
}

impl<W: Write> CsvSeriesObserver<W> {
    /// Write CSV into the given writer.
    pub fn new(writer: W) -> Self {
        CsvSeriesObserver { out: BufWriter::new(writer), wrote_header: false }
    }
}

impl<W: Write> SlotObserver for CsvSeriesObserver<W> {
    fn on_resume(&mut self, _slot: usize) {
        // The run that simulated slots 0.. already wrote the header.
        self.wrote_header = true;
    }

    fn on_slot(&mut self, o: &SlotOutcome) {
        if !self.wrote_header {
            writeln!(
                self.out,
                "slot,gears,executed_batch_bytes,green_produced_wh,green_direct_wh,\
                 battery_in_wh,battery_out_wh,grid_wh,curtailed_wh,load_wh,\
                 battery_soc_wh,latency_p99_s"
            )
            .expect("write csv header");
            self.wrote_header = true;
        }
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{},{},{},{},{}",
            o.slot,
            o.gears,
            o.executed_batch_bytes,
            o.energy.green_produced_wh,
            o.energy.green_direct_wh,
            o.energy.battery_in_wh,
            o.energy.battery_out_wh,
            o.energy.grid_wh,
            o.energy.curtailed_wh,
            o.energy.load_wh,
            o.battery_soc_wh,
            o.latency.p99_s,
        )
        .expect("write csv row");
    }

    fn on_finish(&mut self) {
        self.out.flush().expect("flush csv");
    }
}

/// Accumulated wall-clock per simulation phase.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseProfile {
    /// Slots timed.
    pub slots: u64,
    /// Total nanoseconds in the forecast phase.
    pub forecast_ns: u64,
    /// Total nanoseconds in the classify phase.
    pub classify_ns: u64,
    /// Total nanoseconds in the admission phase.
    pub admission_ns: u64,
    /// Total nanoseconds in the plan phase.
    pub plan_ns: u64,
    /// Total nanoseconds in the gear phase.
    pub gear_ns: u64,
    /// Total nanoseconds in the execute phase.
    pub execute_ns: u64,
    /// Total nanoseconds in the settle phase.
    pub settle_ns: u64,
}

impl PhaseProfile {
    /// Total measured time across phases (ns).
    pub fn total_ns(&self) -> u64 {
        self.forecast_ns
            + self.classify_ns
            + self.admission_ns
            + self.plan_ns
            + self.gear_ns
            + self.execute_ns
            + self.settle_ns
    }

    /// Human-readable one-line summary (mean per slot and share per phase).
    pub fn summary(&self) -> String {
        if self.slots == 0 {
            return "no slots timed".to_string();
        }
        let total = self.total_ns().max(1) as f64;
        let pct = |ns: u64| ns as f64 / total * 100.0;
        format!(
            "{} slots, {:.2} ms/slot (forecast {:.0}%, classify {:.0}%, admission {:.0}%, \
             plan {:.0}%, gear {:.0}%, execute {:.0}%, settle {:.0}%)",
            self.slots,
            total / self.slots as f64 / 1e6,
            pct(self.forecast_ns),
            pct(self.classify_ns),
            pct(self.admission_ns),
            pct(self.plan_ns),
            pct(self.gear_ns),
            pct(self.execute_ns),
            pct(self.settle_ns),
        )
    }
}

/// Profiling observer: accumulates per-phase wall-clock into a shared
/// [`PhaseProfile`] that stays readable after the simulation consumed the
/// observer.
pub struct PhaseTimer {
    profile: Arc<Mutex<PhaseProfile>>,
}

impl PhaseTimer {
    /// A new timer plus the handle its results are read through.
    pub fn new() -> (PhaseTimer, Arc<Mutex<PhaseProfile>>) {
        let profile = Arc::new(Mutex::new(PhaseProfile::default()));
        (PhaseTimer { profile: profile.clone() }, profile)
    }
}

impl SlotObserver for PhaseTimer {
    fn wants_phases(&self) -> bool {
        true
    }

    fn on_phase(&mut self, _slot: usize, phase: Phase, nanos: u64) {
        let mut p = self.profile.lock().unwrap();
        match phase {
            Phase::Forecast => {
                // One Forecast callback per slot leads the phase sequence.
                p.slots += 1;
                p.forecast_ns += nanos;
            }
            Phase::Classify => p.classify_ns += nanos,
            Phase::Admission => p.admission_ns += nanos,
            Phase::Plan => p.plan_ns += nanos,
            Phase::Gear => p.gear_ns += nanos,
            Phase::Execute => p.execute_ns += nanos,
            Phase::Settle => p.settle_ns += nanos,
        }
    }
}
