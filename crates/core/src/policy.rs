//! Scheduler interface and the shared planning model.
//!
//! Every policy sees the same [`SchedContext`] at each slot boundary —
//! forecasted green energy, pending batch work, expected interactive load,
//! battery state — and returns a [`Decision`]: how many gears to power,
//! which batch bytes to run, and how much write-log reclaim to allow. The
//! harness executes the decision; policies never touch the cluster
//! directly, which keeps them comparable and testable in isolation.
//!
//! [`PlanningModel`] holds the closed-form capacity/energy arithmetic every
//! policy shares (min gears for a load level, batch bandwidth at a gear
//! level, marginal energy per batch byte, idle energy per gear). It is
//! derived once from the cluster spec.

use gm_energy::grid::Grid;
use gm_sim::time::{SimTime, SlotIdx};
use gm_sim::SlotClock;
use gm_storage::ClusterSpec;
use gm_workload::JobId;
use serde::{Deserialize, Serialize};

/// Utilisation cap per disk for interactive service (headroom for bursts).
pub const INTERACTIVE_RHO: f64 = 0.5;
/// Total utilisation cap per disk (interactive + batch).
pub const TOTAL_RHO: f64 = 0.8;

/// Closed-form capacity/energy arithmetic derived from the cluster spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanningModel {
    /// Gear count.
    pub gears: usize,
    /// Disks per gear.
    pub disks_per_gear: usize,
    /// Servers per gear.
    pub servers_per_gear: usize,
    /// Sequential bandwidth per disk (bytes/s).
    pub disk_bw_bps: f64,
    /// Marginal energy of one byte of batch work (Wh/byte): disk
    /// active-idle delta plus the server dynamic share.
    pub batch_wh_per_byte: f64,
    /// Extra idle energy of powering one more gear for one hour (Wh).
    pub gear_idle_wh_per_hour: f64,
    /// Idle power (W) at each gear level `1..=gears` (index 0 = 1 gear).
    pub idle_w_at: [f64; 8],
}

impl PlanningModel {
    /// Derive from a cluster spec (supports up to 8 gears).
    pub fn from_spec(spec: &ClusterSpec) -> Self {
        let topo = spec.topology;
        assert!(topo.gears <= 8, "planning model supports up to 8 gears");
        let disks_per_gear = topo.servers_per_gear() * topo.bays;
        let disk_marginal = (spec.disk.active_w - spec.disk.idle_w) / spec.disk.transfer_bps;
        // Server dynamic power amortised over its disks' combined bandwidth.
        let server_marginal =
            (spec.server.peak_w - spec.server.idle_w) / (topo.bays as f64 * spec.disk.transfer_bps);
        let batch_wh_per_byte = (disk_marginal + server_marginal) / 3600.0;
        let on_w = spec.server.idle_w + topo.bays as f64 * spec.disk.idle_w;
        let off_w = spec.server.off_w + topo.bays as f64 * spec.disk.standby_w;
        let gear_idle_wh_per_hour = topo.servers_per_gear() as f64 * (on_w - off_w);
        let mut idle_w_at = [0.0; 8];
        for (g, slot) in idle_w_at.iter_mut().enumerate() {
            let active = (g + 1).min(topo.gears);
            let on = active * topo.servers_per_gear();
            let off = topo.servers - on;
            *slot = on as f64 * on_w + off as f64 * off_w;
        }
        PlanningModel {
            gears: topo.gears,
            disks_per_gear,
            servers_per_gear: topo.servers_per_gear(),
            disk_bw_bps: spec.disk.transfer_bps,
            batch_wh_per_byte,
            gear_idle_wh_per_hour,
            idle_w_at,
        }
    }

    /// Idle power (W) with `g` gears active.
    pub fn idle_w(&self, g: usize) -> f64 {
        self.idle_w_at[g.clamp(1, self.gears) - 1]
    }

    /// Smallest gear level whose disks can absorb `busy_secs` of
    /// interactive service within a slot of `slot_secs` at the interactive
    /// utilisation cap.
    pub fn min_gears_for_interactive(&self, busy_secs: f64, slot_secs: f64) -> usize {
        for g in 1..=self.gears {
            let capacity = (g * self.disks_per_gear) as f64 * slot_secs * INTERACTIVE_RHO;
            if busy_secs <= capacity {
                return g;
            }
        }
        self.gears
    }

    /// Batch bytes runnable in one slot at gear level `g`, after reserving
    /// `interactive_busy_secs` of disk time for interactive service.
    pub fn batch_capacity_bytes(
        &self,
        g: usize,
        interactive_busy_secs: f64,
        slot_secs: f64,
    ) -> u64 {
        let g = g.clamp(1, self.gears);
        let disk_secs = (g * self.disks_per_gear) as f64 * slot_secs * TOTAL_RHO;
        let free_secs = (disk_secs - interactive_busy_secs).max(0.0);
        (free_secs * self.disk_bw_bps) as u64
    }

    /// Marginal energy (Wh) of running `bytes` of batch work.
    pub fn batch_energy_wh(&self, bytes: u64) -> f64 {
        bytes as f64 * self.batch_wh_per_byte
    }

    /// Bytes of batch work fundable by `wh` of (surplus) energy.
    pub fn bytes_fundable_by(&self, wh: f64) -> u64 {
        if wh <= 0.0 {
            0
        } else {
            (wh / self.batch_wh_per_byte) as u64
        }
    }
}

/// Scheduler-visible view of one pending batch job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// Job id.
    pub id: JobId,
    /// Bytes still to run.
    pub remaining_bytes: u64,
    /// Deadline slot (the job must finish in or before this slot).
    pub deadline_slot: SlotIdx,
    /// Whether the job must run now to meet its deadline.
    pub critical: bool,
}

/// Columnar (struct-of-arrays) table of the pending batch jobs.
///
/// The classify phase historically assembled a `Vec<JobView>` per slot;
/// the policy layer now works over parallel columns instead, so bulk
/// scans — total pending bytes, critical bytes, deadline keys for EDF
/// ordering — run over contiguous memory. Index `i` across all columns is
/// the `i`-th pending job in submission order, exactly the order the
/// historic view vector used. [`JobColumns::view`] materialises a single
/// [`JobView`] for code that wants the row form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JobColumns {
    ids: Vec<JobId>,
    remaining_bytes: Vec<u64>,
    deadline_slots: Vec<SlotIdx>,
    critical: Vec<bool>,
}

impl JobColumns {
    /// An empty table.
    pub fn new() -> Self {
        JobColumns::default()
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Clear all columns (capacity retained).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.remaining_bytes.clear();
        self.deadline_slots.clear();
        self.critical.clear();
    }

    /// Append one job to the columns.
    pub fn push(&mut self, view: JobView) {
        self.ids.push(view.id);
        self.remaining_bytes.push(view.remaining_bytes);
        self.deadline_slots.push(view.deadline_slot);
        self.critical.push(view.critical);
    }

    /// Materialise job `i` as a row.
    ///
    /// # Panics
    /// If `i` is out of range.
    pub fn view(&self, i: usize) -> JobView {
        JobView {
            id: self.ids[i],
            remaining_bytes: self.remaining_bytes[i],
            deadline_slot: self.deadline_slots[i],
            critical: self.critical[i],
        }
    }

    /// Iterate the table as materialised [`JobView`] rows.
    pub fn iter(&self) -> impl Iterator<Item = JobView> + '_ {
        (0..self.len()).map(|i| self.view(i))
    }

    /// Job-id column.
    pub fn ids(&self) -> &[JobId] {
        &self.ids
    }

    /// Remaining-bytes column.
    pub fn remaining_bytes(&self) -> &[u64] {
        &self.remaining_bytes
    }

    /// Deadline-slot column.
    pub fn deadline_slots(&self) -> &[SlotIdx] {
        &self.deadline_slots
    }

    /// Criticality column.
    pub fn critical(&self) -> &[bool] {
        &self.critical
    }

    /// Total pending bytes — one contiguous column scan.
    pub fn total_remaining_bytes(&self) -> u64 {
        self.remaining_bytes.iter().sum()
    }

    /// Total bytes of deadline-critical jobs — a two-column scan.
    pub fn critical_bytes(&self) -> u64 {
        self.remaining_bytes.iter().zip(&self.critical).filter(|(_, c)| **c).map(|(b, _)| b).sum()
    }
}

impl FromIterator<JobView> for JobColumns {
    fn from_iter<I: IntoIterator<Item = JobView>>(iter: I) -> Self {
        let mut cols = JobColumns::new();
        for v in iter {
            cols.push(v);
        }
        cols
    }
}

impl From<Vec<JobView>> for JobColumns {
    fn from(views: Vec<JobView>) -> Self {
        views.into_iter().collect()
    }
}

/// Battery state as policies see it.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BatteryView {
    /// Usable energy stored (Wh).
    pub stored_wh: f64,
    /// Usable headroom (Wh).
    pub headroom_wh: f64,
    /// Charging efficiency σ.
    pub efficiency: f64,
    /// Max energy the battery can absorb this slot (source side, Wh).
    pub charge_capacity_wh: f64,
    /// Max energy the battery can deliver this slot (Wh).
    pub discharge_capacity_wh: f64,
}

/// One site as a policy sees it, for geo-federated placement.
///
/// `sites[0]` is always the home site (its forecast slice aliases
/// [`SchedContext::green_forecast_wh`]); interactive load exists only at
/// the home site, so remote sites plan batch work against their full
/// capacity.
#[derive(Debug, Clone, Copy)]
pub struct SiteView<'a> {
    /// Site index (0 = home).
    pub site: usize,
    /// Forecast green energy per slot at this site (Wh), index 0 = the
    /// slot being decided.
    pub green_forecast_wh: &'a [f64],
    /// The site's planning arithmetic.
    pub model: PlanningModel,
    /// Per-unit WAN cost of placing work here (0 for the home site), on
    /// the [`crate::matcher::BROWN_COST`] scale.
    pub wan_cost_per_unit: i64,
    /// The site's battery state.
    pub battery: BatteryView,
}

impl<'a> SiteView<'a> {
    /// The home-site view (site 0, zero WAN cost) — how a single-site
    /// context is presented to the unified multi-site matcher.
    #[must_use]
    pub fn home(green_forecast_wh: &'a [f64], model: PlanningModel, battery: BatteryView) -> Self {
        SiteView { site: 0, green_forecast_wh, model, wan_cost_per_unit: 0, battery }
    }
}

/// Everything a policy may consult when deciding a slot.
///
/// The bulk fields are borrowed slices: the simulation owns the backing
/// buffers (in its `SlotScratch`) and rebuilds a fresh context view each
/// slot without allocating.
#[derive(Debug, Clone)]
pub struct SchedContext<'a> {
    /// Slot being decided.
    pub slot: SlotIdx,
    /// Slot start instant.
    pub now: SimTime,
    /// Slot clock.
    pub clock: SlotClock,
    /// Forecast green energy per slot (Wh), index 0 = this slot. The
    /// current slot's entry follows the era convention of accurate
    /// next-slot prediction.
    pub green_forecast_wh: &'a [f64],
    /// Expected interactive disk busy-seconds per slot, same indexing.
    pub interactive_busy_secs: &'a [f64],
    /// Pending batch jobs, in submission order, as a columnar table.
    pub jobs: &'a JobColumns,
    /// Battery state.
    pub battery: BatteryView,
    /// Planning arithmetic.
    pub model: PlanningModel,
    /// Pending write-log bytes awaiting reclaim.
    pub writelog_pending_bytes: u64,
    /// Grid profile (carbon intensity / price), for carbon-aware policies.
    pub grid: Grid,
    /// Per-site views for geo-federated placement. Empty for single-site
    /// experiments (the flat fields above describe the only site); with
    /// multiple sites, index 0 is the home site and the flat fields mirror
    /// it. Policies that ignore this field simply never place work
    /// remotely.
    pub sites: &'a [SiteView<'a>],
}

impl SchedContext<'_> {
    /// Slot width in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.clock.width().as_secs_f64()
    }

    /// Slot width in hours.
    pub fn slot_hours(&self) -> f64 {
        self.clock.width().as_hours_f64()
    }

    /// Total pending batch bytes (a contiguous column scan).
    pub fn pending_batch_bytes(&self) -> u64 {
        self.jobs.total_remaining_bytes()
    }

    /// Minimum gears needed for this slot's interactive load.
    pub fn min_gears_now(&self) -> usize {
        self.model.min_gears_for_interactive(
            self.interactive_busy_secs.first().copied().unwrap_or(0.0),
            self.slot_secs(),
        )
    }
}

/// What a policy wants done this slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Gears to power for the slot (clamped to `[1, gears]` by the harness).
    pub gears: usize,
    /// Batch work to perform: `(job, bytes)` pairs. The harness truncates
    /// to each job's remaining bytes and to physical capacity.
    pub batch_bytes: Vec<(JobId, u64)>,
    /// Write-log reclaim budget for the slot (bytes per gear).
    pub reclaim_budget_bytes: u64,
    /// Planner diagnostic: bytes whose deadline pressure exceeded the
    /// planning window's capacity this slot. Always 0 for policies without
    /// a feasibility-checking planner.
    pub infeasible_bytes: u64,
    /// Batch work placed at non-home sites: `(site, job, bytes)` triples.
    /// Always empty for single-site runs and for policies that ignore
    /// [`SchedContext::sites`].
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub remote_batch_bytes: Vec<(usize, JobId, u64)>,
}

impl Decision {
    /// A do-nothing decision at the given gear level.
    pub fn idle(gears: usize) -> Self {
        Decision {
            gears,
            batch_bytes: Vec::new(),
            reclaim_budget_bytes: 0,
            infeasible_bytes: 0,
            remote_batch_bytes: Vec::new(),
        }
    }

    /// Total batch bytes requested at the home site.
    pub fn total_batch_bytes(&self) -> u64 {
        self.batch_bytes.iter().map(|(_, b)| b).sum()
    }

    /// Total batch bytes placed at non-home sites.
    pub fn total_remote_bytes(&self) -> u64 {
        self.remote_batch_bytes.iter().map(|(_, _, b)| b).sum()
    }
}

/// A scheduling policy.
pub trait Scheduler {
    /// Decide one slot.
    fn decide(&mut self, ctx: &SchedContext<'_>) -> Decision;

    /// Label for reports.
    fn label(&self) -> String;

    /// Unit-accounting residual of the most recent matcher solve (total
    /// units minus placed + deferred + infeasible). Policies without a
    /// matcher report 0; the conservation auditor asserts it stays 0.
    fn matcher_residual_units(&self) -> i64 {
        0
    }

    /// Enable or disable the matcher's warm-start fast path. A no-op for
    /// policies without a matcher; the simulation threads
    /// [`crate::config::ExperimentConfig::matcher_warm_start`] through here
    /// so equivalence tests can force the cold reference path.
    fn set_warm_start(&mut self, _on: bool) {}
}

/// Config-friendly identifier for the built-in policies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Everything on, batch ASAP (with a battery: the "ESD-only" reference).
    AllOn,
    /// Gears follow load; batch ASAP. Renewable-oblivious.
    PowerProportional,
    /// PowerProportional with strict EDF batch ordering.
    Edf,
    /// Greedy opportunistic: defer batch until green surplus (or deadline).
    GreedyGreen,
    /// The GreenMatch planner; `delay_fraction` of batch work is deferrable
    /// (1.0 = pure GreenMatch, 0.0 ≈ PowerProportional).
    GreenMatch {
        /// Fraction of each job's work that participates in matching.
        delay_fraction: f64,
    },
    /// GreenMatch with an explicit planning window (for the horizon
    /// ablation; `horizon = 1` degenerates to greedy one-slot matching).
    GreenMatchWindow {
        /// Fraction of each job's work that participates in matching.
        delay_fraction: f64,
        /// Planning window in slots.
        horizon: usize,
    },
    /// GreenMatch with carbon-intensity-weighted brown pricing: unavoidable
    /// grid draw is steered into the grid's cleanest hours.
    GreenMatchCarbon {
        /// Fraction of each job's work that participates in matching.
        delay_fraction: f64,
    },
}

impl PolicyKind {
    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn Scheduler + Send> {
        match self {
            PolicyKind::AllOn => Box::new(crate::baselines::AllOn),
            PolicyKind::PowerProportional => Box::new(crate::baselines::PowerProportional),
            PolicyKind::Edf => Box::new(crate::baselines::EdfPolicy),
            PolicyKind::GreedyGreen => Box::new(crate::baselines::GreedyGreen),
            PolicyKind::GreenMatch { delay_fraction } => {
                Box::new(crate::scheduler::GreenMatchPolicy::new(delay_fraction))
            }
            PolicyKind::GreenMatchWindow { delay_fraction, horizon } => Box::new(
                crate::scheduler::GreenMatchPolicy::new(delay_fraction).with_horizon(horizon),
            ),
            PolicyKind::GreenMatchCarbon { delay_fraction } => Box::new(
                crate::scheduler::GreenMatchPolicy::new(delay_fraction).with_carbon_awareness(),
            ),
        }
    }

    /// Label for reports.
    pub fn label(self) -> String {
        match self {
            PolicyKind::AllOn => "all-on".into(),
            PolicyKind::PowerProportional => "power-prop".into(),
            PolicyKind::Edf => "edf".into(),
            PolicyKind::GreedyGreen => "greedy-green".into(),
            PolicyKind::GreenMatch { delay_fraction } => {
                format!("greenmatch({:.0}%)", delay_fraction * 100.0)
            }
            PolicyKind::GreenMatchWindow { delay_fraction, horizon } => {
                format!("greenmatch({:.0}%,H={horizon})", delay_fraction * 100.0)
            }
            PolicyKind::GreenMatchCarbon { delay_fraction } => {
                format!("greenmatch-carbon({:.0}%)", delay_fraction * 100.0)
            }
        }
    }
}

/// Fill `capacity_bytes` with jobs in EDF order; shared by several policies.
///
/// Sorts an index over the deadline/id columns (the job rows themselves
/// never move), then drains remaining-bytes in that order.
pub fn edf_fill(jobs: &JobColumns, capacity_bytes: u64) -> Vec<(JobId, u64)> {
    let (ids, bytes, deadlines) = (jobs.ids(), jobs.remaining_bytes(), jobs.deadline_slots());
    let mut sorted: Vec<usize> = (0..jobs.len()).filter(|&i| bytes[i] > 0).collect();
    // Unstable sort is fine: (deadline, id) keys are unique per job.
    sorted.sort_unstable_by_key(|&i| (deadlines[i], ids[i]));
    let mut remaining = capacity_bytes;
    let mut out = Vec::new();
    for i in sorted {
        if remaining == 0 {
            break;
        }
        let take = bytes[i].min(remaining);
        out.push((ids[i], take));
        remaining -= take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_storage::ClusterSpec;

    fn model() -> PlanningModel {
        PlanningModel::from_spec(&ClusterSpec::small())
    }

    #[test]
    fn planning_model_derivation() {
        let m = model();
        assert_eq!(m.gears, 3);
        assert_eq!(m.disks_per_gear, 4);
        assert_eq!(m.servers_per_gear, 2);
        // idle at 3 gears: 6 servers × (110 + 2×8) = 756 W.
        assert!((m.idle_w(3) - 756.0).abs() < 1e-9);
        // idle at 1 gear: 2×126 + 4×8 = 284 W.
        assert!((m.idle_w(1) - 284.0).abs() < 1e-9);
        // Each extra gear: 2 × (126 − 8) = 236 Wh/h.
        assert!((m.gear_idle_wh_per_hour - 236.0).abs() < 1e-9);
        // Out-of-range gear levels clamp.
        assert_eq!(m.idle_w(0), m.idle_w(1));
        assert_eq!(m.idle_w(7), m.idle_w(3));
    }

    #[test]
    fn min_gears_scales_with_load() {
        let m = model();
        let slot = 3600.0;
        assert_eq!(m.min_gears_for_interactive(0.0, slot), 1);
        // 1 gear capacity = 4 disks × 3600 × 0.5 = 7200 busy-secs.
        assert_eq!(m.min_gears_for_interactive(7_000.0, slot), 1);
        assert_eq!(m.min_gears_for_interactive(7_300.0, slot), 2);
        assert_eq!(m.min_gears_for_interactive(1e9, slot), 3, "saturates at max");
    }

    #[test]
    fn batch_capacity_net_of_interactive() {
        let m = model();
        let slot = 3600.0;
        let full = m.batch_capacity_bytes(1, 0.0, slot);
        // 4 disks × 3600 s × 0.8 × 140 MB/s.
        assert_eq!(full, (4.0 * 3600.0 * 0.8 * 140.0e6) as u64);
        let loaded = m.batch_capacity_bytes(1, 10_000.0, slot);
        assert!(loaded < full);
        assert_eq!(m.batch_capacity_bytes(1, 1e12, slot), 0);
        assert!(m.batch_capacity_bytes(3, 0.0, slot) == 3 * full);
    }

    #[test]
    fn batch_energy_roundtrip() {
        let m = model();
        let bytes = 100 << 30;
        let wh = m.batch_energy_wh(bytes);
        assert!(wh > 0.0);
        let back = m.bytes_fundable_by(wh);
        assert!((back as i64 - bytes as i64).unsigned_abs() < 1024, "{back} vs {bytes}");
        assert_eq!(m.bytes_fundable_by(-1.0), 0);
        assert_eq!(m.bytes_fundable_by(0.0), 0);
    }

    #[test]
    fn edf_fill_orders_and_caps() {
        let jobs: JobColumns = vec![
            JobView { id: JobId(1), remaining_bytes: 100, deadline_slot: 9, critical: false },
            JobView { id: JobId(2), remaining_bytes: 100, deadline_slot: 3, critical: false },
            JobView { id: JobId(3), remaining_bytes: 100, deadline_slot: 6, critical: false },
        ]
        .into();
        let fill = edf_fill(&jobs, 150);
        assert_eq!(fill, vec![(JobId(2), 100), (JobId(3), 50)]);
        let all = edf_fill(&jobs, 10_000);
        assert_eq!(all.len(), 3);
        assert_eq!(edf_fill(&jobs, 0), vec![]);
    }

    #[test]
    fn job_columns_roundtrip_and_scans() {
        let views = vec![
            JobView { id: JobId(4), remaining_bytes: 10, deadline_slot: 2, critical: true },
            JobView { id: JobId(5), remaining_bytes: 0, deadline_slot: 7, critical: false },
            JobView { id: JobId(6), remaining_bytes: 30, deadline_slot: 1, critical: true },
        ];
        let mut cols: JobColumns = views.clone().into();
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.iter().collect::<Vec<_>>(), views, "columns mirror the rows in order");
        assert_eq!(cols.view(1), views[1]);
        assert_eq!(cols.total_remaining_bytes(), 40);
        assert_eq!(cols.critical_bytes(), 40, "job 5 is non-critical and empty");
        assert_eq!(cols.ids(), &[JobId(4), JobId(5), JobId(6)]);
        assert_eq!(cols.deadline_slots(), &[2, 7, 1]);
        assert_eq!(cols.critical(), &[true, false, true]);
        cols.clear();
        assert!(cols.is_empty());
        assert_eq!(JobColumns::new().total_remaining_bytes(), 0);
    }

    #[test]
    fn decision_helpers() {
        let d = Decision::idle(2);
        assert_eq!(d.total_batch_bytes(), 0);
        let d2 = Decision {
            gears: 3,
            batch_bytes: vec![(JobId(1), 10), (JobId(2), 20)],
            reclaim_budget_bytes: 0,
            infeasible_bytes: 0,
            remote_batch_bytes: vec![(1, JobId(3), 40)],
        };
        assert_eq!(d2.total_batch_bytes(), 30);
        assert_eq!(d2.total_remote_bytes(), 40);
    }

    #[test]
    fn policy_labels() {
        assert_eq!(PolicyKind::AllOn.label(), "all-on");
        assert_eq!(PolicyKind::GreenMatch { delay_fraction: 0.3 }.label(), "greenmatch(30%)");
    }
}
