//! # greenmatch — renewable-aware workload scheduling for massive storage
//!
//! The core library of the GreenMatch reproduction. It composes the
//! substrates (`gm-sim`, `gm-energy`, `gm-storage`, `gm-workload`) into an
//! end-to-end slot simulator and implements the scheduling policies under
//! study:
//!
//! * [`scheduler::GreenMatchPolicy`] — **the contribution**: each slot it
//!   (1) computes the minimum gear level that keeps interactive latency in
//!   budget, (2) solves a min-cost assignment (successive-shortest-path
//!   min-cost max-flow, [`mincostflow`]) of pending deferrable batch bytes
//!   to the slots of the forecast horizon, where green-funded capacity is
//!   free and brown-funded capacity costs, and (3) raises gears into green
//!   surplus windows to execute the matched work, falling back to EDF for
//!   deadline-critical jobs. A `delay_fraction` knob blends it toward
//!   run-ASAP, giving the hybrid family.
//! * [`baselines`] — energy-oblivious All-On, load-only PowerProportional,
//!   greedy opportunistic GreedyGreen, and EDF ordering; with a battery in
//!   the config, All-On is exactly the "ESD-only" reference policy.
//! * [`simulation`] — the slot loop as a resumable state machine:
//!   [`simulation::Simulation`] steps one slot at a time, each step
//!   yielding a [`simulation::SlotOutcome`] (decision, executed bytes,
//!   energy flows, battery state, job events, latency); [`observe`]
//!   provides the [`observe::SlotObserver`] hook plus ready-made JSONL /
//!   CSV trace writers and a per-phase profiler.
//! * [`harness`] — [`harness::run_experiment`], the one-shot wrapper that
//!   runs a simulation to the end and returns a [`report::RunReport`].
//! * [`audit`] — the conservation auditor: an always-compiled, opt-in
//!   invariant checker ([`audit::ConservationAuditor`] per slot, plus the
//!   deep [`simulation::Simulation::post_run_audit`]) that re-verifies the
//!   energy, byte, and job accounting identities at run time and reports
//!   breaks as structured [`audit::AuditViolation`]s.
//!
//! ```no_run
//! use greenmatch::config::ExperimentConfig;
//! use greenmatch::harness::run_experiment;
//! use greenmatch::policy::PolicyKind;
//!
//! let cfg = ExperimentConfig::small_demo(42)
//!     .with_policy(PolicyKind::GreenMatch { delay_fraction: 1.0 });
//! let report = run_experiment(&cfg);
//! println!("brown energy: {:.1} kWh", report.brown_kwh);
//! ```
//!
//! For per-slot visibility, drive the simulation yourself:
//!
//! ```no_run
//! use greenmatch::config::ExperimentConfig;
//! use greenmatch::simulation::Simulation;
//!
//! let cfg = ExperimentConfig::small_demo(42);
//! let mut sim = Simulation::builder(&cfg).build().expect("config materialises");
//! while let Some(slot) = sim.step() {
//!     println!("slot {}: {} gears, {:.1} Wh grid", slot.slot, slot.gears, slot.energy.grid_wh);
//! }
//! let report = sim.into_report();
//! # let _ = report;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod baselines;
pub mod config;
pub mod harness;
pub mod matcher;
pub mod mincostflow;
pub mod observe;
pub mod phases;
pub mod policy;
pub mod report;
pub mod scheduler;
pub mod simulation;
pub mod snapshot;
pub mod world;

pub use audit::{AuditReport, AuditViolation, ConservationAuditor};
pub use config::{ConfigError, EnergyConfig, ExperimentConfig, SiteConfig, SourceKind};
pub use harness::run_experiment;
pub use observe::{
    CsvSeriesObserver, JsonlTraceObserver, NullObserver, Phase, PhaseProfile, PhaseTimer,
    SlotObserver,
};
pub use phases::{SlotContext, SlotScratch};
pub use policy::{Decision, PolicyKind, SchedContext, Scheduler, SiteView};
pub use report::{RunReport, SiteReport};
pub use simulation::{EnergyFlows, Simulation, SiteSlotEnergy, SlotEvents, SlotOutcome};
pub use snapshot::{SiteSnapshot, Snapshot, SNAPSHOT_VERSION};
pub use world::{SiteWorld, World, WorldCache};
