//! Phase 5 — Execute: serve the slot's work.
//!
//! Serves the interactive requests (recording latency globally and into
//! the scratch's per-slot histogram), spreads each decided batch job's
//! bytes across the active disks (repair jobs write onto their specific
//! replacement disk), and runs the write-log reclaim budget. For
//! multi-site runs the decision's remote placements are then executed on
//! their sites' clusters with the same spreading rule. Returns the batch
//! bytes actually executed (all sites).
//!
//! ## Per-site parallelism
//!
//! With `cfg.site_parallel` (the default), a multi-site slot fans the
//! per-site disk mechanics across the worker pool in three passes:
//!
//! 1. **Shadow assignment (sequential)** — replays the byte arithmetic of
//!    the sequential path (remaining-bytes caps chained across sites in
//!    decision order, the round-robin cursor evolution, the floor-division
//!    spread shortfall) without touching any cluster, producing per-site
//!    work lists. All cross-site data dependencies live here.
//! 2. **Site service (parallel)** — one pool task per site owns its
//!    [`SiteState`] and replays its work list against its own cluster in
//!    the exact sequential-path order (home also serves the interactive
//!    batch first and reclaims last). Sites share nothing, so any
//!    interleaving of tasks yields the same per-site op sequences.
//! 3. **Job settlement (sequential)** — `job.perform` runs in original
//!    decision order with the completions the tasks reported.
//!
//! The sequential path is kept (`site_parallel = false`) as the reference
//! for A/B byte-identity tests; both produce identical traces at any
//! thread count.

use super::{SlotContext, SlotScratch};
use crate::policy::Decision;
use crate::simulation::{Simulation, SiteState};
use gm_sim::pool::Task;
use gm_sim::time::SimTime;
use gm_sim::{LogHistogram, WorkPool};
use gm_workload::{JobId, RequestBatch};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

pub(crate) fn run(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
    decision: &Decision,
    gears: usize,
) -> u64 {
    let now = ctx.now;
    let multi_site = sim.sites.len() > 1;
    scratch.site_executed_bytes.clear();

    // The slot's interactive requests, enumerated through the advancing
    // live-set cursor (O(live + newly started), independent of the stream
    // population size) and memoised as a columnar batch. Byte-identical to
    // the stateless `slot_batch` path.
    let batch = {
        let live = sim.live_cursor.advance_to(sim.workload.interactive(), ctx.clock, ctx.slot);
        sim.workload.slot_batch_with_live(ctx.clock, ctx.slot, live)
    };

    if multi_site && sim.cfg.site_parallel {
        return run_multi_site_parallel(sim, ctx, scratch, decision, gears, batch);
    }

    // Interactive service: record globally (for the final report) and per
    // slot (for the outcome), in the same order as always. Interactive
    // traffic exists only at the home site.
    let SiteState { cluster, rr_cursor, .. } = &mut sim.sites[0];
    scratch.slot_hist.clear();
    for i in 0..batch.len() {
        let served = cluster.serve_request(&batch.request(i));
        scratch.slot_hist.record(served.latency.as_secs_f64());
    }
    // The global histogram is bucket-merged from the slot histogram rather
    // than recorded per request: identical bucket counts and max (so the
    // trace and report quantiles are unchanged), one record per request
    // instead of two. Only the report's mean can drift in its last ulps
    // (per-slot partial sums reassociate the float addition).
    sim.hist.merge(&scratch.slot_hist);

    // Batch execution: spread each job's bytes across the active disks.
    let mut executed_batch_bytes = 0u64;
    scratch.active_disks.clear();
    for g in 0..gears {
        scratch.active_disks.extend(cluster.topology().disks_in_gear_range(g));
    }
    let active_disks = &scratch.active_disks;
    for (job_id, bytes) in &decision.batch_bytes {
        let Some(&idx) = sim.job_index.get(job_id) else { continue };
        let job = &mut sim.jobs[idx];
        let bytes = (*bytes).min(job.remaining_bytes);
        if bytes == 0 {
            continue;
        }
        // Repair jobs write onto their specific replacement disk.
        if let Some(&disk) = sim.repair_jobs.get(job_id) {
            let served = cluster.rebuild_step(disk, bytes, now);
            job.perform(bytes, served.completion);
            executed_batch_bytes += bytes;
            continue;
        }
        // Spread over up to 32 disks per job per slot (keeps chunks
        // sequential and large).
        let spread = active_disks.len().clamp(1, 32);
        let per = (bytes / spread as u64).max(1);
        let mut assigned = 0u64;
        let mut last_completion = now;
        for k in 0..spread {
            if assigned >= bytes {
                break;
            }
            let chunk = per.min(bytes - assigned);
            let disk = active_disks[(*rr_cursor + k) % active_disks.len()];
            let served = cluster.add_sequential_work(disk, chunk, now);
            last_completion = last_completion.max(served.completion);
            assigned += chunk;
        }
        *rr_cursor = (*rr_cursor + spread) % active_disks.len().max(1);
        job.perform(assigned, last_completion);
        executed_batch_bytes += assigned;
    }

    // Write-log reclaim.
    if decision.reclaim_budget_bytes > 0 {
        cluster.reclaim(decision.reclaim_budget_bytes, now);
    }

    sim.sites[0].executed_batch_bytes += executed_batch_bytes;
    if multi_site {
        scratch.site_executed_bytes.resize(sim.sites.len(), 0);
        scratch.site_executed_bytes[0] = executed_batch_bytes;

        // Remote placements: same spreading rule on the remote cluster.
        // Jobs are shared state, so bytes already run at home this slot
        // reduce what a remote placement can still execute (the cap by
        // `remaining_bytes` makes double assignment harmless).
        for site_idx in 1..sim.sites.len() {
            let site_gears = *sim.sites[site_idx].gears_series.last().expect("geared this slot");
            scratch.active_disks.clear();
            let SiteState { cluster, rr_cursor, .. } = &mut sim.sites[site_idx];
            for g in 0..site_gears {
                scratch.active_disks.extend(cluster.topology().disks_in_gear_range(g));
            }
            let active_disks = &scratch.active_disks;
            let mut site_executed = 0u64;
            for (s, job_id, bytes) in &decision.remote_batch_bytes {
                if *s != site_idx {
                    continue;
                }
                let Some(&idx) = sim.job_index.get(job_id) else { continue };
                let job = &mut sim.jobs[idx];
                let bytes = (*bytes).min(job.remaining_bytes);
                if bytes == 0 {
                    continue;
                }
                let spread = active_disks.len().clamp(1, 32);
                let per = (bytes / spread as u64).max(1);
                let mut assigned = 0u64;
                let mut last_completion = now;
                for k in 0..spread {
                    if assigned >= bytes {
                        break;
                    }
                    let chunk = per.min(bytes - assigned);
                    let disk = active_disks[(*rr_cursor + k) % active_disks.len()];
                    let served = cluster.add_sequential_work(disk, chunk, now);
                    last_completion = last_completion.max(served.completion);
                    assigned += chunk;
                }
                *rr_cursor = (*rr_cursor + spread) % active_disks.len().max(1);
                job.perform(assigned, last_completion);
                site_executed += assigned;
            }
            sim.sites[site_idx].executed_batch_bytes += site_executed;
            scratch.site_executed_bytes[site_idx] = site_executed;
            executed_batch_bytes += site_executed;
        }
    }

    executed_batch_bytes
}

/// One unit of batch work a site's task replays: the capped byte request
/// of a decision entry, plus where the site's round-robin cursor stood
/// when the sequential path would have placed it.
struct WorkEntry {
    job_idx: usize,
    bytes: u64,
    rr_start: usize,
    repair_disk: Option<usize>,
}

/// Pass A helper: replicate one decision entry's byte arithmetic (caps by
/// shadow remaining bytes, floor-division spread shortfall, round-robin
/// cursor advance) without touching any cluster.
#[allow(clippy::too_many_arguments)]
fn shadow_assign(
    sim: &Simulation,
    consumed: &mut HashMap<usize, u64>,
    entries: &mut Vec<WorkEntry>,
    rr_cursor: &mut usize,
    active_len: usize,
    job_id: &JobId,
    requested: u64,
) {
    let Some(&idx) = sim.job_index.get(job_id) else { return };
    let remaining =
        sim.jobs[idx].remaining_bytes.saturating_sub(consumed.get(&idx).copied().unwrap_or(0));
    let bytes = requested.min(remaining);
    if bytes == 0 {
        return;
    }
    if let Some(&disk) = sim.repair_jobs.get(job_id) {
        *consumed.entry(idx).or_insert(0) += bytes;
        entries.push(WorkEntry { job_idx: idx, bytes, rr_start: 0, repair_disk: Some(disk) });
        return;
    }
    let spread = active_len.clamp(1, 32);
    let per = (bytes / spread as u64).max(1);
    // What the spread loop will actually assign (it can fall short of
    // `bytes` when the per-disk floor division leaves a remainder).
    let assigned = bytes.min(spread as u64 * per);
    *consumed.entry(idx).or_insert(0) += assigned;
    entries.push(WorkEntry { job_idx: idx, bytes, rr_start: *rr_cursor, repair_disk: None });
    *rr_cursor = (*rr_cursor + spread) % active_len.max(1);
}

/// The three-pass parallel multi-site execute (see the module docs).
fn run_multi_site_parallel(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
    decision: &Decision,
    gears: usize,
    batch: Arc<RequestBatch>,
) -> u64 {
    let now = ctx.now;
    let n_sites = sim.sites.len();

    // Pass A — sequential shadow assignment in decision order: home
    // placements, then each remote site's. This is where bytes interact
    // across sites (shared job remaining-bytes), so it stays sequential.
    let mut site_active: Vec<Vec<usize>> = Vec::with_capacity(n_sites);
    for (i, site) in sim.sites.iter().enumerate() {
        let site_gears =
            if i == 0 { gears } else { *site.gears_series.last().expect("geared this slot") };
        let mut active = Vec::new();
        for g in 0..site_gears {
            active.extend(site.cluster.topology().disks_in_gear_range(g));
        }
        site_active.push(active);
    }
    let mut rr_shadow: Vec<usize> = sim.sites.iter().map(|s| s.rr_cursor).collect();
    let mut consumed: HashMap<usize, u64> = HashMap::new();
    let mut site_entries: Vec<Vec<WorkEntry>> = (0..n_sites).map(|_| Vec::new()).collect();
    for (job_id, bytes) in &decision.batch_bytes {
        shadow_assign(
            sim,
            &mut consumed,
            &mut site_entries[0],
            &mut rr_shadow[0],
            site_active[0].len(),
            job_id,
            *bytes,
        );
    }
    for site_idx in 1..n_sites {
        for (s, job_id, bytes) in &decision.remote_batch_bytes {
            if *s != site_idx {
                continue;
            }
            shadow_assign(
                sim,
                &mut consumed,
                &mut site_entries[site_idx],
                &mut rr_shadow[site_idx],
                site_active[site_idx].len(),
                job_id,
                *bytes,
            );
        }
    }

    // Pass B — per-site disk service on the pool. Each task owns its
    // SiteState; results come back by site index.
    for (site, rr) in sim.sites.iter_mut().zip(&rr_shadow) {
        site.rr_cursor = *rr;
    }
    let sites = std::mem::take(&mut sim.sites);
    // The home task records request latencies into the scratch's slot
    // histogram, moved into the task and back out with its results.
    let mut home_hist = {
        let mut h = std::mem::replace(&mut scratch.slot_hist, LogHistogram::for_latency_secs());
        h.clear();
        Some(h)
    };
    let reclaim = decision.reclaim_budget_bytes;
    type SiteResult = (SiteState, Vec<(usize, u64, SimTime)>, Option<LogHistogram>);
    let cells: Arc<Vec<Mutex<Option<SiteResult>>>> =
        Arc::new((0..n_sites).map(|_| Mutex::new(None)).collect());
    let tasks: Vec<Task> = sites
        .into_iter()
        .enumerate()
        .map(|(i, mut site)| {
            let entries = std::mem::take(&mut site_entries[i]);
            let active = std::mem::take(&mut site_active[i]);
            let batch = (i == 0).then(|| Arc::clone(&batch));
            let mut hist = if i == 0 { home_hist.take() } else { None };
            let cells = Arc::clone(&cells);
            Box::new(move || {
                // Home first serves the slot's interactive requests — the
                // same cluster-op order as the sequential path.
                if let (Some(batch), Some(h)) = (&batch, hist.as_mut()) {
                    for r in 0..batch.len() {
                        let served = site.cluster.serve_request(&batch.request(r));
                        h.record(served.latency.as_secs_f64());
                    }
                }
                let mut results = Vec::with_capacity(entries.len());
                let mut executed = 0u64;
                for e in &entries {
                    if let Some(disk) = e.repair_disk {
                        let served = site.cluster.rebuild_step(disk, e.bytes, now);
                        results.push((e.job_idx, e.bytes, served.completion));
                        executed += e.bytes;
                    } else {
                        let spread = active.len().clamp(1, 32);
                        let per = (e.bytes / spread as u64).max(1);
                        let mut assigned = 0u64;
                        let mut last_completion = now;
                        for k in 0..spread {
                            if assigned >= e.bytes {
                                break;
                            }
                            let chunk = per.min(e.bytes - assigned);
                            let disk = active[(e.rr_start + k) % active.len()];
                            let served = site.cluster.add_sequential_work(disk, chunk, now);
                            last_completion = last_completion.max(served.completion);
                            assigned += chunk;
                        }
                        results.push((e.job_idx, assigned, last_completion));
                        executed += assigned;
                    }
                }
                if i == 0 && reclaim > 0 {
                    site.cluster.reclaim(reclaim, now);
                }
                site.executed_batch_bytes += executed;
                *cells[i].lock().expect("site cell") = Some((site, results, hist));
            }) as Task
        })
        .collect();
    WorkPool::global().scatter(tasks);

    // Pass C — reassemble by site index and settle jobs in the original
    // decision order with the completions the tasks reported.
    let mut per_site_results = Vec::with_capacity(n_sites);
    for cell in cells.iter() {
        let (site, results, hist) =
            cell.lock().expect("site cell").take().expect("site task result");
        sim.sites.push(site);
        if let Some(h) = hist {
            scratch.slot_hist = h;
        }
        per_site_results.push(results);
    }
    sim.hist.merge(&scratch.slot_hist);
    scratch.site_executed_bytes.resize(n_sites, 0);
    let mut total = 0u64;
    for (i, results) in per_site_results.iter().enumerate() {
        let mut site_executed = 0u64;
        for &(job_idx, assigned, last_completion) in results {
            sim.jobs[job_idx].perform(assigned, last_completion);
            site_executed += assigned;
        }
        scratch.site_executed_bytes[i] = site_executed;
        total += site_executed;
    }
    total
}
