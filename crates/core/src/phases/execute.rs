//! Phase 5 — Execute: serve the slot's work.
//!
//! Serves the interactive requests (recording latency globally and into
//! the scratch's per-slot histogram), spreads each decided batch job's
//! bytes across the active disks (repair jobs write onto their specific
//! replacement disk), and runs the write-log reclaim budget. For
//! multi-site runs the decision's remote placements are then executed on
//! their sites' clusters with the same spreading rule. Returns the batch
//! bytes actually executed (all sites).

use super::{SlotContext, SlotScratch};
use crate::policy::Decision;
use crate::simulation::{Simulation, SiteState};

pub(crate) fn run(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
    decision: &Decision,
    gears: usize,
) -> u64 {
    let now = ctx.now;
    let multi_site = sim.sites.len() > 1;
    scratch.site_executed_bytes.clear();

    // Interactive service: record globally (for the final report) and per
    // slot (for the outcome), in the same order as always. Interactive
    // traffic exists only at the home site. The slot's requests come as a
    // memoised columnar batch — rows materialised on the fly from the
    // columns — so shared-world runs skip re-synthesis entirely.
    let SiteState { cluster, rr_cursor, .. } = &mut sim.sites[0];
    scratch.slot_hist.clear();
    let batch = sim.workload.slot_batch(ctx.clock, ctx.slot);
    for i in 0..batch.len() {
        let served = cluster.serve_request(&batch.request(i));
        scratch.slot_hist.record(served.latency.as_secs_f64());
    }
    // The global histogram is bucket-merged from the slot histogram rather
    // than recorded per request: identical bucket counts and max (so the
    // trace and report quantiles are unchanged), one record per request
    // instead of two. Only the report's mean can drift in its last ulps
    // (per-slot partial sums reassociate the float addition).
    sim.hist.merge(&scratch.slot_hist);

    // Batch execution: spread each job's bytes across the active disks.
    let mut executed_batch_bytes = 0u64;
    scratch.active_disks.clear();
    for g in 0..gears {
        scratch.active_disks.extend(cluster.topology().disks_in_gear_range(g));
    }
    let active_disks = &scratch.active_disks;
    for (job_id, bytes) in &decision.batch_bytes {
        let Some(&idx) = sim.job_index.get(job_id) else { continue };
        let job = &mut sim.jobs[idx];
        let bytes = (*bytes).min(job.remaining_bytes);
        if bytes == 0 {
            continue;
        }
        // Repair jobs write onto their specific replacement disk.
        if let Some(&disk) = sim.repair_jobs.get(job_id) {
            let served = cluster.rebuild_step(disk, bytes, now);
            job.perform(bytes, served.completion);
            executed_batch_bytes += bytes;
            continue;
        }
        // Spread over up to 32 disks per job per slot (keeps chunks
        // sequential and large).
        let spread = active_disks.len().clamp(1, 32);
        let per = (bytes / spread as u64).max(1);
        let mut assigned = 0u64;
        let mut last_completion = now;
        for k in 0..spread {
            if assigned >= bytes {
                break;
            }
            let chunk = per.min(bytes - assigned);
            let disk = active_disks[(*rr_cursor + k) % active_disks.len()];
            let served = cluster.add_sequential_work(disk, chunk, now);
            last_completion = last_completion.max(served.completion);
            assigned += chunk;
        }
        *rr_cursor = (*rr_cursor + spread) % active_disks.len().max(1);
        job.perform(assigned, last_completion);
        executed_batch_bytes += assigned;
    }

    // Write-log reclaim.
    if decision.reclaim_budget_bytes > 0 {
        cluster.reclaim(decision.reclaim_budget_bytes, now);
    }

    sim.sites[0].executed_batch_bytes += executed_batch_bytes;
    if multi_site {
        scratch.site_executed_bytes.resize(sim.sites.len(), 0);
        scratch.site_executed_bytes[0] = executed_batch_bytes;

        // Remote placements: same spreading rule on the remote cluster.
        // Jobs are shared state, so bytes already run at home this slot
        // reduce what a remote placement can still execute (the cap by
        // `remaining_bytes` makes double assignment harmless).
        for site_idx in 1..sim.sites.len() {
            let site_gears = *sim.sites[site_idx].gears_series.last().expect("geared this slot");
            scratch.active_disks.clear();
            let SiteState { cluster, rr_cursor, .. } = &mut sim.sites[site_idx];
            for g in 0..site_gears {
                scratch.active_disks.extend(cluster.topology().disks_in_gear_range(g));
            }
            let active_disks = &scratch.active_disks;
            let mut site_executed = 0u64;
            for (s, job_id, bytes) in &decision.remote_batch_bytes {
                if *s != site_idx {
                    continue;
                }
                let Some(&idx) = sim.job_index.get(job_id) else { continue };
                let job = &mut sim.jobs[idx];
                let bytes = (*bytes).min(job.remaining_bytes);
                if bytes == 0 {
                    continue;
                }
                let spread = active_disks.len().clamp(1, 32);
                let per = (bytes / spread as u64).max(1);
                let mut assigned = 0u64;
                let mut last_completion = now;
                for k in 0..spread {
                    if assigned >= bytes {
                        break;
                    }
                    let chunk = per.min(bytes - assigned);
                    let disk = active_disks[(*rr_cursor + k) % active_disks.len()];
                    let served = cluster.add_sequential_work(disk, chunk, now);
                    last_completion = last_completion.max(served.completion);
                    assigned += chunk;
                }
                *rr_cursor = (*rr_cursor + spread) % active_disks.len().max(1);
                job.perform(assigned, last_completion);
                site_executed += assigned;
            }
            sim.sites[site_idx].executed_batch_bytes += site_executed;
            scratch.site_executed_bytes[site_idx] = site_executed;
            executed_batch_bytes += site_executed;
        }
    }

    executed_batch_bytes
}
