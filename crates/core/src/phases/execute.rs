//! Phase 5 — Execute: serve the slot's work.
//!
//! Serves the interactive requests (recording latency globally and into
//! the scratch's per-slot histogram), spreads each decided batch job's
//! bytes across the active disks (repair jobs write onto their specific
//! replacement disk), and runs the write-log reclaim budget. Returns the
//! batch bytes actually executed.

use super::{SlotContext, SlotScratch};
use crate::policy::Decision;
use crate::simulation::Simulation;

pub(crate) fn run(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
    decision: &Decision,
    gears: usize,
) -> u64 {
    let now = ctx.now;

    // Interactive service: record globally (for the final report) and per
    // slot (for the outcome), in the same order as always.
    scratch.slot_hist.clear();
    sim.workload.requests_in_slot_into(ctx.clock, ctx.slot, &mut scratch.requests);
    for req in &scratch.requests {
        let served = sim.cluster.serve_request(req);
        let latency_s = served.latency.as_secs_f64();
        sim.hist.record(latency_s);
        scratch.slot_hist.record(latency_s);
    }

    // Batch execution: spread each job's bytes across the active disks.
    let mut executed_batch_bytes = 0u64;
    scratch.active_disks.clear();
    for g in 0..gears {
        scratch.active_disks.extend(sim.cluster.topology().disks_in_gear_range(g));
    }
    let active_disks = &scratch.active_disks;
    for (job_id, bytes) in &decision.batch_bytes {
        let Some(&idx) = sim.job_index.get(job_id) else { continue };
        let job = &mut sim.jobs[idx];
        let bytes = (*bytes).min(job.remaining_bytes);
        if bytes == 0 {
            continue;
        }
        // Repair jobs write onto their specific replacement disk.
        if let Some(&disk) = sim.repair_jobs.get(job_id) {
            let served = sim.cluster.rebuild_step(disk, bytes, now);
            job.perform(bytes, served.completion);
            executed_batch_bytes += bytes;
            continue;
        }
        // Spread over up to 32 disks per job per slot (keeps chunks
        // sequential and large).
        let spread = active_disks.len().clamp(1, 32);
        let per = (bytes / spread as u64).max(1);
        let mut assigned = 0u64;
        let mut last_completion = now;
        for k in 0..spread {
            if assigned >= bytes {
                break;
            }
            let chunk = per.min(bytes - assigned);
            let disk = active_disks[(sim.rr_cursor + k) % active_disks.len()];
            let served = sim.cluster.add_sequential_work(disk, chunk, now);
            last_completion = last_completion.max(served.completion);
            assigned += chunk;
        }
        sim.rr_cursor = (sim.rr_cursor + spread) % active_disks.len().max(1);
        job.perform(assigned, last_completion);
        executed_batch_bytes += assigned;
    }

    // Write-log reclaim.
    if decision.reclaim_budget_bytes > 0 {
        sim.cluster.reclaim(decision.reclaim_budget_bytes, now);
    }

    executed_batch_bytes
}
