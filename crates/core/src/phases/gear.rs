//! Phase 4 — Gear: apply the gear decision.
//!
//! Clamps the requested gear count to the physical range, shifts the home
//! cluster (spinning disks up or down), and records the gear series.
//! Remote sites gear to the smallest level whose batch capacity fits the
//! bytes the decision placed there (they serve no interactive load, so
//! there is nothing else to keep disks spinning for). Returns the home
//! gear level actually powered.

use super::SlotContext;
use crate::policy::Decision;
use crate::simulation::Simulation;

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, decision: &Decision) -> usize {
    let home = &mut sim.sites[0];
    let gears = decision.gears.clamp(1, home.model.gears);
    home.cluster.set_active_gears(gears, ctx.now);
    home.gears_series.push(gears);

    if sim.sites.len() > 1 {
        let slot_secs = ctx.width.as_secs_f64();
        for (i, site) in sim.sites.iter_mut().enumerate().skip(1) {
            let placed: u64 = decision
                .remote_batch_bytes
                .iter()
                .filter(|(s, _, _)| *s == i)
                .map(|(_, _, b)| b)
                .sum();
            let mut g = 1;
            while g < site.model.gears
                && site.model.batch_capacity_bytes(g, 0.0, slot_secs) < placed
            {
                g += 1;
            }
            site.cluster.set_active_gears(g, ctx.now);
            site.gears_series.push(g);
        }
    }
    gears
}
