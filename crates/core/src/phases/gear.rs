//! Phase 4 — Gear: apply the gear decision.
//!
//! Clamps the requested gear count to the physical range, shifts the
//! cluster (spinning disks up or down), and records the gear series.
//! Returns the gear level actually powered.

use super::SlotContext;
use crate::policy::Decision;
use crate::simulation::Simulation;

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, decision: &Decision) -> usize {
    let gears = decision.gears.clamp(1, sim.model.gears);
    sim.cluster.set_active_gears(gears, ctx.now);
    sim.gears_series.push(gears);
    gears
}
