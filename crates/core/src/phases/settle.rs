//! Phase 6 — Settle: energy accounting and job retirement.
//!
//! For each site: integrates the cluster's energy over the slot, settles
//! it against the true green production (green direct → battery → grid,
//! with the configured discharge strategy), records the ledger slot, and
//! feeds the forecaster the actual. Then retires completed jobs globally
//! (repair completions restore redundancy at the home site instead of
//! entering the batch statistics).

use super::SlotContext;
use crate::config::DischargeStrategy;
use crate::simulation::{EnergyFlows, Simulation, SiteState};
use gm_energy::ledger::SlotFlows;

/// What settlement produced, for the slot outcome.
pub(crate) struct Settled {
    /// Aggregate flows across sites (for one site: that site's, exactly).
    pub energy: EnergyFlows,
    /// Per-site flows, index = site. Empty for single-site runs.
    pub site_energy: Vec<EnergyFlows>,
    pub jobs_completed: usize,
    pub deadline_misses: usize,
    pub repairs_completed: u64,
    pub migrations_completed: u64,
    /// Replica bytes released by migrations completing this slot.
    pub tier_bytes_released: u64,
    /// Bytes newly written by migrations completing this slot.
    pub tier_bytes_written: u64,
}

/// Settle one site's energy for the slot and record its ledger.
fn settle_site(
    site: &mut SiteState,
    ctx: &SlotContext,
    discharge: DischargeStrategy,
) -> EnergyFlows {
    let s = ctx.slot;
    let slot_energy = site.cluster.end_slot(ctx.slot_end, ctx.width);
    let load_wh = slot_energy.total_wh();
    let green_wh = site.green_trace.get(s) * ctx.hours;
    let green_direct = green_wh.min(load_wh);
    let surplus = green_wh - green_direct;
    let charge = site.battery.charge(surplus, ctx.width);
    let curtailed = surplus - charge.drawn_wh;
    let deficit = load_wh - green_direct;
    // Discharge timing per the configured strategy, evaluated in the
    // *site-local* hour: a site's green trace is rotated by its UTC offset,
    // so its peak/reserve windows must rotate with it (offset 0 — and thus
    // every single-site run — is unchanged).
    let mid = ctx.now + ctx.width / 2;
    let hour = (mid.hour_of_day() - site.utc_offset_hours as f64).rem_euclid(24.0);
    let allowed = match discharge {
        DischargeStrategy::Eager => deficit,
        DischargeStrategy::PeakOnly => {
            if (7.0..23.0).contains(&hour) {
                deficit
            } else {
                0.0
            }
        }
        DischargeStrategy::Reserve(frac) => {
            if (17.0..23.0).contains(&hour) {
                deficit // the peak may spend the reserve
            } else {
                let reserve = site.battery.spec().usable_wh() * frac.clamp(0.0, 1.0);
                deficit.min((site.battery.stored_wh() - reserve).max(0.0))
            }
        }
    };
    let battery_out = site.battery.discharge(allowed, ctx.width);
    let brown = deficit - battery_out;

    site.ledger.record_slot(
        s,
        SlotFlows {
            green_produced_wh: green_wh,
            green_direct_wh: green_direct,
            battery_drawn_wh: charge.drawn_wh,
            battery_out_wh: battery_out,
            brown_wh: brown,
            curtailed_wh: curtailed,
            load_wh,
        },
    );
    site.ledger.add_spinup_overhead(slot_energy.spinup_overhead_wh);
    site.ledger.add_reclaim_overhead(slot_energy.reclaim_overhead_wh);

    site.forecaster.observe_actual(s, site.green_trace.get(s));

    EnergyFlows {
        green_produced_wh: green_wh,
        green_direct_wh: green_direct,
        battery_in_wh: charge.drawn_wh,
        battery_out_wh: battery_out,
        grid_wh: brown,
        curtailed_wh: curtailed,
        load_wh,
    }
}

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext) -> Settled {
    let discharge = sim.cfg.energy.discharge;
    let multi_site = sim.sites.len() > 1;

    // Settle every site; aggregate flows sum exactly to the home site's
    // for single-site runs (each sum starts at zero and adds one term).
    let mut energy = EnergyFlows {
        green_produced_wh: 0.0,
        green_direct_wh: 0.0,
        battery_in_wh: 0.0,
        battery_out_wh: 0.0,
        grid_wh: 0.0,
        curtailed_wh: 0.0,
        load_wh: 0.0,
    };
    let mut site_energy = Vec::new();
    if multi_site {
        site_energy.reserve(sim.sites.len());
    }
    for site in &mut sim.sites {
        let flows = settle_site(site, ctx, discharge);
        energy.green_produced_wh += flows.green_produced_wh;
        energy.green_direct_wh += flows.green_direct_wh;
        energy.battery_in_wh += flows.battery_in_wh;
        energy.battery_out_wh += flows.battery_out_wh;
        energy.grid_wh += flows.grid_wh;
        energy.curtailed_wh += flows.curtailed_wh;
        energy.load_wh += flows.load_wh;
        if multi_site {
            site_energy.push(flows);
        }
    }

    // Retire completed jobs (each counted exactly once: completed jobs
    // leave the active list and the index below). Repair completions
    // restore redundancy instead of entering the batch statistics.
    let mut jobs_completed = 0usize;
    let mut deadline_misses = 0usize;
    let mut slot_repairs = 0u64;
    let mut slot_migrations = 0u64;
    let mut tier_bytes_released = 0u64;
    let mut tier_bytes_written = 0u64;
    for &idx in &sim.active_jobs {
        let j = &sim.jobs[idx];
        if let Some(met) = j.met_deadline() {
            // `remove` (not `get`): a completed repair must leave the map,
            // or it grows unboundedly and every retired id is consulted on
            // each execute-phase lookup forever.
            if let Some(info) = sim.migration_jobs.remove(&j.id) {
                // The migration's I/O is done: flip the placement of every
                // carried object and settle the capacity delta.
                let (released, written) =
                    sim.sites[0].cluster.complete_migration(&info.objs, info.demote);
                tier_bytes_released += released;
                tier_bytes_written += written;
                sim.migrations_completed += 1;
                slot_migrations += 1;
            } else if let Some(disk) = sim.repair_jobs.remove(&j.id) {
                sim.sites[0].cluster.mark_rebuilt(disk);
                sim.repairs_completed += 1;
                slot_repairs += 1;
            } else {
                sim.batch_report.jobs_completed += 1;
                sim.batch_report.bytes_completed += j.total_bytes;
                jobs_completed += 1;
                if !met {
                    sim.batch_report.deadline_misses += 1;
                    deadline_misses += 1;
                }
            }
        }
    }
    let jobs = &sim.jobs;
    sim.job_index.retain(|_, &mut idx| jobs[idx].is_pending());
    sim.active_jobs.retain(|&idx| jobs[idx].is_pending());

    Settled {
        energy,
        site_energy,
        jobs_completed,
        deadline_misses,
        repairs_completed: slot_repairs,
        migrations_completed: slot_migrations,
        tier_bytes_released,
        tier_bytes_written,
    }
}
