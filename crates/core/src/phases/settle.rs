//! Phase 6 — Settle: energy accounting and job retirement.
//!
//! Integrates the cluster's energy over the slot, settles it against the
//! true green production (green direct → battery → grid, with the
//! configured discharge strategy), records the ledger slot, feeds the
//! forecaster the actual, and retires completed jobs (repair completions
//! restore redundancy instead of entering the batch statistics).

use super::SlotContext;
use crate::config::DischargeStrategy;
use crate::simulation::{EnergyFlows, Simulation};
use gm_energy::ledger::SlotFlows;

/// What settlement produced, for the slot outcome.
pub(crate) struct Settled {
    pub energy: EnergyFlows,
    pub jobs_completed: usize,
    pub deadline_misses: usize,
    pub repairs_completed: u64,
}

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext) -> Settled {
    let s = ctx.slot;
    let slot_energy = sim.cluster.end_slot(ctx.slot_end, ctx.width);
    let load_wh = slot_energy.total_wh();
    let green_wh = sim.green_trace.get(s) * ctx.hours;
    let green_direct = green_wh.min(load_wh);
    let surplus = green_wh - green_direct;
    let charge = sim.battery.charge(surplus, ctx.width);
    let curtailed = surplus - charge.drawn_wh;
    let deficit = load_wh - green_direct;
    // Discharge timing per the configured strategy.
    let mid = ctx.now + ctx.width / 2;
    let hour = mid.hour_of_day();
    let allowed = match sim.cfg.energy.discharge {
        DischargeStrategy::Eager => deficit,
        DischargeStrategy::PeakOnly => {
            if (7.0..23.0).contains(&hour) {
                deficit
            } else {
                0.0
            }
        }
        DischargeStrategy::Reserve(frac) => {
            if (17.0..23.0).contains(&hour) {
                deficit // the peak may spend the reserve
            } else {
                let reserve = sim.battery.spec().usable_wh() * frac.clamp(0.0, 1.0);
                deficit.min((sim.battery.stored_wh() - reserve).max(0.0))
            }
        }
    };
    let battery_out = sim.battery.discharge(allowed, ctx.width);
    let brown = deficit - battery_out;

    sim.ledger.record_slot(
        s,
        SlotFlows {
            green_produced_wh: green_wh,
            green_direct_wh: green_direct,
            battery_drawn_wh: charge.drawn_wh,
            battery_out_wh: battery_out,
            brown_wh: brown,
            curtailed_wh: curtailed,
            load_wh,
        },
    );
    sim.ledger.add_spinup_overhead(slot_energy.spinup_overhead_wh);
    sim.ledger.add_reclaim_overhead(slot_energy.reclaim_overhead_wh);

    sim.forecaster.observe_actual(s, sim.green_trace.get(s));

    // Retire completed jobs (each counted exactly once: completed jobs
    // leave the active list and the index below). Repair completions
    // restore redundancy instead of entering the batch statistics.
    let mut jobs_completed = 0usize;
    let mut deadline_misses = 0usize;
    let mut slot_repairs = 0u64;
    for &idx in &sim.active_jobs {
        let j = &sim.jobs[idx];
        if let Some(met) = j.met_deadline() {
            if let Some(&disk) = sim.repair_jobs.get(&j.id) {
                sim.cluster.mark_rebuilt(disk);
                sim.repairs_completed += 1;
                slot_repairs += 1;
            } else {
                sim.batch_report.jobs_completed += 1;
                sim.batch_report.bytes_completed += j.total_bytes;
                jobs_completed += 1;
                if !met {
                    sim.batch_report.deadline_misses += 1;
                    deadline_misses += 1;
                }
            }
        }
    }
    let jobs = &sim.jobs;
    sim.job_index.retain(|_, &mut idx| jobs[idx].is_pending());
    sim.active_jobs.retain(|&idx| jobs[idx].is_pending());

    Settled {
        energy: EnergyFlows {
            green_produced_wh: green_wh,
            green_direct_wh: green_direct,
            battery_in_wh: charge.drawn_wh,
            battery_out_wh: battery_out,
            grid_wh: brown,
            curtailed_wh: curtailed,
            load_wh,
        },
        jobs_completed,
        deadline_misses,
        repairs_completed: slot_repairs,
    }
}
