//! Phase 3 — Plan: the policy decision.
//!
//! Assembles the [`SchedContext`] as borrowed views over the scratch
//! buffers the earlier phases filled (no copies, no allocation) and asks
//! the policy to decide the slot.

use super::{SlotContext, SlotScratch};
use crate::policy::{BatteryView, Decision, SchedContext, SiteView};
use crate::simulation::{Simulation, SiteState};

fn battery_view(site: &SiteState, ctx: &SlotContext) -> BatteryView {
    BatteryView {
        stored_wh: site.battery.stored_wh(),
        headroom_wh: site.battery.headroom_wh(),
        efficiency: site.battery.spec().efficiency,
        charge_capacity_wh: site.battery.charge_capacity_wh(ctx.width),
        discharge_capacity_wh: site.battery.discharge_capacity_wh(ctx.width),
    }
}

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, scratch: &SlotScratch) -> Decision {
    let home = &sim.sites[0];
    let battery = battery_view(home, ctx);

    // Per-site views, home first, only when there is more than one site
    // (`Vec::new()` does not allocate, so the single-site plan path stays
    // allocation-free).
    let site_views: Vec<SiteView<'_>> = if sim.sites.len() > 1 {
        sim.sites
            .iter()
            .enumerate()
            .map(|(i, site)| SiteView {
                site: i,
                green_forecast_wh: if i == 0 {
                    &scratch.green_forecast_wh
                } else {
                    &scratch.remote_green_forecast_wh[i - 1]
                },
                model: site.model,
                wan_cost_per_unit: if i == 0 { 0 } else { sim.cfg.wan_cost_per_unit },
                battery: battery_view(site, ctx),
            })
            .collect()
    } else {
        Vec::new()
    };

    let sched = SchedContext {
        slot: ctx.slot,
        now: ctx.now,
        clock: ctx.clock,
        green_forecast_wh: &scratch.green_forecast_wh,
        interactive_busy_secs: &scratch.interactive_busy_secs,
        jobs: &scratch.jobs,
        battery,
        model: home.model,
        writelog_pending_bytes: home.cluster.write_log().pending_total(),
        grid: sim.cfg.energy.grid,
        sites: &site_views,
    };
    sim.policy.decide(&sched)
}
