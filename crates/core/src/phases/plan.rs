//! Phase 3 — Plan: the policy decision.
//!
//! Assembles the [`SchedContext`] as borrowed views over the scratch
//! buffers the earlier phases filled (no copies, no allocation) and asks
//! the policy to decide the slot.

use super::{SlotContext, SlotScratch};
use crate::policy::{BatteryView, Decision, SchedContext};
use crate::simulation::Simulation;

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, scratch: &SlotScratch) -> Decision {
    let battery = BatteryView {
        stored_wh: sim.battery.stored_wh(),
        headroom_wh: sim.battery.headroom_wh(),
        efficiency: sim.battery.spec().efficiency,
        charge_capacity_wh: sim.battery.charge_capacity_wh(ctx.width),
        discharge_capacity_wh: sim.battery.discharge_capacity_wh(ctx.width),
    };
    let sched = SchedContext {
        slot: ctx.slot,
        now: ctx.now,
        clock: ctx.clock,
        green_forecast_wh: &scratch.green_forecast_wh,
        interactive_busy_secs: &scratch.interactive_busy_secs,
        jobs: &scratch.job_views,
        battery,
        model: sim.model,
        writelog_pending_bytes: sim.cluster.write_log().pending_total(),
        grid: sim.cfg.energy.grid,
    };
    sim.policy.decide(&sched)
}
