//! The per-slot phase pipeline.
//!
//! [`crate::simulation::Simulation::step`] is not a monolith: each slot
//! runs six typed phases in a fixed order, every phase a small module in
//! this directory:
//!
//! ```text
//! Forecast → Classify → Admission → Plan → Gear → Execute → Settle
//! ```
//!
//! * [`forecast`] — battery relaxation, green-energy forecast, expected
//!   interactive busy-time over the planning horizon.
//! * [`classify`] — failure injection (spawning repair jobs), batch
//!   arrivals, and assembly of the policy-visible [`crate::policy::JobView`]s.
//! * [`admission`] — the energy-aware gate over newly arrived deferrable
//!   jobs (accept / defer / reject against the green lower band); an
//!   instant no-op when admission control is off.
//! * [`plan`] — build the [`crate::policy::SchedContext`] over the scratch
//!   buffers and ask the policy for its [`crate::policy::Decision`].
//! * [`gear`] — clamp and apply the gear decision to the cluster.
//! * [`execute`] — serve the slot's interactive requests, spread the
//!   decided batch bytes over the active disks, run write-log reclaim.
//! * [`settle`] — integrate energy, settle green → battery → grid, record
//!   the ledger slot, update the forecaster, retire finished jobs.
//!
//! Phases communicate through two structs with strict ownership rules:
//!
//! * [`SlotContext`] — immutable per-slot facts (slot index, clock
//!   instants). Built once by the step driver; phases only read it.
//! * [`SlotScratch`] — reusable buffers written by earlier phases and read
//!   by later ones. The caller owns it and passes the same instance to
//!   every step, so the steady-state loop performs **no heap allocation**:
//!   each buffer is `clear()`ed (capacity retained) and refilled. All
//!   allocation happens during the first few slots while the buffers grow
//!   to their high-water marks.
//!
//! Each phase also mutates its slice of the [`crate::simulation::Simulation`]
//! state (cluster, battery, ledger, job table); the phase boundaries are
//! exactly the boundaries reported to [`crate::observe::SlotObserver`]s
//! via [`crate::observe::Phase`] timing callbacks.

pub(crate) mod admission;
pub(crate) mod classify;
pub(crate) mod execute;
pub(crate) mod forecast;
pub(crate) mod gear;
pub(crate) mod plan;
pub(crate) mod settle;

use gm_sim::time::SimTime;
use gm_sim::{LogHistogram, SimDuration, SlotClock};

use crate::policy::JobColumns;

/// Immutable facts about the slot being simulated, shared by every phase.
#[derive(Debug, Clone, Copy)]
pub struct SlotContext {
    /// Slot index.
    pub slot: usize,
    /// Slot start instant.
    pub now: SimTime,
    /// Slot end instant.
    pub slot_end: SimTime,
    /// Slot width.
    pub width: SimDuration,
    /// Slot width in hours.
    pub hours: f64,
    /// The slot clock.
    pub clock: SlotClock,
}

/// Reusable per-slot buffers threaded through the phase pipeline.
///
/// One instance serves arbitrarily many slots — and arbitrarily many
/// simulations run back to back (see
/// [`crate::simulation::SimulationBuilder::scratch`]): every phase clears
/// the buffers it fills before refilling them, so capacity is retained and
/// the steady-state slot loop allocates nothing. Contents are only
/// meaningful between the phase that writes a buffer and the end of the
/// slot; callers should treat a scratch as opaque state between steps.
#[derive(Debug, Clone)]
pub struct SlotScratch {
    /// Forecast green energy per horizon slot (Wh). Written by
    /// [`forecast`], read by [`plan`].
    pub green_forecast_wh: Vec<f64>,
    /// Expected interactive disk busy-seconds per horizon slot. Written by
    /// [`forecast`], read by [`plan`].
    pub interactive_busy_secs: Vec<f64>,
    /// Columnar table of the pending jobs as policies see them. Written by
    /// [`classify`], read by [`plan`].
    pub jobs: JobColumns,
    /// Disk indices of the gears powered this slot. Written and read by
    /// [`execute`].
    pub active_disks: Vec<usize>,
    /// Latency histogram of this slot alone (the global histogram lives on
    /// the simulation). Cleared and refilled by [`execute`], read when the
    /// [`crate::simulation::SlotOutcome`] is assembled.
    pub slot_hist: LogHistogram,
    /// Forecast green energy per horizon slot for each *non-home* site
    /// (Wh); entry `i` belongs to site `i + 1`. Written by [`forecast`],
    /// read by [`plan`]. Always empty for single-site runs.
    pub remote_green_forecast_wh: Vec<Vec<f64>>,
    /// Batch bytes executed per site this slot (index = site). Written by
    /// [`execute`] for multi-site runs only; empty otherwise.
    pub site_executed_bytes: Vec<u64>,
    /// α-confidence **lower** band of green energy per horizon slot (Wh),
    /// summed across sites. Written by [`forecast`] and read by
    /// [`admission`] only when admission control is configured; empty
    /// otherwise.
    pub admission_lower_wh: Vec<f64>,
    /// Reusable buffers for the probabilistic forecast calls (point /
    /// lower / upper bands per site). Only touched with admission on.
    pub band_point: Vec<f64>,
    /// See [`SlotScratch::band_point`].
    pub band_lower: Vec<f64>,
    /// See [`SlotScratch::band_point`].
    pub band_upper: Vec<f64>,
    /// This slot's batch arrivals when pulled from an event feed. Written
    /// by [`classify`]; drained into the admission queue or the job pool.
    pub feed_jobs: Vec<gm_workload::BatchJob>,
}

impl Default for SlotScratch {
    fn default() -> Self {
        SlotScratch {
            green_forecast_wh: Vec::new(),
            interactive_busy_secs: Vec::new(),
            jobs: JobColumns::new(),
            active_disks: Vec::new(),
            slot_hist: LogHistogram::for_latency_secs(),
            remote_green_forecast_wh: Vec::new(),
            site_executed_bytes: Vec::new(),
            admission_lower_wh: Vec::new(),
            band_point: Vec::new(),
            band_lower: Vec::new(),
            band_upper: Vec::new(),
            feed_jobs: Vec::new(),
        }
    }
}

impl SlotScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> Self {
        SlotScratch::default()
    }
}
