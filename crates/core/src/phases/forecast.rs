//! Phase 1 — Forecast: battery relaxation and the policy's forward view.
//!
//! Applies one slot of battery self-discharge, asks the forecaster for the
//! green-energy outlook over the planning horizon, and fills in the
//! expected interactive busy-seconds per horizon slot (memoised on the
//! simulation — the expectation is a pure function of the absolute slot,
//! so each slot is computed once per run instead of once per horizon
//! overlap).

use super::{SlotContext, SlotScratch};
use crate::scheduler::DEFAULT_HORIZON;
use crate::simulation::Simulation;

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, scratch: &mut SlotScratch) {
    for site in &mut sim.sites {
        site.battery.apply_self_discharge(ctx.width);
    }

    // The policy sees the forecaster's view of the whole window,
    // *including* the current slot. With the Oracle forecaster this
    // reproduces the era's accurate-next-slot-prediction convention
    // exactly; with imperfect forecasters the policy may misjudge even the
    // present — which is what forecast-sensitivity experiments measure.
    // Energy settlement always uses the truth.
    let home = &mut sim.sites[0];
    home.forecaster.predict_into(ctx.slot, DEFAULT_HORIZON, &mut scratch.green_forecast_wh);
    for w in &mut scratch.green_forecast_wh {
        *w *= ctx.hours;
    }

    // Remote sites get the same treatment into their own buffers (entry i
    // serves site i + 1). Single-site runs never touch these.
    let n_remote = sim.sites.len() - 1;
    scratch.remote_green_forecast_wh.truncate(n_remote);
    while scratch.remote_green_forecast_wh.len() < n_remote {
        scratch.remote_green_forecast_wh.push(Vec::new());
    }
    for (site, buf) in sim.sites[1..].iter_mut().zip(&mut scratch.remote_green_forecast_wh) {
        site.forecaster.predict_into(ctx.slot, DEFAULT_HORIZON, buf);
        for w in buf.iter_mut() {
            *w *= ctx.hours;
        }
    }

    scratch.interactive_busy_secs.clear();
    for k in 0..DEFAULT_HORIZON {
        let busy = sim.expected_busy_secs(ctx.slot + k);
        scratch.interactive_busy_secs.push(busy);
    }
}
