//! Phase 1 — Forecast: battery relaxation and the policy's forward view.
//!
//! Applies one slot of battery self-discharge, asks the forecaster for the
//! green-energy outlook over the planning horizon, and fills in the
//! expected interactive busy-seconds per horizon slot (memoised on the
//! simulation — the expectation is a pure function of the absolute slot,
//! so each slot is computed once per run instead of once per horizon
//! overlap).
//!
//! With `cfg.site_parallel` (the default), a multi-site slot runs the
//! per-site forecaster predictions as pool tasks — each site's prediction
//! touches only its own forecaster and target buffer, and results are
//! reassembled by site index, so the fan-out is byte-identical to the
//! sequential walk at any thread count.

use super::{SlotContext, SlotScratch};
use crate::scheduler::DEFAULT_HORIZON;
use crate::simulation::{Simulation, SiteState};
use gm_sim::pool::Task;
use gm_sim::WorkPool;
use std::sync::{Arc, Mutex};

pub(crate) fn run(sim: &mut Simulation, ctx: &SlotContext, scratch: &mut SlotScratch) {
    for site in &mut sim.sites {
        site.battery.apply_self_discharge(ctx.width);
    }

    // The policy sees the forecaster's view of the whole window,
    // *including* the current slot. With the Oracle forecaster this
    // reproduces the era's accurate-next-slot-prediction convention
    // exactly; with imperfect forecasters the policy may misjudge even the
    // present — which is what forecast-sensitivity experiments measure.
    // Energy settlement always uses the truth.
    let n_remote = sim.sites.len() - 1;
    scratch.remote_green_forecast_wh.truncate(n_remote);
    while scratch.remote_green_forecast_wh.len() < n_remote {
        scratch.remote_green_forecast_wh.push(Vec::new());
    }

    if n_remote > 0 && sim.cfg.site_parallel {
        predict_parallel(sim, ctx, scratch);
    } else {
        let home = &mut sim.sites[0];
        home.forecaster.predict_into(ctx.slot, DEFAULT_HORIZON, &mut scratch.green_forecast_wh);
        for w in &mut scratch.green_forecast_wh {
            *w *= ctx.hours;
        }

        // Remote sites get the same treatment into their own buffers
        // (entry i serves site i + 1). Single-site runs never touch these.
        for (site, buf) in sim.sites[1..].iter_mut().zip(&mut scratch.remote_green_forecast_wh) {
            site.forecaster.predict_into(ctx.slot, DEFAULT_HORIZON, buf);
            for w in buf.iter_mut() {
                *w *= ctx.hours;
            }
        }
    }

    // Admission gate's supply view: the α-confidence *lower* band per
    // horizon slot, summed across sites (accepted work may be placed at
    // any site, so the gate sees the fleet-wide conservative supply).
    // Runs as an extra sequential pass after the point forecasts — every
    // forecaster's bands are a pure function of its state and the slot
    // (the noisy oracle draws counter-based noise), so this pass perturbs
    // nothing the band-oblivious paths computed.
    if let Some(gate) = sim.cfg.admission {
        scratch.admission_lower_wh.clear();
        scratch.admission_lower_wh.resize(DEFAULT_HORIZON, 0.0);
        for site in &mut sim.sites {
            site.forecaster.predict_bands_into(
                ctx.slot,
                DEFAULT_HORIZON,
                gate.alpha,
                &mut scratch.band_point,
                &mut scratch.band_lower,
                &mut scratch.band_upper,
            );
            for (acc, lo) in scratch.admission_lower_wh.iter_mut().zip(&scratch.band_lower) {
                *acc += lo * ctx.hours;
            }
        }
    }

    scratch.interactive_busy_secs.clear();
    for k in 0..DEFAULT_HORIZON {
        let busy = sim.expected_busy_secs(ctx.slot + k);
        scratch.interactive_busy_secs.push(busy);
    }
}

/// One site's prediction task result: the site handed back with its
/// filled forecast buffer.
type PredictResult = (SiteState, Vec<f64>);

/// Fan the per-site predictions across the pool: each task owns its
/// [`SiteState`] and target buffer (home's is `green_forecast_wh`, site
/// `i + 1`'s is `remote_green_forecast_wh[i]`), reassembled by index.
fn predict_parallel(sim: &mut Simulation, ctx: &SlotContext, scratch: &mut SlotScratch) {
    let slot = ctx.slot;
    let hours = ctx.hours;
    let sites = std::mem::take(&mut sim.sites);
    let n = sites.len();
    let cells: Arc<Vec<Mutex<Option<PredictResult>>>> =
        Arc::new((0..n).map(|_| Mutex::new(None)).collect());
    let tasks: Vec<Task> = sites
        .into_iter()
        .enumerate()
        .map(|(i, mut site)| {
            let mut buf = if i == 0 {
                std::mem::take(&mut scratch.green_forecast_wh)
            } else {
                std::mem::take(&mut scratch.remote_green_forecast_wh[i - 1])
            };
            let cells = Arc::clone(&cells);
            Box::new(move || {
                site.forecaster.predict_into(slot, DEFAULT_HORIZON, &mut buf);
                for w in &mut buf {
                    *w *= hours;
                }
                *cells[i].lock().expect("forecast cell") = Some((site, buf));
            }) as Task
        })
        .collect();
    WorkPool::global().scatter(tasks);
    for (i, cell) in cells.iter().enumerate() {
        let (site, buf) = cell.lock().expect("forecast cell").take().expect("forecast task result");
        sim.sites.push(site);
        if i == 0 {
            scratch.green_forecast_wh = buf;
        } else {
            scratch.remote_green_forecast_wh[i - 1] = buf;
        }
    }
}
