//! Phase 3 — Admission: the energy-aware gate over deferrable arrivals.
//!
//! With admission control configured (see
//! [`crate::config::AdmissionConfig`]), newly arrived deferrable batch
//! jobs do not enter the job pool directly: classify parks them in the
//! admission queue and this phase decides their fate against the
//! α-confidence **lower** band of the green-energy forecast
//! ([`SlotScratch::admission_lower_wh`], filled by the forecast phase):
//!
//! * **accept** — the window of lower-band supply up to the job's deadline
//!   covers the energy already committed to pending work plus this job's
//!   own demand. The job enters the pool exactly as a directly admitted
//!   one would.
//! * **defer** — supply is short but the job has both deadline slack and
//!   defer budget left; it is held and retried next slot against a fresh
//!   forecast.
//! * **reject** — supply is short and the job is out of slack or budget.
//!   Rejected work never reaches the matcher: the planner prices only
//!   admitted jobs, which is what keeps the violation rate of an
//!   α-confident gate low — the gate, not the matcher, absorbs overload.
//!
//! Repair and migration jobs are internal obligations spawned by classify
//! itself and never pass through the gate. With admission off the phase is
//! an instant no-op (classify has already filled the job columns).

use super::{SlotContext, SlotScratch};
use crate::scheduler::DEFAULT_HORIZON;
use crate::simulation::Simulation;

/// What the admission phase decided, for the slot outcome.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct AdmissionOutcome {
    pub accepted: usize,
    pub deferred: usize,
    pub rejected: usize,
    pub rejected_bytes: u64,
}

/// The pure accept test: does the lower-band supply over the first
/// `window` horizon slots cover the energy already committed plus this
/// job's demand? `window` is clamped to `[1, lower_wh.len()]`; an empty
/// band (degenerate forecaster) accepts everything, like the default
/// degenerate bands would.
pub(crate) fn admissible(lower_wh: &[f64], window: usize, committed_wh: f64, job_wh: f64) -> bool {
    if lower_wh.is_empty() {
        return true;
    }
    let window = window.clamp(1, lower_wh.len());
    let supply: f64 = lower_wh[..window].iter().sum();
    supply >= committed_wh + job_wh
}

pub(crate) fn run(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
) -> AdmissionOutcome {
    let Some(gate) = sim.cfg.admission else {
        // Admission off: classify filled the job columns already.
        return AdmissionOutcome::default();
    };
    let mut out = AdmissionOutcome::default();

    // Energy already owed to pending work (repairs and migrations
    // included — they bypassed the gate but still burn the same watts),
    // grown by each acceptance within the slot.
    let committed_bytes: u64 =
        sim.active_jobs.iter().map(|&idx| sim.jobs[idx].remaining_bytes).sum();
    let model = sim.sites[0].model;
    let mut committed_wh = model.batch_energy_wh(committed_bytes);

    // Held jobs retry first (FIFO — oldest holds get first claim on
    // supply), then this slot's fresh arrivals.
    let held = std::mem::take(&mut sim.admission_held);
    let queue = std::mem::take(&mut sim.admission_queue);
    for (job, held_slots) in held.into_iter().chain(queue.into_iter().map(|j| (j, 0))) {
        let deadline_slot = crate::simulation::deadline_slot_for(ctx.clock, job.deadline);
        let window = (deadline_slot.saturating_sub(ctx.slot) + 1).min(DEFAULT_HORIZON);
        let job_wh = model.batch_energy_wh(job.remaining_bytes);
        if admissible(&scratch.admission_lower_wh, window, committed_wh, job_wh) {
            committed_wh += job_wh;
            sim.batch_report.jobs_submitted += 1;
            sim.batch_report.bytes_submitted += job.total_bytes;
            sim.job_index.insert(job.id, sim.jobs.len());
            sim.active_jobs.push(sim.jobs.len());
            sim.jobs.push(job);
            out.accepted += 1;
        } else if held_slots < gate.defer_slots && deadline_slot > ctx.slot {
            sim.admission_held.push((job, held_slots + 1));
            out.deferred += 1;
        } else {
            out.rejected += 1;
            out.rejected_bytes += job.total_bytes;
        }
    }
    sim.admission_accepted += out.accepted as u64;
    sim.admission_deferred += out.deferred as u64;
    sim.admission_rejected += out.rejected as u64;
    sim.admission_rejected_bytes += out.rejected_bytes;

    // The gate changed (or at least finalised) the pending set; build the
    // policy's columnar view now instead of in classify.
    super::classify::fill_job_columns(sim, ctx, scratch);
    out
}

#[cfg(test)]
mod tests {
    use super::admissible;

    #[test]
    fn accepts_when_supply_covers_demand() {
        let band = [100.0, 100.0, 0.0, 0.0];
        assert!(admissible(&band, 2, 150.0, 50.0));
        assert!(!admissible(&band, 2, 150.0, 51.0));
    }

    #[test]
    fn window_limits_the_visible_supply() {
        let band = [10.0, 10.0, 500.0];
        assert!(!admissible(&band, 2, 0.0, 30.0), "slot 2's surplus is past the deadline");
        assert!(admissible(&band, 3, 0.0, 30.0));
        // Degenerate windows clamp instead of panicking.
        assert!(admissible(&band, 0, 0.0, 5.0));
        assert!(admissible(&band, 99, 0.0, 520.0));
    }

    #[test]
    fn acceptance_is_monotone_in_headroom() {
        let band = [60.0, 40.0];
        let mut last = true;
        for committed in [0.0, 20.0, 40.0, 60.0, 80.0, 100.0] {
            let now = admissible(&band, 2, committed, 10.0);
            assert!(last || !now, "acceptance must not recover as committed load grows");
            last = now;
        }
        assert!(!last);
    }

    #[test]
    fn empty_band_is_an_open_gate() {
        assert!(admissible(&[], 1, 1e9, 1e9));
    }
}
