//! Phase 2 — Classify: who failed, who arrived, what is pending.
//!
//! Draws the slot's disk-failure dice (spawning repair jobs for lost
//! redundancy), admits the batch jobs submitted during the slot (via a
//! cursor over the submission-ordered population — no per-slot scan), and
//! assembles the policy-visible [`crate::policy::JobView`]s for every
//! pending job into the scratch.

use super::{SlotContext, SlotScratch};
use crate::policy::{JobView, TOTAL_RHO};
use crate::simulation::{deadline_slot_for, Simulation, SiteState};
use gm_workload::{BatchJob, JobId};

/// What the classify phase observed, for the slot outcome.
pub(crate) struct Classified {
    pub jobs_submitted: usize,
    pub disk_failures: u64,
    pub tier_hot: u64,
    pub tier_warm: u64,
    pub tier_cold: u64,
    pub migrations_spawned: usize,
}

pub(crate) fn run(
    sim: &mut Simulation,
    ctx: &SlotContext,
    scratch: &mut SlotScratch,
) -> Classified {
    let s = ctx.slot;
    let now = ctx.now;

    // Failure injection: draw per disk, spawn repair jobs. Failures are a
    // home-site concern: the failure dice, repair-job table and rebuild
    // routing all live there (remote clusters hold no primary data).
    let SiteState { cluster, prev_spinups, .. } = &mut sim.sites[0];
    let failures_before = cluster.total_failures();
    if let Some(fail_spec) = sim.cfg.failures {
        for (d, prev) in prev_spinups.iter_mut().enumerate() {
            let spinups = cluster.disk_spinups(d);
            let cycles = spinups - *prev;
            *prev = spinups;
            let p = fail_spec.failure_probability(ctx.hours, cluster.disk_in_standby(d), cycles);
            if sim.failure_dice.draw(d, s) < p {
                let report = cluster.fail_disk(d, now);
                if report.rebuild_bytes > 0 {
                    let id = JobId(sim.next_repair_id);
                    sim.next_repair_id += 1;
                    sim.repair_jobs.insert(id, d);
                    sim.job_index.insert(id, sim.jobs.len());
                    sim.active_jobs.push(sim.jobs.len());
                    sim.jobs.push(BatchJob::new(
                        id,
                        gm_workload::BatchKind::Repair,
                        now,
                        now + gm_sim::SimDuration::from_hours(24),
                        report.rebuild_bytes,
                    ));
                }
            }
        }
    }
    let disk_failures = cluster.total_failures() - failures_before;

    // Batch arrivals land in the scratch staging buffer first — from the
    // event feed in service mode, else via a cursor over the
    // submission-ordered population (no per-slot scan). Both sources
    // deliver the same jobs in the same order, which is what makes a
    // feed-driven run byte-identical to its batch replay.
    let mut jobs_submitted = 0usize;
    let slot_end = ctx.slot_end;
    if let Some(feed) = sim.feed.as_mut() {
        feed.take_arrivals_before(s, slot_end, &mut scratch.feed_jobs);
    } else {
        scratch.feed_jobs.clear();
        let population = sim.workload.batch_jobs();
        while sim.arrivals_cursor < population.len() {
            let job = &population[sim.arrivals_cursor];
            if job.submit >= slot_end {
                break;
            }
            sim.arrivals_cursor += 1;
            scratch.feed_jobs.push(job.clone());
        }
    }
    let gated = sim.cfg.admission.is_some();
    for job in scratch.feed_jobs.drain(..) {
        if job.submit < ctx.now {
            // Parity with the historic in-slot filter (`submit >= start`);
            // unreachable for a submission-sorted population.
            continue;
        }
        if gated {
            // Deferrable external work faces the admission gate first; it
            // only enters the pool (and the submission counters) if the
            // admission phase accepts it.
            sim.admission_queue.push(job);
            continue;
        }
        sim.batch_report.jobs_submitted += 1;
        sim.batch_report.bytes_submitted += job.total_bytes;
        sim.job_index.insert(job.id, sim.jobs.len());
        sim.active_jobs.push(sim.jobs.len());
        sim.jobs.push(job);
        jobs_submitted += 1;
    }

    // Temperature step: fold the slot's access hits into the classifier
    // and turn its demote/promote picks into deferrable migration jobs —
    // their bytes enter the same pool the matcher prices, so migration
    // I/O competes for green slots like repair and batch work. A no-op
    // (all zeros, no jobs) when tiering is off.
    let mut tier = gm_storage::cluster::TierStep::default();
    let mut migrations_spawned = 0usize;
    if let Some(tcfg) = sim.cfg.tiering {
        tier = sim.sites[0].cluster.tier_step(ctx.hours, tcfg.max_migrations_per_slot);
        let deadline = now + gm_sim::SimDuration::from_hours(tcfg.migration_deadline_hours);
        for (objs, bytes, demote) in [
            (std::mem::take(&mut tier.demote), tier.demote_bytes, true),
            (std::mem::take(&mut tier.promote), tier.promote_bytes, false),
        ] {
            if objs.is_empty() || bytes == 0 {
                continue;
            }
            let id = JobId(sim.next_migration_id);
            sim.next_migration_id += 1;
            sim.migration_jobs.insert(id, crate::simulation::MigrationInfo { objs, demote });
            sim.job_index.insert(id, sim.jobs.len());
            sim.active_jobs.push(sim.jobs.len());
            sim.jobs.push(BatchJob::new(
                id,
                gm_workload::BatchKind::Migration,
                now,
                deadline,
                bytes,
            ));
            migrations_spawned += 1;
        }
    }

    // With admission off the pending set is final — build the policy's
    // columnar view now. With admission on the gate may still accept jobs
    // into the pool, so the admission phase builds it instead.
    if !gated {
        fill_job_columns(sim, ctx, scratch);
    }

    Classified {
        jobs_submitted,
        disk_failures,
        tier_hot: tier.hot,
        tier_warm: tier.warm,
        tier_cold: tier.cold,
        migrations_spawned,
    }
}

/// Columnar job table over the active (pending) jobs, in submission order
/// — one row pushed per job, landing in four parallel columns. Called by
/// classify when admission is off, and by the admission phase (after the
/// gate has settled the pending set) when it is on.
pub(crate) fn fill_job_columns(sim: &mut Simulation, ctx: &SlotContext, scratch: &mut SlotScratch) {
    let now = ctx.now;
    let pending_count = sim.active_jobs.len();
    let share_bps = sim.total_batch_bw * TOTAL_RHO / pending_count.max(1) as f64;
    scratch.jobs.clear();
    for &idx in &sim.active_jobs {
        let j = &sim.jobs[idx];
        debug_assert!(j.is_pending(), "active list holds only pending jobs");
        scratch.jobs.push(JobView {
            id: j.id,
            remaining_bytes: j.remaining_bytes,
            deadline_slot: deadline_slot_for(ctx.clock, j.deadline),
            critical: j.is_critical(now, share_bps),
        });
    }
}
