//! Property tests for the simulation kernel's core data structures.

use gm_sim::dist::Zipf;
use gm_sim::time::{SimDuration, SimTime};
use gm_sim::{EventQueue, LogHistogram, SlotClock, StreamingStats, TimeSeries};
use proptest::prelude::*;

proptest! {
    #[test]
    fn event_queue_pops_in_time_then_fifo_order(
        events in proptest::collection::vec((0u64..1_000, 0u32..100), 0..200)
    ) {
        let mut q = EventQueue::new();
        for (i, (t, tag)) in events.iter().enumerate() {
            q.push(SimTime(*t), (*tag, i));
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        let mut popped = 0;
        while let Some((t, (_, seq))) = q.pop() {
            prop_assert!(t >= last_time, "time monotone");
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(seq > prev, "FIFO among ties");
                }
            } else {
                last_time = t;
            }
            last_seq_at_time = Some(seq);
            popped += 1;
        }
        prop_assert_eq!(popped, events.len());
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bounded(
        values in proptest::collection::vec(1e-6f64..1e3, 1..500)
    ) {
        let mut h = LogHistogram::for_latency_secs();
        for &v in &values {
            h.record(v);
        }
        let max = values.iter().copied().fold(0.0, f64::max);
        let mut prev = 0.0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = h.quantile(q);
            prop_assert!(x >= prev - 1e-12, "quantiles monotone in q");
            prop_assert!(x <= max + 1e-12, "quantile never exceeds max");
            prev = x;
        }
        prop_assert_eq!(h.quantile(1.0), max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-9 * values.len() as f64);
    }

    #[test]
    fn histogram_quantile_never_under_estimates(
        values in proptest::collection::vec(1e-7f64..1e4, 1..400),
        bpd in 1u32..30,
    ) {
        // The documented contract: a quantile estimate is the upper bound
        // of the bucket holding the target observation, so it may never be
        // below the exact order statistic and may exceed it by at most one
        // bucket width (one geometric factor), or sit in the floor bucket.
        let factor = 10f64.powf(1.0 / bpd as f64);
        let mut values = values;
        // Salt the sample with values exactly on bucket edges — the
        // historical failure mode of the split ln/powi bucket mapping.
        for k in [1i32, 2, 7, 40, 100] {
            values.push(1e-6 * factor.powi(k));
        }
        let mut h = LogHistogram::new(1e-6, bpd);
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.1, 0.5, 0.9, 0.99, 1.0] {
            let target = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let exact = sorted[target - 1];
            let est = h.quantile(q);
            prop_assert!(est >= exact, "q={}: est {} under-estimates exact {}", q, est, exact);
            let bound = (exact * factor).max(1e-6) * (1.0 + 1e-12);
            prop_assert!(est <= bound, "q={}: est {} > one bucket over exact {}", q, est, exact);
        }
    }

    #[test]
    fn histogram_merge_matches_sequential(
        a in proptest::collection::vec(1e-6f64..1e2, 0..200),
        b in proptest::collection::vec(1e-6f64..1e2, 0..200),
    ) {
        let mut ha = LogHistogram::for_latency_secs();
        let mut hb = LogHistogram::for_latency_secs();
        let mut hall = LogHistogram::for_latency_secs();
        for &v in &a { ha.record(v); hall.record(v); }
        for &v in &b { hb.record(v); hall.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hall.count());
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(ha.quantile(q).to_bits(), hall.quantile(q).to_bits());
        }
    }

    #[test]
    fn streaming_stats_merge_matches_sequential(
        a in proptest::collection::vec(-1e3f64..1e3, 0..200),
        b in proptest::collection::vec(-1e3f64..1e3, 0..200),
    ) {
        let mut sa = StreamingStats::new();
        let mut sb = StreamingStats::new();
        let mut sall = StreamingStats::new();
        for &v in &a { sa.record(v); sall.record(v); }
        for &v in &b { sb.record(v); sall.record(v); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), sall.count());
        prop_assert!((sa.mean() - sall.mean()).abs() < 1e-6);
        prop_assert!((sa.variance() - sall.variance()).abs() < 1e-3);
    }

    #[test]
    fn timeseries_surplus_deficit_decompose(
        g in proptest::collection::vec(0.0f64..1e4, 1..100),
        w in proptest::collection::vec(0.0f64..1e4, 1..100),
    ) {
        let clock = SlotClock::hourly();
        let n = g.len().max(w.len());
        let gs = TimeSeries::from_values(clock, g);
        let ws = TimeSeries::from_values(clock, w);
        let surplus = gs.surplus_over(&ws);
        let deficit = ws.surplus_over(&gs);
        for s in 0..n {
            // g - w == surplus - deficit, and at most one side is nonzero.
            let diff = gs.get(s) - ws.get(s);
            prop_assert!((surplus.get(s) - deficit.get(s) - diff).abs() < 1e-9);
            prop_assert!(surplus.get(s) == 0.0 || deficit.get(s) == 0.0);
            prop_assert!(surplus.get(s) >= 0.0 && deficit.get(s) >= 0.0);
        }
    }

    #[test]
    fn timeseries_energy_is_linear(
        v in proptest::collection::vec(0.0f64..1e4, 1..100),
        k in 0.0f64..10.0,
    ) {
        let clock = SlotClock::hourly();
        let ts = TimeSeries::from_values(clock, v);
        prop_assert!((ts.scaled(k).energy_wh() - ts.energy_wh() * k).abs() < 1e-6);
        prop_assert!((ts.plus(&ts).energy_wh() - 2.0 * ts.energy_wh()).abs() < 1e-6);
    }

    #[test]
    fn downsample_preserves_energy_for_exact_multiples(
        v in proptest::collection::vec(0.0f64..1e4, 1..25),
    ) {
        // 4 fine slots per coarse slot, padded to an exact multiple.
        let mut v = v;
        while v.len() % 4 != 0 {
            v.push(0.0);
        }
        let fine = SlotClock::new(SimDuration::from_mins(15));
        let ts = TimeSeries::from_values(fine, v);
        let coarse = ts.downsample_to(SlotClock::hourly());
        prop_assert!((coarse.energy_wh() - ts.energy_wh()).abs() < 1e-6);
    }

    #[test]
    fn zipf_pmf_is_normalised_and_monotone(n in 1usize..300, s in 0.0f64..2.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for k in 1..n {
            prop_assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12, "pmf monotone non-increasing");
        }
    }
}
