//! Fixed-width slot time series.
//!
//! Energy accounting in GreenMatch is slot-granular: renewable production,
//! cluster draw and battery flows are all per-slot averages (W) or totals
//! (Wh). [`TimeSeries`] stores one `f64` per slot and provides the
//! integration, resampling and element-wise algebra the ledger and the
//! experiment harness need.

use crate::time::{SimTime, SlotClock, SlotIdx};
use serde::{Deserialize, Serialize};

/// A per-slot `f64` series aligned to a [`SlotClock`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    clock: SlotClock,
    values: Vec<f64>,
}

impl TimeSeries {
    /// An all-zero series of `n` slots.
    pub fn zeros(clock: SlotClock, n: usize) -> Self {
        TimeSeries { clock, values: vec![0.0; n] }
    }

    /// Wrap existing per-slot values.
    pub fn from_values(clock: SlotClock, values: Vec<f64>) -> Self {
        TimeSeries { clock, values }
    }

    /// Build by evaluating `f(slot_midpoint_time)` for each slot — the usual
    /// way supply models materialise a week.
    pub fn from_fn(clock: SlotClock, n: usize, mut f: impl FnMut(SimTime) -> f64) -> Self {
        let half = clock.width() / 2;
        let values = (0..n).map(|s| f(clock.slot_start(s) + half)).collect();
        TimeSeries { clock, values }
    }

    /// The slot clock this series is aligned to.
    pub fn clock(&self) -> SlotClock {
        self.clock
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series has no slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value of slot `s`; zero beyond the end (series act as finite-support
    /// signals).
    pub fn get(&self, s: SlotIdx) -> f64 {
        self.values.get(s).copied().unwrap_or(0.0)
    }

    /// Set slot `s`, growing the series with zeros if needed.
    pub fn set(&mut self, s: SlotIdx, v: f64) {
        if s >= self.values.len() {
            self.values.resize(s + 1, 0.0);
        }
        self.values[s] = v;
    }

    /// Add `v` into slot `s`, growing as needed.
    pub fn add(&mut self, s: SlotIdx, v: f64) {
        if s >= self.values.len() {
            self.values.resize(s + 1, 0.0);
        }
        self.values[s] += v;
    }

    /// Raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate `(slot, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SlotIdx, f64)> + '_ {
        self.values.iter().copied().enumerate()
    }

    /// Sum of all slot values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Maximum slot value (0 for an empty series).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean slot value (0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.sum() / self.values.len() as f64
        }
    }

    /// Interpreting the series as average **power in watts** per slot,
    /// integrate to **energy in watt-hours** over the whole horizon.
    pub fn energy_wh(&self) -> f64 {
        self.sum() * self.clock.width_hours()
    }

    /// Energy (Wh) of a single slot under the power interpretation.
    pub fn slot_energy_wh(&self, s: SlotIdx) -> f64 {
        self.get(s) * self.clock.width_hours()
    }

    /// Element-wise `self - other`, truncated/padded to `self`'s length,
    /// clamped at zero: the "surplus of A over B" operator used for
    /// green-surplus computation.
    pub fn surplus_over(&self, other: &TimeSeries) -> TimeSeries {
        let values = (0..self.len()).map(|s| (self.get(s) - other.get(s)).max(0.0)).collect();
        TimeSeries { clock: self.clock, values }
    }

    /// Element-wise sum; result has the longer length.
    pub fn plus(&self, other: &TimeSeries) -> TimeSeries {
        let n = self.len().max(other.len());
        let values = (0..n).map(|s| self.get(s) + other.get(s)).collect();
        TimeSeries { clock: self.clock, values }
    }

    /// Scale every slot by `k`.
    pub fn scaled(&self, k: f64) -> TimeSeries {
        TimeSeries { clock: self.clock, values: self.values.iter().map(|v| v * k).collect() }
    }

    /// Resample to a clock with a width that is an integer multiple of the
    /// current one, averaging (power interpretation preserved).
    pub fn downsample_to(&self, coarse: SlotClock) -> TimeSeries {
        let ratio = coarse.width().0 / self.clock.width().0;
        assert!(
            ratio >= 1 && coarse.width().0.is_multiple_of(self.clock.width().0),
            "downsample target width must be an integer multiple of source width"
        );
        let ratio = ratio as usize;
        let n = self.len().div_ceil(ratio);
        let mut values = Vec::with_capacity(n);
        for c in 0..n {
            let lo = c * ratio;
            let hi = ((c + 1) * ratio).min(self.len());
            let sum: f64 = self.values[lo..hi].iter().sum();
            values.push(sum / ratio as f64);
        }
        TimeSeries { clock: coarse, values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn hourly(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(SlotClock::hourly(), vals.to_vec())
    }

    #[test]
    fn energy_integration() {
        // 100 W for 3 hours = 300 Wh.
        let s = hourly(&[100.0, 100.0, 100.0]);
        assert!((s.energy_wh() - 300.0).abs() < 1e-9);
        assert!((s.slot_energy_wh(1) - 100.0).abs() < 1e-9);
        // 15-minute slots: same power, quarter energy per slot.
        let c = SlotClock::new(SimDuration::from_mins(15));
        let q = TimeSeries::from_values(c, vec![100.0; 12]);
        assert!((q.energy_wh() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn get_beyond_end_is_zero_and_set_grows() {
        let mut s = hourly(&[1.0]);
        assert_eq!(s.get(5), 0.0);
        s.set(3, 7.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(2), 0.0);
        assert_eq!(s.get(3), 7.0);
        s.add(3, 1.0);
        assert_eq!(s.get(3), 8.0);
        s.add(10, 2.0);
        assert_eq!(s.len(), 11);
    }

    #[test]
    fn surplus_is_clamped() {
        let g = hourly(&[5.0, 10.0, 2.0]);
        let w = hourly(&[7.0, 4.0, 2.0]);
        let surplus = g.surplus_over(&w);
        assert_eq!(surplus.values(), &[0.0, 6.0, 0.0]);
        let deficit = w.surplus_over(&g);
        assert_eq!(deficit.values(), &[2.0, 0.0, 0.0]);
    }

    #[test]
    fn plus_and_scale() {
        let a = hourly(&[1.0, 2.0]);
        let b = hourly(&[10.0, 20.0, 30.0]);
        assert_eq!(a.plus(&b).values(), &[11.0, 22.0, 30.0]);
        assert_eq!(a.scaled(3.0).values(), &[3.0, 6.0]);
    }

    #[test]
    fn stats() {
        let s = hourly(&[1.0, 3.0, 8.0]);
        assert_eq!(s.sum(), 12.0);
        assert_eq!(s.max(), 8.0);
        assert_eq!(s.mean(), 4.0);
        let e = TimeSeries::zeros(SlotClock::hourly(), 0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), 0.0);
        assert!(e.is_empty());
    }

    #[test]
    fn from_fn_uses_midpoints() {
        let s = TimeSeries::from_fn(SlotClock::hourly(), 3, |t| t.as_hours_f64());
        assert_eq!(s.values(), &[0.5, 1.5, 2.5]);
    }

    #[test]
    fn downsample_averages() {
        let fine = SlotClock::new(SimDuration::from_mins(30));
        let s = TimeSeries::from_values(fine, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
        let coarse = s.downsample_to(SlotClock::hourly());
        // pairs (2,4), (6,8), (10, pad->only 10 summed over ratio 2)
        assert_eq!(coarse.len(), 3);
        assert_eq!(coarse.get(0), 3.0);
        assert_eq!(coarse.get(1), 7.0);
        assert_eq!(coarse.get(2), 5.0);
        assert!((s.energy_wh() - 15.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "integer multiple")]
    fn downsample_bad_ratio_panics() {
        let s = hourly(&[1.0]);
        let _ = s.downsample_to(SlotClock::new(SimDuration::from_mins(90)));
    }
}
