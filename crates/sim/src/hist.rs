//! Log-bucketed histogram for latency distributions.
//!
//! Latencies in the storage substrate span six orders of magnitude (µs cache
//! hits to 10 s spin-up waits), so a fixed-width histogram is useless.
//! [`LogHistogram`] uses geometrically-spaced buckets with a configurable
//! precision (buckets per decade); quantile queries return the upper bound of
//! the bucket containing the quantile, i.e. an over-estimate by at most one
//! bucket width — the standard HDR-style trade-off.

use serde::{Deserialize, Serialize};

/// Geometric-bucket histogram over positive values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Lower bound of the first bucket; values below land in bucket 0.
    floor: f64,
    /// Geometric growth factor between bucket bounds.
    factor: f64,
    /// `ln(factor)` cached for index computation.
    ln_factor: f64,
    /// `ln(floor)` cached.
    ln_floor: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max_seen: f64,
    /// Single-entry memo of the last value → bucket mapping, keyed by the
    /// value's bit pattern. Latency streams are full of exact repeats
    /// (every RAM-cache hit is the same constant), and the memo turns
    /// those `record` calls from an `ln()` into a bit compare. Pure
    /// acceleration state: excluded from serialization, and the `(0, 0)`
    /// default is self-consistent (`0.0` maps to bucket 0).
    #[serde(default, skip_serializing_if = "always_skip")]
    memo_bits: u64,
    #[serde(default, skip_serializing_if = "always_skip")]
    memo_bucket: usize,
}

fn always_skip<T>(_: &T) -> bool {
    true
}

impl LogHistogram {
    /// Histogram starting at `floor` with `buckets_per_decade` geometric
    /// buckets per ×10 range.
    pub fn new(floor: f64, buckets_per_decade: u32) -> Self {
        assert!(floor > 0.0, "floor must be positive");
        assert!(buckets_per_decade > 0);
        let factor = 10f64.powf(1.0 / buckets_per_decade as f64);
        LogHistogram {
            floor,
            factor,
            ln_factor: factor.ln(),
            ln_floor: floor.ln(),
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            max_seen: 0.0,
            memo_bits: 0,
            memo_bucket: 0,
        }
    }

    /// Default latency histogram: floor 1 µs (in seconds), 20 buckets per
    /// decade (≈12 % relative quantile error).
    pub fn for_latency_secs() -> Self {
        LogHistogram::new(1e-6, 20)
    }

    /// Bucket index of value `v`: the smallest `i` with
    /// `v <= bucket_upper(i)`. The ln-based estimate only seeds the search;
    /// the answer is always settled against [`Self::bucket_upper`] itself,
    /// so the two functions share one integer mapping by construction and a
    /// value exactly on a bucket edge can never land in a bucket whose
    /// upper bound is below it (which would make `quantile` under-report).
    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.floor {
            return 0;
        }
        let mut i =
            (((v.ln() - self.ln_floor) / self.ln_factor).floor() as usize).saturating_add(1);
        // The float estimate is off by at most a few ulps of an index;
        // nudge it until the defining inequalities hold exactly:
        // bucket_upper(i-1) < v <= bucket_upper(i).
        while i > 0 && v <= self.bucket_upper(i - 1) {
            i -= 1;
        }
        while v > self.bucket_upper(i) {
            // Terminates: bucket_upper grows monotonically to +inf (powi
            // overflow saturates at inf, and `v > inf` is false).
            i += 1;
        }
        i
    }

    /// Upper bound of bucket `i` — the single source of truth for bucket
    /// geometry ([`Self::bucket_of`] is derived from it).
    fn bucket_upper(&self, i: usize) -> f64 {
        if i == 0 {
            self.floor
        } else {
            self.floor * self.factor.powi(i.min(i32::MAX as usize) as i32)
        }
    }

    /// Record one observation (non-negative; zeros count in bucket 0).
    pub fn record(&mut self, v: f64) {
        debug_assert!(v >= 0.0 && v.is_finite(), "bad histogram value {v}");
        let bits = v.to_bits();
        let b = if bits == self.memo_bits {
            self.memo_bucket
        } else {
            let b = self.bucket_of(v);
            self.memo_bits = bits;
            self.memo_bucket = b;
            b
        };
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v;
        if v > self.max_seen {
            self.max_seen = v;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of recorded values (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Value at quantile `q ∈ [0, 1]`: the upper bound of the bucket holding
    /// the `ceil(q·n)`-th observation (never under-estimates by more than
    /// one bucket). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1], got {q}");
        if self.total == 0 {
            return 0.0;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                // Cap at the true max so p100 is exact.
                return self.bucket_upper(i).min(self.max_seen.max(self.floor));
            }
        }
        self.max_seen
    }

    /// Forget every observation while keeping the bucket allocation, so a
    /// per-slot histogram can be reused without reallocating its counts.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.sum = 0.0;
        self.max_seen = 0.0;
    }

    /// Merge another histogram with identical geometry.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            (self.floor - other.floor).abs() < f64::EPSILON
                && (self.factor - other.factor).abs() < f64::EPSILON,
            "histogram geometry mismatch"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoised_repeats_match_cold_bucketing() {
        // Alternating repeats exercise both memo hits and memo refreshes;
        // a histogram fed value-by-value through a fresh instance (never a
        // memo hit past the first) must agree on every statistic.
        let values = [2e-4, 2e-4, 2e-4, 0.013, 2e-4, 0.0, 0.013, 0.013, 5.0, 2e-4];
        let mut memoed = LogHistogram::for_latency_secs();
        for v in values {
            memoed.record(v);
        }
        // Reference: same multiset in reverse order — different memo
        // hit/miss pattern, and bucket counts are order-independent, so
        // any memo inconsistency shows up as a statistic mismatch.
        let mut shuffled = values;
        shuffled.reverse();
        let mut cold = LogHistogram::for_latency_secs();
        for v in shuffled {
            cold.record(v);
        }
        assert_eq!(memoed.count(), cold.count());
        // Mean sums in recording order; reversal reassociates the float
        // sum, so compare with tolerance (the memo never touches `sum`).
        assert!((memoed.mean() - cold.mean()).abs() < 1e-15);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(memoed.quantile(q), cold.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_is_zero() {
        let h = LogHistogram::for_latency_secs();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LogHistogram::for_latency_secs();
        for v in [0.001, 0.002, 0.003] {
            h.record(v);
        }
        assert!((h.mean() - 0.002).abs() < 1e-12);
        assert_eq!(h.max(), 0.003);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_bounds_relative_error() {
        let mut h = LogHistogram::new(1e-6, 20);
        let values: Vec<f64> = (1..=1000).map(|i| i as f64 * 1e-4).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.5f64, 0.9, 0.99] {
            let exact = values[((q * 1000.0).ceil() as usize).max(1) - 1];
            let est = h.quantile(q);
            assert!(est >= exact * 0.999, "q{q}: est {est} < exact {exact}");
            // 20 buckets/decade => factor ~1.122; allow 13% overshoot.
            assert!(est <= exact * 1.13, "q{q}: est {est} >> exact {exact}");
        }
    }

    #[test]
    fn bucket_mapping_agrees_on_exact_edges() {
        // `bucket_of` and `bucket_upper` must share one integer mapping:
        // a value exactly equal to a bucket's upper bound belongs to that
        // bucket, so `bucket_upper(bucket_of(v)) >= v` holds with equality
        // on edges and a single recorded edge value quantiles to itself.
        for bpd in [1u32, 3, 7, 10, 20, 29] {
            let h = LogHistogram::new(1e-6, bpd);
            for k in 0..300 {
                let edge = h.bucket_upper(k);
                if !edge.is_finite() {
                    break;
                }
                assert_eq!(h.bucket_of(edge), k, "bpd={bpd} k={k} edge={edge}");
                assert!(h.bucket_upper(h.bucket_of(edge)) >= edge);
                let mut one = LogHistogram::new(1e-6, bpd);
                one.record(edge);
                assert_eq!(one.quantile(0.99), edge, "bpd={bpd} k={k}");
            }
        }
    }

    #[test]
    fn extreme_values_never_under_report() {
        // Indices far past `powi`'s overflow point must saturate at +inf
        // inside the mapping, leaving quantiles capped by the exact max
        // rather than wrapped into an under-estimate.
        let mut h = LogHistogram::new(1e-6, 30);
        for v in [1e300, f64::MAX, 1.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), f64::MAX);
        assert!(h.quantile(0.5) >= 1e300);
    }

    #[test]
    fn p100_equals_max() {
        let mut h = LogHistogram::for_latency_secs();
        for v in [0.5, 1.0, 7.25] {
            h.record(v);
        }
        assert_eq!(h.quantile(1.0), 7.25);
    }

    #[test]
    fn tiny_values_land_in_floor_bucket() {
        let mut h = LogHistogram::new(1e-6, 10);
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) <= 1e-6);
    }

    #[test]
    fn merge_equivalent_to_sequential() {
        let mut a = LogHistogram::new(1e-6, 20);
        let mut b = LogHistogram::new(1e-6, 20);
        let mut all = LogHistogram::new(1e-6, 20);
        for i in 1..500 {
            let v = i as f64 * 3.3e-5;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn merge_geometry_mismatch_panics() {
        let mut a = LogHistogram::new(1e-6, 20);
        let b = LogHistogram::new(1e-6, 10);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn bad_quantile_panics() {
        let h = LogHistogram::for_latency_secs();
        let _ = h.quantile(1.5);
    }
}
