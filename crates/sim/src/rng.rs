//! Named, independently-seeded RNG streams.
//!
//! Every stochastic component (interactive arrivals, batch sizes, cloud
//! cover, wind process, …) draws from its **own** stream derived from the
//! experiment's master seed and a stream name. Adding a new consumer of
//! randomness therefore never perturbs the draws of existing components —
//! the property that makes A/B policy comparisons on "the same workload"
//! meaningful.
//!
//! Streams are `rand::rngs::SmallRng` seeded by a SplitMix64 hash of
//! `(master_seed, stream_name)`.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// SplitMix64 step: a high-quality 64-bit mixer used to derive stream seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over bytes; stable across platforms and Rust versions (unlike
/// `DefaultHasher`), which matters because stream seeds must be durable.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Derives independent named RNG streams from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// A factory for the given master seed.
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Derive the 64-bit seed for stream `name`.
    pub fn seed_for(&self, name: &str) -> u64 {
        let mut state = self.master ^ fnv1a(name.as_bytes());
        // Two mixing rounds decorrelate master/name contributions.
        let a = splitmix64(&mut state);
        splitmix64(&mut state) ^ a.rotate_left(17)
    }

    /// A fresh RNG for stream `name`. Calling twice with the same name gives
    /// identical streams (useful for replay).
    pub fn stream(&self, name: &str) -> SmallRng {
        SmallRng::seed_from_u64(self.seed_for(name))
    }

    /// A fresh RNG for an indexed family of streams, e.g. one per disk.
    pub fn indexed_stream(&self, name: &str, index: u64) -> SmallRng {
        let mut state = self.seed_for(name) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SmallRng::seed_from_u64(splitmix64(&mut state))
    }

    /// A fresh RNG for a two-dimensional family of streams, keyed by
    /// `(a, b)` — e.g. one per `(stream, slot)` pair. Counter-based like
    /// [`Self::indexed_stream`]: the seed is a pure function of
    /// `(master, name, a, b)`, so any subset of the family can be
    /// synthesised independently, in any order, on any shard.
    pub fn keyed_stream(&self, name: &str, a: u64, b: u64) -> SmallRng {
        SmallRng::seed_from_u64(Self::keyed_seed(self.seed_for(name), a, b))
    }

    /// The seed [`Self::keyed_stream`] derives, split out so callers
    /// iterating one axis can pre-mix the other: with
    /// `base = seed_for(name)`, a column of `base ^ a·K₁` values lets the
    /// per-`(a, b)` seed be finished with one xor and one SplitMix round.
    /// The two axes use distinct odd multipliers so `(a, b)` and `(b, a)`
    /// land on unrelated seeds.
    pub fn keyed_seed(base: u64, a: u64, b: u64) -> u64 {
        let mut state =
            base ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_name_same_stream() {
        let f = RngFactory::new(42);
        let a: Vec<u64> =
            f.stream("arrivals").sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> =
            f.stream("arrivals").sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_names_different_streams() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("arrivals").gen();
        let b: u64 = f.stream("clouds").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_masters_different_streams() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_distinct_and_stable() {
        let f = RngFactory::new(7);
        let a: u64 = f.indexed_stream("disk", 0).gen();
        let b: u64 = f.indexed_stream("disk", 1).gen();
        let a2: u64 = f.indexed_stream("disk", 0).gen();
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn seeds_are_platform_stable() {
        // Golden values: if these change, previously published experiment
        // outputs are no longer reproducible — bump deliberately only.
        let f = RngFactory::new(0xDEADBEEF);
        assert_eq!(f.seed_for("arrivals"), f.seed_for("arrivals"));
        assert_ne!(f.seed_for("arrivals"), f.seed_for("arrival"));
        assert_ne!(f.seed_for(""), 0);
    }

    #[test]
    fn keyed_streams_are_distinct_stable_and_axis_asymmetric() {
        let f = RngFactory::new(7);
        let a: u64 = f.keyed_stream("req", 3, 9).gen();
        let a2: u64 = f.keyed_stream("req", 3, 9).gen();
        assert_eq!(a, a2);
        assert_ne!(a, f.keyed_stream("req", 4, 9).gen::<u64>());
        assert_ne!(a, f.keyed_stream("req", 3, 10).gen::<u64>());
        assert_ne!(a, f.keyed_stream("req", 9, 3).gen::<u64>(), "axes are not symmetric");
        assert_ne!(a, f.keyed_stream("other", 3, 9).gen::<u64>());
    }

    #[test]
    fn keyed_seed_premix_matches_keyed_stream() {
        // The contract callers of the split form rely on: pre-mixing the
        // `a` axis into a column and finishing with the `b` axis later
        // yields exactly the keyed_stream seed.
        let f = RngFactory::new(99);
        let base = f.seed_for("req");
        let premixed = base ^ 5u64.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut state = premixed ^ 11u64.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let finished = splitmix64(&mut state);
        assert_eq!(finished, RngFactory::keyed_seed(base, 5, 11));
        let direct: u64 = f.keyed_stream("req", 5, 11).gen();
        let via_seed: u64 = SmallRng::seed_from_u64(finished).gen();
        assert_eq!(direct, via_seed);
    }

    #[test]
    fn splitmix_is_not_identity() {
        let mut s = 0u64;
        let v1 = splitmix64(&mut s);
        let v2 = splitmix64(&mut s);
        assert_ne!(v1, v2);
        assert_ne!(v1, 0);
    }
}
