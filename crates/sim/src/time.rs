//! Integer simulation time.
//!
//! All simulation time is counted in **microseconds since simulation start**
//! as a `u64`. Using integers (rather than `f64` seconds) keeps event
//! ordering exact and runs bit-for-bit reproducible; a `u64` of microseconds
//! covers ~584 000 years, far beyond any experiment horizon.
//!
//! Scheduling in GreenMatch operates on *slots* (1 hour by default). The
//! [`SlotClock`] maps between continuous sim time and slot indices.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Microseconds in one minute.
pub const MICROS_PER_MIN: u64 = 60 * MICROS_PER_SEC;
/// Microseconds in one hour.
pub const MICROS_PER_HOUR: u64 = 60 * MICROS_PER_MIN;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = 24 * MICROS_PER_HOUR;

/// An absolute instant in simulation time (µs since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation origin, t = 0.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * MICROS_PER_SEC)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimTime(m * MICROS_PER_MIN)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimTime(h * MICROS_PER_HOUR)
    }

    /// Construct from whole days.
    pub fn from_days(d: u64) -> Self {
        SimTime(d * MICROS_PER_DAY)
    }

    /// This instant expressed as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// This instant expressed as fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Hour-of-day in `[0, 24)`, useful for diurnal models.
    pub fn hour_of_day(self) -> f64 {
        (self.0 % MICROS_PER_DAY) as f64 / MICROS_PER_HOUR as f64
    }

    /// Whole days elapsed since the origin.
    pub fn day_index(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Saturating subtraction: `self - other`, clamped at zero.
    pub fn saturating_sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked duration since an earlier instant.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "duration_since: {self:?} < {earlier:?}");
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest µs.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0 && s.is_finite(), "negative/NaN duration: {s}");
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Construct from whole minutes.
    pub fn from_mins(m: u64) -> Self {
        SimDuration(m * MICROS_PER_MIN)
    }

    /// Construct from whole hours.
    pub fn from_hours(h: u64) -> Self {
        SimDuration(h * MICROS_PER_HOUR)
    }

    /// Construct from whole days.
    pub fn from_days(d: u64) -> Self {
        SimDuration(d * MICROS_PER_DAY)
    }

    /// Span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Span as fractional hours — the natural unit when converting average
    /// power (W) into energy (Wh).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_HOUR as f64
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / MICROS_PER_DAY;
        let rem = self.0 % MICROS_PER_DAY;
        let h = rem / MICROS_PER_HOUR;
        let m = (rem % MICROS_PER_HOUR) / MICROS_PER_MIN;
        let s = (rem % MICROS_PER_MIN) as f64 / MICROS_PER_SEC as f64;
        write!(f, "d{d}+{h:02}:{m:02}:{s:06.3}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= MICROS_PER_HOUR {
            write!(f, "{:.3}h", self.as_hours_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

/// Index of a scheduling slot (0-based from simulation start).
pub type SlotIdx = usize;

/// Maps between continuous [`SimTime`] and discrete scheduling slots.
///
/// GreenMatch takes all scheduling decisions at slot boundaries; renewable
/// production, workload power and battery state are likewise accounted per
/// slot. The default slot width is one hour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotClock {
    width: SimDuration,
}

impl SlotClock {
    /// A clock with the given slot width. Panics on a zero width.
    pub fn new(width: SimDuration) -> Self {
        assert!(width.0 > 0, "slot width must be positive");
        SlotClock { width }
    }

    /// The paper-era default: 1 hour slots.
    pub fn hourly() -> Self {
        SlotClock::new(SimDuration::from_hours(1))
    }

    /// Slot width.
    pub fn width(&self) -> SimDuration {
        self.width
    }

    /// Slot width in fractional hours.
    pub fn width_hours(&self) -> f64 {
        self.width.as_hours_f64()
    }

    /// The slot containing instant `t`.
    pub fn slot_of(&self, t: SimTime) -> SlotIdx {
        (t.0 / self.width.0) as SlotIdx
    }

    /// Start instant of slot `s`.
    pub fn slot_start(&self, s: SlotIdx) -> SimTime {
        SimTime(s as u64 * self.width.0)
    }

    /// End instant (exclusive) of slot `s`.
    pub fn slot_end(&self, s: SlotIdx) -> SimTime {
        SimTime((s as u64 + 1) * self.width.0)
    }

    /// Number of whole slots covering `horizon`.
    pub fn slots_in(&self, horizon: SimDuration) -> usize {
        (horizon.0 / self.width.0) as usize
    }

    /// Number of slots per 24 h day (assumes the width divides a day).
    pub fn slots_per_day(&self) -> usize {
        (MICROS_PER_DAY / self.width.0) as usize
    }

    /// Remaining time from `t` to the end of its slot.
    pub fn remaining_in_slot(&self, t: SimTime) -> SimDuration {
        let end = self.slot_end(self.slot_of(t));
        end.duration_since(t)
    }
}

impl Default for SlotClock {
    fn default() -> Self {
        SlotClock::hourly()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_hours(2).0, 2 * MICROS_PER_HOUR);
        assert_eq!(SimTime::from_days(1), SimTime::from_hours(24));
        assert_eq!(SimDuration::from_mins(60), SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_secs_f64(1.5).0, 1_500_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_hours(5);
        let d = SimDuration::from_mins(30);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d).duration_since(t), d);
        assert_eq!(d * 2, SimDuration::from_hours(1));
        assert_eq!(SimDuration::from_hours(1) / 4, SimDuration::from_mins(15));
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_days(3) + SimDuration::from_hours(7) + SimDuration::from_mins(30);
        assert!((t.hour_of_day() - 7.5).abs() < 1e-9);
        assert_eq!(t.day_index(), 3);
    }

    #[test]
    fn slot_clock_maps_boundaries() {
        let c = SlotClock::hourly();
        assert_eq!(c.slot_of(SimTime::ZERO), 0);
        assert_eq!(c.slot_of(SimTime(MICROS_PER_HOUR - 1)), 0);
        assert_eq!(c.slot_of(SimTime(MICROS_PER_HOUR)), 1);
        assert_eq!(c.slot_start(3), SimTime::from_hours(3));
        assert_eq!(c.slot_end(3), SimTime::from_hours(4));
        assert_eq!(c.slots_in(SimDuration::from_days(7)), 168);
        assert_eq!(c.slots_per_day(), 24);
    }

    #[test]
    fn remaining_in_slot() {
        let c = SlotClock::hourly();
        let t = SimTime::from_hours(2) + SimDuration::from_mins(45);
        assert_eq!(c.remaining_in_slot(t), SimDuration::from_mins(15));
        assert_eq!(c.remaining_in_slot(SimTime::from_hours(2)), SimDuration::from_hours(1));
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(1) + SimDuration::from_hours(2) + SimDuration::from_secs(3);
        assert_eq!(format!("{t}"), "d1+02:00:03.000");
        assert_eq!(format!("{}", SimDuration::from_mins(90)), "1.500h");
        assert_eq!(format!("{}", SimDuration::from_millis(250)), "0.250s");
        assert_eq!(format!("{}", SimDuration::from_micros(42)), "42us");
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_hours(1);
        let b = SimTime::from_hours(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_hours(1));
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "slot width must be positive")]
    fn zero_slot_width_panics() {
        let _ = SlotClock::new(SimDuration::ZERO);
    }
}
