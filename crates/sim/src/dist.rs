//! Probability distributions used by the workload and energy models.
//!
//! Implemented directly against [`rand::Rng`] so the workspace needs no
//! extra distribution crate. Each sampler documents the algorithm it uses;
//! all are standard textbook methods chosen for determinism and clarity over
//! micro-performance (sampling is nowhere near the simulation hot path).

use rand::Rng;

/// Draw `u ∈ (0, 1)` — open at both ends so `ln(u)` is always finite.
#[inline]
fn open_unit<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen();
        if u > 0.0 && u < 1.0 {
            return u;
        }
    }
}

/// Standard normal via the Box–Muller transform (one value per call; the
/// second value is intentionally discarded to keep samplers stateless).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1 = open_unit(rng);
    let u2 = open_unit(rng);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0);
    mean + std_dev * standard_normal(rng)
}

/// Exponential with rate `lambda` (mean `1/lambda`), via inverse CDF.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "exponential rate must be positive, got {lambda}");
    -open_unit(rng).ln() / lambda
}

/// Poisson with mean `lambda`.
///
/// Uses Knuth's product method for small means and a normal approximation
/// (with continuity correction, clamped at zero) for `lambda > 30`, where the
/// approximation error is far below the noise floor of any experiment here.
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "poisson mean must be non-negative, got {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        let x = normal(rng, lambda, lambda.sqrt());
        return (x + 0.5).max(0.0) as u64;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= open_unit(rng);
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Weibull with shape `k` and scale `lambda`, via inverse CDF.
/// `k ≈ 2` is the classic fit for wind-speed distributions.
pub fn weibull<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0 && scale > 0.0, "weibull parameters must be positive");
    scale * (-open_unit(rng).ln()).powf(1.0 / shape)
}

/// Lognormal parameterised by the mean and std-dev of the *underlying*
/// normal (`mu`, `sigma`). Classic model for I/O request sizes.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Lognormal parameterised by its own mean and coefficient of variation —
/// friendlier for workload configs ("mean 256 KiB, cv 1.5").
pub fn lognormal_mean_cv<R: Rng + ?Sized>(rng: &mut R, mean: f64, cv: f64) -> f64 {
    assert!(mean > 0.0 && cv >= 0.0);
    if cv == 0.0 {
        return mean;
    }
    let sigma2 = (1.0 + cv * cv).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    lognormal(rng, mu, sigma2.sqrt())
}

/// Inverse CDF (quantile function) of the standard normal distribution.
///
/// Acklam's rational approximation (relative error < 1.15e-9 over the open
/// unit interval) — accurate far beyond what confidence-band arithmetic
/// needs, with no dependency on `erf`. `p` must lie strictly inside (0, 1);
/// the closed endpoints would be ±∞.
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, verbatim
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal quantile needs p in (0,1), got {p}");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Zipf sampler over ranks `0..n` with exponent `s` (popularity skew).
///
/// Builds the CDF once (O(n)) and samples with binary search (O(log n)).
/// Object-popularity skew in storage traces is classically Zipfian with
/// `s ≈ 0.8–1.2`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Construct for `n` ranks with exponent `s ≥ 0`. `s = 0` is uniform.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against FP round-off leaving the last CDF entry below 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

/// First-order autoregressive process `x' = phi·x + (1-phi)·mean + noise`,
/// the standard minimal model for temporally-correlated weather residuals
/// (cloud cover, wind-speed deviations).
#[derive(Debug, Clone)]
pub struct Ar1 {
    phi: f64,
    mean: f64,
    noise_std: f64,
    state: f64,
}

impl Ar1 {
    /// New process with persistence `phi ∈ [0,1)`, long-run `mean`, and
    /// innovation std-dev `noise_std`; starts at the mean.
    pub fn new(phi: f64, mean: f64, noise_std: f64) -> Self {
        assert!((0.0..1.0).contains(&phi), "AR(1) phi must be in [0,1), got {phi}");
        assert!(noise_std >= 0.0);
        Ar1 { phi, mean, noise_std, state: mean }
    }

    /// Override the current state (e.g. to start a trace mid-storm).
    pub fn set_state(&mut self, x: f64) {
        self.state = x;
    }

    /// Current state without advancing.
    pub fn state(&self) -> f64 {
        self.state
    }

    /// Advance one step and return the new state.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.state = self.phi * self.state
            + (1.0 - self.phi) * self.mean
            + self.noise_std * standard_normal(rng);
        self.state
    }

    /// Advance one step and return the state clamped into `[lo, hi]`
    /// (clamping also feeds back, keeping the process inside the band).
    pub fn step_clamped<R: Rng + ?Sized>(&mut self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        let x = self.step(rng).clamp(lo, hi);
        self.state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x5EED)
    }

    const N: usize = 40_000;

    #[test]
    fn normal_quantile_matches_reference_points() {
        // Classic z-table values; Acklam's approximation is good to ~1e-9.
        for (p, z) in [
            (0.5, 0.0),
            (0.8413447460685429, 1.0),
            (0.975, 1.959963984540054),
            (0.99, 2.3263478740408408),
            (0.001, -3.090232306167813),
        ] {
            assert!((normal_quantile(p) - z).abs() < 1e-7, "p={p}: {}", normal_quantile(p));
        }
    }

    #[test]
    fn normal_quantile_is_monotone_and_antisymmetric() {
        let mut prev = f64::NEG_INFINITY;
        for i in 1..1000 {
            let p = i as f64 / 1000.0;
            let z = normal_quantile(p);
            assert!(z > prev, "monotone at p={p}");
            assert!((z + normal_quantile(1.0 - p)).abs() < 1e-8, "antisymmetric at p={p}");
            prev = z;
        }
    }

    #[test]
    #[should_panic(expected = "normal quantile needs p in")]
    fn normal_quantile_rejects_endpoints() {
        let _ = normal_quantile(1.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let xs: Vec<f64> = (0..N).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / N as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let mean = (0..N).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / N as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn poisson_small_and_large_means() {
        let mut r = rng();
        let m1 = (0..N).map(|_| poisson(&mut r, 3.0) as f64).sum::<f64>() / N as f64;
        assert!((m1 - 3.0).abs() < 0.1, "small-mean {m1}");
        let m2 = (0..N).map(|_| poisson(&mut r, 100.0) as f64).sum::<f64>() / N as f64;
        assert!((m2 - 100.0).abs() < 0.5, "large-mean {m2}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weibull_mean_shape2() {
        // Mean of Weibull(k=2, λ) is λ·Γ(1.5) = λ·√π/2.
        let mut r = rng();
        let scale = 8.0;
        let mean = (0..N).map(|_| weibull(&mut r, 2.0, scale)).sum::<f64>() / N as f64;
        let expect = scale * (std::f64::consts::PI.sqrt() / 2.0);
        assert!((mean - expect).abs() / expect < 0.02, "mean {mean} expect {expect}");
    }

    #[test]
    fn lognormal_mean_cv_hits_target_mean() {
        let mut r = rng();
        let mean = (0..N).map(|_| lognormal_mean_cv(&mut r, 256.0, 1.0)).sum::<f64>() / N as f64;
        assert!((mean - 256.0).abs() / 256.0 < 0.05, "mean {mean}");
        assert_eq!(lognormal_mean_cv(&mut r, 10.0, 0.0), 10.0);
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(100, 1.0);
        let mut r = rng();
        let mut counts = vec![0usize; 100];
        for _ in 0..N {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
        // pmf sums to 1
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_cover_full_support() {
        let z = Zipf::new(5, 0.9);
        let mut r = rng();
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut r)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all ranks should appear: {seen:?}");
    }

    #[test]
    fn ar1_reverts_to_mean() {
        let mut p = Ar1::new(0.9, 5.0, 0.0);
        p.set_state(100.0);
        let mut r = rng();
        for _ in 0..200 {
            p.step(&mut r);
        }
        assert!((p.state() - 5.0).abs() < 0.01, "state {}", p.state());
    }

    #[test]
    fn ar1_clamped_stays_in_band() {
        let mut p = Ar1::new(0.5, 0.5, 0.5);
        let mut r = rng();
        for _ in 0..1_000 {
            let x = p.step_clamped(&mut r, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "zipf needs at least one rank")]
    fn zipf_empty_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_bad_rate_panics() {
        let mut r = rng();
        let _ = exponential(&mut r, 0.0);
    }
}
