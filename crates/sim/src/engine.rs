//! Minimal discrete-event driver.
//!
//! The storage substrate resolves intra-slot I/O with events; the scheduler
//! acts at slot boundaries. [`Engine`] owns the clock and the event queue and
//! pumps events into a [`Model`] until a horizon is reached or the queue
//! drains. Models may schedule further events from inside `handle`.

use crate::event::EventQueue;
use crate::time::SimTime;

/// A simulation model driven by an [`Engine`].
pub trait Model {
    /// The event payload type this model consumes.
    type Event;

    /// Handle `event` firing at `now`; `queue` may be used to schedule
    /// follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

/// Drives a [`Model`] through its event queue.
#[derive(Debug)]
pub struct Engine<M: Model> {
    queue: EventQueue<M::Event>,
    now: SimTime,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// A fresh engine at t = 0 with an empty queue.
    pub fn new() -> Self {
        Engine { queue: EventQueue::new(), now: SimTime::ZERO, processed: 0 }
    }

    /// Current simulation time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Mutable access to the pending queue (for seeding initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<M::Event> {
        &mut self.queue
    }

    /// Shared access to the pending queue.
    pub fn queue(&self) -> &EventQueue<M::Event> {
        &self.queue
    }

    /// Run until the queue drains or the next event would fire after
    /// `horizon`. Events at exactly `horizon` are processed. Returns the
    /// number of events processed by this call.
    pub fn run_until(&mut self, model: &mut M, horizon: SimTime) -> u64 {
        let before = self.processed;
        while let Some((t, ev)) = self.queue.pop_before(horizon) {
            debug_assert!(t >= self.now, "time went backwards: {t:?} < {:?}", self.now);
            self.now = t;
            model.handle(t, ev, &mut self.queue);
            self.processed += 1;
        }
        // Even with no events, time advances to the horizon so that slotted
        // callers can account for the elapsed span.
        if self.now < horizon {
            self.now = horizon;
        }
        self.processed - before
    }

    /// Run to queue exhaustion. Returns events processed by this call.
    pub fn run_to_completion(&mut self, model: &mut M) -> u64 {
        let before = self.processed;
        while let Some((t, ev)) = self.queue.pop() {
            debug_assert!(t >= self.now);
            self.now = t;
            model.handle(t, ev, &mut self.queue);
            self.processed += 1;
        }
        self.processed - before
    }
}

impl<M: Model> Default for Engine<M> {
    fn default() -> Self {
        Engine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A model that records event values and re-schedules a chain.
    struct Chain {
        seen: Vec<(SimTime, u32)>,
        remaining: u32,
    }

    impl Model for Chain {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
            if self.remaining > 0 {
                self.remaining -= 1;
                q.push(now + SimDuration::from_secs(1), ev + 1);
            }
        }
    }

    #[test]
    fn chain_runs_to_completion() {
        let mut engine = Engine::new();
        let mut m = Chain { seen: vec![], remaining: 4 };
        engine.queue_mut().push(SimTime::ZERO, 0);
        let n = engine.run_to_completion(&mut m);
        assert_eq!(n, 5);
        assert_eq!(m.seen.len(), 5);
        assert_eq!(m.seen.last().unwrap().1, 4);
        assert_eq!(engine.now(), SimTime::from_secs(4));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut engine = Engine::new();
        let mut m = Chain { seen: vec![], remaining: 100 };
        engine.queue_mut().push(SimTime::ZERO, 0);
        let n = engine.run_until(&mut m, SimTime::from_secs(3));
        // events at t=0,1,2,3 fire (inclusive horizon)
        assert_eq!(n, 4);
        assert_eq!(engine.now(), SimTime::from_secs(3));
        assert_eq!(engine.queue().len(), 1);
        // resume
        engine.run_until(&mut m, SimTime::from_secs(5));
        assert_eq!(engine.now(), SimTime::from_secs(5));
    }

    #[test]
    fn empty_queue_advances_clock_to_horizon() {
        let mut engine: Engine<Chain> = Engine::new();
        let mut m = Chain { seen: vec![], remaining: 0 };
        let n = engine.run_until(&mut m, SimTime::from_hours(2));
        assert_eq!(n, 0);
        assert_eq!(engine.now(), SimTime::from_hours(2));
    }
}
