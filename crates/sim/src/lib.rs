//! # gm-sim — deterministic simulation kernel
//!
//! The GreenMatch reproduction is a *trace-driven, slot/event hybrid*
//! simulation: scheduling decisions happen on a coarse slotted clock
//! (1 hour by default, matching the paper-era convention of hourly
//! renewable-energy prediction), while intra-slot storage service is
//! resolved at microsecond resolution through a discrete-event queue.
//!
//! This crate provides the substrate every other crate builds on:
//!
//! * [`time`] — integer microsecond [`time::SimTime`] / [`time::SimDuration`]
//!   and the slotted [`time::SlotClock`]. Integer time makes every run
//!   bit-for-bit reproducible.
//! * [`event`] — a generic deterministic event queue with FIFO tie-breaking.
//! * [`engine`] — a small driver that pumps an [`event::EventQueue`] into a
//!   model callback.
//! * [`rng`] — named, independently-seeded RNG streams so adding a new
//!   consumer of randomness never perturbs existing ones.
//! * [`dist`] — the probability distributions the workload and energy models
//!   need (exponential, Poisson, Weibull, lognormal, Zipf, AR(1)), written
//!   against [`rand::Rng`] so no extra dependency is required.
//! * [`pool`] — a process-wide helping work pool for deterministic
//!   fan-out (sharded synthesis, per-site phases, sweep runs); safe to
//!   nest at any width because submitters help drain their own batches.
//! * [`series`] — fixed-width slot time series with integration helpers
//!   (power ⇒ energy bookkeeping).
//! * [`stats`] — streaming moments (Welford) and counters.
//! * [`hist`] — a log-bucketed latency histogram with quantile queries.
//!
//! Everything here is intentionally free of I/O and wall-clock access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod engine;
pub mod event;
pub mod hist;
pub mod pool;
pub mod rng;
pub mod series;
pub mod stats;
pub mod time;

pub use engine::{Engine, Model};
pub use event::EventQueue;
pub use hist::LogHistogram;
pub use pool::WorkPool;
pub use rng::RngFactory;
pub use series::TimeSeries;
pub use stats::{Counter, StreamingStats};
pub use time::{
    SimDuration, SimTime, SlotClock, SlotIdx, MICROS_PER_DAY, MICROS_PER_HOUR, MICROS_PER_MIN,
    MICROS_PER_SEC,
};
