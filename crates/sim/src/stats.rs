//! Streaming statistics.
//!
//! [`StreamingStats`] keeps count/mean/variance/min/max in O(1) memory via
//! Welford's online algorithm; [`Counter`] is a labelled monotone counter.
//! Both are used pervasively for per-run metrics (latency means, queue
//! depths, spin-up counts, …).

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        StreamingStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Merge another accumulator into this one (parallel-reduction support;
    /// Chan et al. pairwise formula).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A labelled monotone event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter { value: 0 }
    }

    /// Increment by one.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = StreamingStats::new();
        for &x in &xs {
            all.record(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = StreamingStats::new();
        a.record(1.0);
        a.record(3.0);
        let before = a.clone();
        a.merge(&StreamingStats::new());
        assert!((a.mean() - before.mean()).abs() < 1e-12);
        let mut e = StreamingStats::new();
        e.merge(&before);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }
}
