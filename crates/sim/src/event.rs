//! Deterministic discrete-event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] keyed by
//! `(time, sequence)`: events scheduled for the same instant pop in the order
//! they were pushed (FIFO tie-breaking), which is what keeps runs
//! reproducible regardless of heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload `E` tagged with its firing time and insertion sequence.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use gm_sim::event::EventQueue;
/// use gm_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime(10), "b");
/// q.push(SimTime(5), "a");
/// q.push(SimTime(10), "c"); // same instant as "b": FIFO order preserved
/// assert_eq!(q.pop(), Some((SimTime(5), "a")));
/// assert_eq!(q.pop(), Some((SimTime(10), "b")));
/// assert_eq!(q.pop(), Some((SimTime(10), "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// An empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(cap), next_seq: 0 }
    }

    /// Schedule `payload` to fire at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Remove and return the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pop the earliest event only if it fires at or before `t`.
    pub fn pop_before(&mut self, t: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(et) if et <= t => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop all pending events (the sequence counter keeps advancing so
    /// determinism is unaffected).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        for t in [30u64, 10, 20, 5, 25] {
            q.push(SimTime(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![5, 10, 20, 25, 30]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 'a');
        q.push(SimTime(20), 'b');
        assert_eq!(q.pop_before(SimTime(5)), None);
        assert_eq!(q.pop_before(SimTime(10)), Some((SimTime(10), 'a')));
        assert_eq!(q.pop_before(SimTime(15)), None);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn peek_and_clear() {
        let mut q = EventQueue::with_capacity(4);
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_hours(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_hours(1)));
        q.clear();
        assert!(q.is_empty());
        // Determinism after clear: new pushes still FIFO.
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        q.push(t, ());
        q.push(t, ());
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(3), 3);
        q.push(SimTime(1), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(SimTime(2), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }
}
