//! A process-wide helping work pool for deterministic fan-out.
//!
//! Several layers want to fan independent units of work across cores —
//! sharded request synthesis in `gm-workload`, per-site phase execution in
//! `gm-core`, whole simulation runs in `gm-bench` — and they nest: a sweep
//! running on a pool worker spawns per-slot shard batches of its own.
//! [`WorkPool`] serves all of them with one set of long-lived threads and
//! one rule that makes nesting safe at **any** width (including 1): the
//! submitter of a batch *helps*. [`WorkPool::scatter`] drains its own
//! batch's queue inline until it is empty and only then blocks waiting for
//! stragglers, so a batch always makes progress even if every worker is
//! busy (or there are no workers to spare at all). On a single-core
//! machine the scatter degenerates into exact in-order inline execution.
//!
//! Determinism is the caller's contract, not the pool's: tasks must write
//! disjoint result slots and the caller must combine them by index, never
//! by completion order. Everything built on this pool (shard-invariant
//! synthesis, per-site phase fan-out) is byte-identical at any width for
//! that reason.
//!
//! A task panic is caught on whichever thread ran it, carried into the
//! batch, and re-raised on the submitting thread after the whole batch has
//! drained — sibling tasks still complete and the pool survives.

use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on pool width requested via [`set_max_workers`] (0 = no
/// cap). Read once, when the global pool first starts.
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cap the global pool at `n` workers (`--jobs N`). Takes effect only if
/// called before anything starts the pool; later calls are ignored.
pub fn set_max_workers(n: usize) {
    MAX_WORKERS.store(n, Ordering::Relaxed);
}

struct BatchInner {
    /// Tasks not yet picked up. Workers and the helping submitter both
    /// pop the front, so queue order is start order (not completion order).
    tasks: VecDeque<Task>,
    /// Tasks not yet *finished* (queued + running).
    pending: usize,
    /// First panic payload from this batch's tasks, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch {
    inner: Mutex<BatchInner>,
    done_cv: Condvar,
}

struct Registry {
    /// Open batches in submission order; removed by their submitter once
    /// drained. Workers scan oldest-first.
    batches: Vec<Arc<Batch>>,
}

/// The shared pool. Obtain it with [`WorkPool::global`]; dedicated pools
/// ([`WorkPool::start`]) exist for tests that need a specific width.
pub struct WorkPool {
    registry: Mutex<Registry>,
    work_cv: Condvar,
    workers: usize,
}

impl WorkPool {
    /// Start a dedicated pool with `workers` threads (tests; everything
    /// else goes through [`WorkPool::global`]).
    pub fn start(workers: usize) -> Arc<WorkPool> {
        let workers = workers.max(1);
        let pool = Arc::new(WorkPool {
            registry: Mutex::new(Registry { batches: Vec::new() }),
            work_cv: Condvar::new(),
            workers,
        });
        for me in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("gm-pool-{me}"))
                .spawn(move || worker_loop(&pool))
                .expect("spawn pool worker");
        }
        pool
    }

    /// The process-wide pool, started on first use with one worker per
    /// available core, capped by [`set_max_workers`]. Workers live (parked
    /// when idle) for the rest of the process.
    pub fn global() -> &'static Arc<WorkPool> {
        static POOL: OnceLock<Arc<WorkPool>> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
            let cap = MAX_WORKERS.load(Ordering::Relaxed);
            let width = if cap == 0 { cores } else { cores.min(cap) };
            WorkPool::start(width)
        })
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.workers
    }

    /// Run `tasks` and block until every one has finished. The submitting
    /// thread helps drain the batch (so nested scatters never deadlock and
    /// a width-1 pool still completes everything); if any task panicked,
    /// the first panic is re-raised here after the batch has drained.
    pub fn scatter(&self, tasks: Vec<Task>) {
        if tasks.is_empty() {
            return;
        }
        let pending = tasks.len();
        let batch = Arc::new(Batch {
            inner: Mutex::new(BatchInner { tasks: VecDeque::from(tasks), pending, panic: None }),
            done_cv: Condvar::new(),
        });
        {
            let mut reg = self.registry.lock().expect("pool registry");
            reg.batches.push(Arc::clone(&batch));
            self.work_cv.notify_all();
        }
        // Help: drain our own queue inline until workers have the rest.
        loop {
            let task = {
                let mut inner = batch.inner.lock().expect("batch state");
                match inner.tasks.pop_front() {
                    Some(t) => t,
                    None => break,
                }
            };
            run_task(task, &batch);
        }
        let mut inner = batch.inner.lock().expect("batch state");
        while inner.pending > 0 {
            inner = batch.done_cv.wait(inner).expect("batch wait");
        }
        let payload = inner.panic.take();
        drop(inner);
        {
            let mut reg = self.registry.lock().expect("pool registry");
            reg.batches.retain(|b| !Arc::ptr_eq(b, &batch));
        }
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

fn run_task(task: Task, batch: &Batch) {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(task));
    let mut inner = batch.inner.lock().expect("batch state");
    inner.pending -= 1;
    if let Err(payload) = outcome {
        inner.panic.get_or_insert(payload);
    }
    if inner.pending == 0 {
        batch.done_cv.notify_all();
    }
}

fn worker_loop(pool: &WorkPool) {
    loop {
        let (task, batch) = {
            let mut reg = pool.registry.lock().expect("pool registry");
            'found: loop {
                for batch in &reg.batches {
                    let mut inner = batch.inner.lock().expect("batch state");
                    if let Some(task) = inner.tasks.pop_front() {
                        let batch = Arc::clone(batch);
                        break 'found (task, batch);
                    }
                }
                reg = pool.work_cv.wait(reg).expect("pool wait");
            }
        };
        run_task(task, &batch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn counting_tasks(counter: &Arc<AtomicU64>, n: u64) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let c = Arc::clone(counter);
                Box::new(move || {
                    c.fetch_add(i + 1, Ordering::Relaxed);
                }) as Task
            })
            .collect()
    }

    #[test]
    fn scatter_runs_every_task_and_waits() {
        for width in [1, 2, 4] {
            let pool = WorkPool::start(width);
            let counter = Arc::new(AtomicU64::new(0));
            pool.scatter(counting_tasks(&counter, 25));
            assert_eq!(counter.load(Ordering::Relaxed), 25 * 26 / 2, "width {width}");
        }
    }

    #[test]
    fn empty_scatter_returns_immediately() {
        WorkPool::start(1).scatter(Vec::new());
    }

    #[test]
    fn nested_scatter_does_not_deadlock() {
        // Every outer task scatters an inner batch of its own; at width 1
        // only the helping-submitter rule lets this terminate.
        for width in [1, 3] {
            let pool = WorkPool::start(width);
            let counter = Arc::new(AtomicU64::new(0));
            let outer: Vec<Task> = (0..4)
                .map(|_| {
                    let pool = Arc::clone(&pool);
                    let counter = Arc::clone(&counter);
                    Box::new(move || {
                        pool.scatter(counting_tasks(&counter, 5));
                    }) as Task
                })
                .collect();
            pool.scatter(outer);
            assert_eq!(counter.load(Ordering::Relaxed), 4 * 15, "width {width}");
        }
    }

    #[test]
    fn results_combine_by_index_not_completion_order() {
        let pool = WorkPool::start(4);
        let slots: Arc<Vec<Mutex<Option<u64>>>> =
            Arc::new((0..32).map(|_| Mutex::new(None)).collect());
        let tasks: Vec<Task> = (0..32u64)
            .map(|i| {
                let slots = Arc::clone(&slots);
                Box::new(move || {
                    *slots[i as usize].lock().unwrap() = Some(i * i);
                }) as Task
            })
            .collect();
        pool.scatter(tasks);
        for (i, slot) in slots.iter().enumerate() {
            assert_eq!(slot.lock().unwrap().unwrap(), (i * i) as u64);
        }
    }

    #[test]
    fn task_panic_surfaces_on_submitter_after_batch_drains() {
        let pool = WorkPool::start(2);
        let survivors = Arc::new(AtomicU64::new(0));
        let mut tasks: Vec<Task> = vec![Box::new(|| panic!("boom in task"))];
        for _ in 0..4 {
            let s = Arc::clone(&survivors);
            tasks.push(Box::new(move || {
                s.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.scatter(tasks)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in task");
        assert_eq!(survivors.load(Ordering::Relaxed), 4, "siblings still ran");
        // The pool survives the panic and accepts new work.
        let after = Arc::new(AtomicU64::new(0));
        pool.scatter(counting_tasks(&after, 1));
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }
}
