//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace vendors this shim so builds never touch a registry. It
//! implements exactly the surface the GreenMatch crates use: `Rng::gen`,
//! `SeedableRng::seed_from_u64`, `rngs::SmallRng`, and
//! `distributions::Standard` with `sample_iter`.
//!
//! `SmallRng` is xoshiro256++ (the same family upstream `rand 0.8` uses on
//! 64-bit targets), seeded via SplitMix64, so its statistical quality is
//! good enough for the moment-based assertions in the simulation tests.

/// Core RNG abstraction: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the `Standard` distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample a value in `[low, high)`.
    fn gen_range<T: SampleRange>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.gen();
        u < p
    }

    /// An iterator of samples drawn from `dist`.
    fn sample_iter<T, D>(self, dist: D) -> distributions::DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::DistIter { dist, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types usable with `Rng::gen_range` over a half-open range.
pub trait SampleRange: Sized {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u64).wrapping_sub(low as u64);
                low.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

impl SampleRange for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        low + unit * (high - low)
    }
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step, used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Match `rand_core`'s default expansion exactly: the 32-byte
            // seed is filled in 4-byte chunks, each the low half of one
            // SplitMix64 output, then read as little-endian u64 words.
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                let lo = splitmix64(&mut sm) as u32;
                let hi = splitmix64(&mut sm) as u32;
                *w = (lo as u64) | ((hi as u64) << 32);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce it from any seed, but keep the guard for clarity.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words, for checkpointing. Feeding
        /// them back through [`SmallRng::from_state`] reproduces the
        /// stream exactly from the captured position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild an RNG from state words captured by [`SmallRng::state`].
        /// An all-zero state is a fixed point of xoshiro256++ and is
        /// remapped the same way seeding does.
        pub fn from_state(s: [u64; 4]) -> Self {
            let mut s = s;
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // rand_xoshiro truncates (the ++ scrambler mixes low bits well).
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// The `Standard` distribution and the `Distribution` trait.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample using `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The uniform "every representable value / unit interval" distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            rng.next_u32() as u16
        }
    }

    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            rng.next_u32() as u8
        }
    }

    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream).
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// Iterator returned by `Rng::sample_iter`.
    pub struct DistIter<D, R, T> {
        pub(crate) dist: D,
        pub(crate) rng: R,
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<D, R, T> Iterator for DistIter<D, R, T>
    where
        D: Distribution<T>,
        R: RngCore,
    {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }
}

/// `rand::prelude` — the common imports.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range_and_uniform_ish() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn state_roundtrip_resumes_the_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn sample_iter_streams() {
        let rng = SmallRng::seed_from_u64(9);
        let v: Vec<u64> = rng.sample_iter(crate::distributions::Standard).take(5).collect();
        assert_eq!(v.len(), 5);
        assert!(v.windows(2).any(|w| w[0] != w[1]));
    }
}
