//! Minimal offline stand-in for `serde_json`, built on the serde shim's
//! [`serde::Value`] tree.
//!
//! Formatting follows upstream closely enough for this workspace: floats
//! print via Rust's shortest round-trip `{:?}` (so `1.0`, `0.25`,
//! `1e300`), non-finite floats serialise as `null`, and object fields keep
//! their declaration order — which makes output deterministic and the
//! JSONL trace observer byte-stable.

use serde::{DeError, Deserialize, Serialize};

pub use serde::Value;

/// Error type for serialisation/parsing (shared: both directions report
/// through the same human-readable message shape).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Serialise `value` as human-indented JSON (two-space indent, like
/// upstream's pretty printer).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------------ writing

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push(']');
        }
        Value::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` is Rust's shortest round-trip float form: `1.0`, `0.25`.
        out.push_str(&format!("{x:?}"));
    } else {
        // Upstream serde_json also refuses NaN/inf; null keeps output valid.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error(format!("expected {word:?} at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_word("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_word("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_word("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error("unterminated string".to_string()));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("short \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".to_string()))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![(1u64, 0.5f64), (2, 0.25)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,0.5],[2,0.25]]");
        assert_eq!(from_str::<Vec<(u64, f64)>>(&json).unwrap(), v);
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u64, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
