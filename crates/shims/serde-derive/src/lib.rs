//! `#[derive(Serialize, Deserialize)]` for the in-tree serde shim.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote) so the
//! workspace builds with zero external dependencies. Supports the shapes
//! this workspace actually uses:
//!
//! - structs with named fields (honouring `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]` per field; a skip-field that
//!   is also deserialised must carry `default` so round-trips succeed)
//! - tuple structs (newtype structs serialise transparently; wider tuples
//!   as arrays)
//! - enums with unit, newtype, tuple, and struct variants, encoded with
//!   serde's external tagging (`"Variant"`, `{"Variant": ...}`)
//!
//! Generics are intentionally unsupported; the derive panics with a clear
//! message if it meets them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (shim data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code =
        format!("#[automatically_derived]\n#[allow(clippy::all)]\n{}", generate(&item, true));
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (shim data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code =
        format!("#[automatically_derived]\n#[allow(clippy::all)]\n{}", generate(&item, false));
    code.parse().expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------ parsing

struct Field {
    name: String,
    default: bool,
    /// Fallback path from `default = "path"`: the field takes `path()`
    /// when absent (instead of `Default::default()`).
    default_fn: Option<String>,
    /// Predicate path from `skip_serializing_if = "path"`: the field is
    /// omitted from the serialised object when `path(&value)` is true.
    skip_if: Option<String>,
}

/// Field-level serde attributes the shim understands.
#[derive(Default)]
struct FieldAttrs {
    default: bool,
    default_fn: Option<String>,
    skip_if: Option<String>,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Item {
    NamedStruct { name: String, fields: Vec<Field> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor { toks: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip attributes (`#[...]`), collecting the serde field attributes
    /// the shim understands (`default`, `skip_serializing_if = "path"`).
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                panic!("serde shim derive: malformed attribute");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(id)) = inner.first() {
                if id.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_args(args.stream(), &mut attrs);
                    }
                }
            }
        }
        attrs
    }

    /// Skip `pub`, `pub(crate)`, etc.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde shim derive: expected identifier, got {other:?}"),
        }
    }

    /// Skip a type (everything up to a top-level `,` or end), tracking
    /// angle-bracket depth so `Vec<(A, B)>` counts as one type.
    fn skip_type(&mut self) {
        let mut angle: i64 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                _ => {}
            }
            self.next();
        }
    }
}

/// Parse the argument list of one `#[serde(...)]` attribute into `attrs`,
/// panicking on anything the shim does not implement.
fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) if id.to_string() == "default" => {
                // Bare `default` (fall back to `Default::default()`) or
                // `default = "path"` (fall back to `path()`).
                match (toks.get(i + 1), toks.get(i + 2)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                        if p.as_char() == '=' =>
                    {
                        attrs.default_fn = Some(
                            l.to_string().trim_matches('"').split_whitespace().collect::<String>(),
                        );
                        i += 3;
                    }
                    _ => {
                        attrs.default = true;
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                let path = match (toks.get(i + 1), toks.get(i + 2)) {
                    (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(l)))
                        if p.as_char() == '=' =>
                    {
                        // Strip the quotes and any token-spacing from the
                        // literal so `"Vec :: is_empty"` becomes a path.
                        l.to_string().trim_matches('"').split_whitespace().collect::<String>()
                    }
                    _ => panic!(
                        "serde shim derive: skip_serializing_if expects = \"path\", got {:?}",
                        toks.get(i + 1)
                    ),
                };
                attrs.skip_if = Some(path);
                i += 3;
            }
            other => panic!("serde shim derive: unsupported serde attribute {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive: generics are not supported (type {name})");
        }
    }
    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct { name, fields: parse_named_fields(g.stream()) }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct { name, arity: count_tuple_fields(g.stream()) }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::UnitStruct { name },
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum { name, variants: parse_variants(g.stream()) }
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, got {other}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let attrs = c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident();
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field {name}, got {other:?}"),
        }
        c.skip_type();
        c.next(); // consume the trailing comma, if any
        fields.push(Field {
            name,
            default: attrs.default,
            default_fn: attrs.default_fn,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Deserialisation initialiser for one named field, honouring the three
/// absence behaviours: required, `default`, and `default = "path"`.
fn field_init(f: &Field, src: &str) -> String {
    match (&f.default_fn, f.default) {
        (Some(path), _) => {
            format!("{0}: ::serde::de_field_or({src}, \"{0}\", {path})?,", f.name)
        }
        (None, true) => format!("{0}: ::serde::de_field_default({src}, \"{0}\")?,", f.name),
        (None, false) => format!("{0}: ::serde::de_field({src}, \"{0}\")?,", f.name),
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut arity = 0;
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        c.skip_vis();
        c.skip_type();
        c.next(); // trailing comma
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                VariantShape::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ------------------------------------------------------------------ codegen

fn generate(item: &Item, ser: bool) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            if ser {
                let pushes: String = fields
                    .iter()
                    .map(|f| match &f.skip_if {
                        None => format!(
                            "fields.push((\"{0}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{0})));\n",
                            f.name
                        ),
                        Some(pred) => format!(
                            "if !{pred}(&self.{0}) {{\n\
                             fields.push((\"{0}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{0})));\n}}\n",
                            f.name
                        ),
                    })
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}\
                     ::serde::Value::Obj(fields)\n}}\n}}"
                )
            } else {
                let inits: String = fields.iter().map(|f| field_init(f, "v")).collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name} {{ {inits} }})\n}}\n}}"
                )
            }
        }
        Item::TupleStruct { name, arity: 1 } => {
            if ser {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n}}\n}}"
                )
            } else {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name}(::serde::Deserialize::from_value(v)?))\n}}\n}}"
                )
            }
        }
        Item::TupleStruct { name, arity } => {
            if ser {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Value::Arr(vec![{items}])\n}}\n}}"
                )
            } else {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     match v {{\n\
                     ::serde::Value::Arr(items) if items.len() == {arity} =>\n\
                     Ok({name}({items})),\n\
                     other => Err(::serde::DeError::expected(\"{arity}-tuple\", other)),\n\
                     }}\n}}\n}}"
                )
            }
        }
        Item::UnitStruct { name } => {
            if ser {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
                )
            } else {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(_v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                     Ok({name})\n}}\n}}"
                )
            }
        }
        Item::Enum { name, variants } => {
            if ser {
                generate_enum_ser(name, variants)
            } else {
                generate_enum_de(name, variants)
            }
        }
    }
}

fn generate_enum_ser(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                arms.push_str(&format!(
                    "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                ));
            }
            VariantShape::Tuple(1) => {
                arms.push_str(&format!(
                    "{name}::{vn}(x0) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                     ::serde::Serialize::to_value(x0))]),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("x{i}")).collect();
                let items: String =
                    binds.iter().map(|b| format!("::serde::Serialize::to_value({b}),")).collect();
                arms.push_str(&format!(
                    "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                     ::serde::Value::Arr(vec![{items}]))]),\n",
                    binds.join(", ")
                ));
            }
            VariantShape::Struct(fields) => {
                let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                let pushes: String = fields
                    .iter()
                    .map(|f| {
                        format!("(\"{0}\".to_string(), ::serde::Serialize::to_value({0})),", f.name)
                    })
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vn} {{ {} }} => ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                     ::serde::Value::Obj(vec![{pushes}]))]),\n",
                    binds.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n\
         match self {{\n{arms}}}\n}}\n}}"
    )
}

fn generate_enum_de(name: &str, variants: &[Variant]) -> String {
    // Unit variants decode from a bare string.
    let mut str_arms = String::new();
    // Payload variants decode from a single-field object.
    let mut tag_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.shape {
            VariantShape::Unit => {
                str_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"));
            }
            VariantShape::Tuple(1) => {
                tag_arms.push_str(&format!(
                    "\"{vn}\" => return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                ));
            }
            VariantShape::Tuple(arity) => {
                let items: String = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                tag_arms.push_str(&format!(
                    "\"{vn}\" => {{\n\
                     let ::serde::Value::Arr(items) = inner else {{\n\
                     return Err(::serde::DeError::expected(\"{vn} payload array\", inner));\n\
                     }};\n\
                     if items.len() != {arity} {{\n\
                     return Err(::serde::DeError(format!(\n\
                     \"variant {vn}: expected {arity} items, got {{}}\", items.len())));\n\
                     }}\n\
                     return Ok({name}::{vn}({items}));\n\
                     }}\n"
                ));
            }
            VariantShape::Struct(fields) => {
                let inits: String = fields.iter().map(|f| field_init(f, "inner")).collect();
                tag_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn} {{ {inits} }}),\n"));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
         if let ::serde::Value::Str(s) = v {{\n\
         match s.as_str() {{\n{str_arms}\
         _ => return Err(::serde::DeError(format!(\"unknown {name} variant {{s:?}}\"))),\n\
         }}\n\
         }}\n\
         if let ::serde::Value::Obj(fields) = v {{\n\
         if fields.len() == 1 {{\n\
         let (tag, inner) = &fields[0];\n\
         let _ = inner;\n\
         match tag.as_str() {{\n{tag_arms}\
         _ => return Err(::serde::DeError(format!(\"unknown {name} variant {{tag:?}}\"))),\n\
         }}\n\
         }}\n\
         }}\n\
         Err(::serde::DeError::expected(\"{name} variant\", v))\n\
         }}\n}}"
    )
}
