//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy data model, this shim uses a
//! simple owned value tree ([`Value`]): `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds a type from one. `serde_json` (the
//! sibling shim) converts `Value` to and from JSON text. The derive macro
//! (`serde_derive` shim) generates impls of these traits with serde's
//! standard external-tagged enum encoding, so JSON produced here
//! round-trips exactly like upstream serde_json for the types this
//! workspace defines.

use std::collections::{BTreeMap, HashMap};

/// An owned, ordered JSON-like value tree.
///
/// Object fields keep insertion order (a `Vec` of pairs, not a map) so
/// serialised output is deterministic — required for byte-identical trace
/// files.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer (only used for negative values).
    I64(i64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a field of an object by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view: any integer or float variant as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Unsigned-integer view (also accepts non-negative `I64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }
}

/// Deserialisation error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error for an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> DeError {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        };
        DeError(format!("expected {what}, got {shape}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the shim data model.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the shim data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- primitives

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("{n} out of range"))),
                    other => Err(DeError::expected("integer", other)),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Arr(items) => {
                        let expect = [$($n),+].len();
                        if items.len() != expect {
                            return Err(DeError(format!(
                                "expected {expect}-tuple, got {} items", items.len())));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple (array)", other)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Types usable as JSON object keys (serialised to a string).
pub trait MapKey: Sized + Ord {
    /// Render the key as a JSON object key.
    fn key_to_string(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn key_from_str(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn key_to_string(&self) -> String {
        self.clone()
    }
    fn key_from_str(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn key_to_string(&self) -> String {
                self.to_string()
            }
            fn key_from_str(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError(format!("bad integer key {s:?}")))
            }
        }
    )*};
}
impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut pairs: Vec<(&K, &V)> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.key_to_string(), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: MapKey + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => {
                fields.iter().map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.key_to_string(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => {
                fields.iter().map(|(k, v)| Ok((K::key_from_str(k)?, V::from_value(v)?))).collect()
            }
            other => Err(DeError::expected("object", other)),
        }
    }
}

// ---------------------------------------------------------- derive support

/// Fetch and deserialise a named struct field. Used by generated code.
pub fn de_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field {name}: {e}"))),
        None => Err(DeError(format!("missing field {name}"))),
    }
}

/// Like [`de_field`] but falls back to `Default` when the field is absent
/// (the `#[serde(default)]` behaviour).
pub fn de_field_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field {name}: {e}"))),
        None => Ok(T::default()),
    }
}

/// Like [`de_field`] but calls the given fallback when the field is absent
/// (the `#[serde(default = "path")]` behaviour).
pub fn de_field_or<T: Deserialize>(
    v: &Value,
    name: &str,
    fallback: impl FnOnce() -> T,
) -> Result<T, DeError> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| DeError(format!("field {name}: {e}"))),
        None => Ok(fallback()),
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 2u64), (3, 4)];
        assert_eq!(Vec::<(u64, u64)>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_value(&arr.to_value()).unwrap(), arr);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_value(&o.to_value()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert(7u64, (1u64, 2u64));
        assert_eq!(HashMap::<u64, (u64, u64)>::from_value(&m.to_value()).unwrap(), m);
    }

    #[test]
    fn field_helpers() {
        let v = Value::Obj(vec![("a".into(), Value::U64(1))]);
        assert_eq!(de_field::<u64>(&v, "a").unwrap(), 1);
        assert!(de_field::<u64>(&v, "b").is_err());
        assert_eq!(de_field_default::<u64>(&v, "b").unwrap(), 0);
    }
}
