//! Minimal offline stand-in for `criterion`.
//!
//! Implements the handful of entry points the bench targets use —
//! `Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple calibrated wall-clock loop
//! (warm-up, then a fixed measurement window) and a one-line-per-benchmark
//! report. No statistics, plots, or comparison baselines.
//!
//! Like real criterion, `--test` on the bench binary's command line (as in
//! `cargo bench -- --test`) switches to smoke mode: every routine runs
//! exactly once, untimed — a cheap compile-and-run gate for CI.

use std::hint;
use std::time::{Duration, Instant};

/// Whether the process was started in `--test` smoke mode.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    measured: Option<Duration>,
    iters_done: u64,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then time a fixed window. In
    /// `--test` smoke mode the routine runs once, untimed.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if test_mode() {
            black_box(routine());
            self.measured = None;
            self.iters_done = 0;
            return;
        }
        // Warm-up & calibration: find an iteration count that fills ~50 ms.
        let mut n = 1u64;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..n {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt > Duration::from_millis(20) || n >= 1 << 20 {
                break dt.as_secs_f64() / n as f64;
            }
            n *= 4;
        };
        let iters = ((0.05 / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.measured = Some(t0.elapsed());
        self.iters_done = iters;
    }
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { measured: None, iters_done: 0 };
    f(&mut b);
    match b.measured {
        Some(total) if b.iters_done > 0 => {
            let per = total.as_secs_f64() / b.iters_done as f64;
            println!("bench {name:<40} {:>12}/iter ({} iters)", human_time(per), b.iters_done);
        }
        _ if test_mode() => println!("bench {name:<40} ok (smoke)"),
        _ => println!("bench {name:<40} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes its own loops.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: R,
    ) -> &mut Self
    where
        R: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), |b| routine(b, input));
        self
    }

    /// Benchmark `routine` under the plain name `id`.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, id: &str, routine: R) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), routine);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<R: FnOnce(&mut Bencher)>(&mut self, name: &str, routine: R) -> &mut Self {
        run_one(name, routine);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generate `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
