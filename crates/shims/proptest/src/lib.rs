//! Minimal offline stand-in for `proptest`.
//!
//! Covers the surface this workspace uses: range strategies, `Just`,
//! `prop_map`, tuple strategies, `collection::vec`, `prop_oneof!`, the
//! `proptest!` macro with `#![proptest_config(..)]`, and the
//! `prop_assert*` / `prop_assume!` family. Sampling is deterministic per
//! (test name, case index) so failures reproduce; there is no shrinking —
//! a failing case reports its inputs via the assertion message instead.

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Per-test configuration (a tiny subset of upstream's `Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for upstream compatibility; this shim never shrinks,
        /// so the value is ignored.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64, max_shrink_iters: 0 }
        }
    }

    /// Deterministic RNG handed to strategies.
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// RNG for one (test, case) pair: reproducible, test-independent.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(rand::rngs::SmallRng::seed_from_u64(h ^ ((case as u64) << 1 | 1)))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy(Rc::new(move |rng| inner.sample(rng)))
        }
    }

    /// A constant strategy: always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy (`Rc` so it stays cheaply clonable).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the (non-empty) list of alternatives.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! needs at least one arm");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width range: every bit pattern is valid.
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start() + rng.unit_f64() * (self.end() - self.start())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }

    /// Strategy for `Vec`s with random length (`collection::vec`).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                if self.len.start < self.len.end { self.len.sample(rng) } else { self.len.start };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy for vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use super::collection;
    pub use super::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::Config as ProptestConfig;
    pub use super::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// The property-test harness macro (sampling loop, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        #[allow(unreachable_code)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(msg) = result {
                    panic!("proptest {} case {case}: {msg}", stringify!($name));
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure reports instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!(
                "assertion failed: {} == {} ({a:?} vs {b:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if a != b {
            return Err(format!("{} ({a:?} vs {b:?})", format!($($fmt)+)));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return Err(format!(
                "assertion failed: {} != {} (both {a:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}

/// Discard the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            // No shrink/retry machinery: a failed assumption skips the case.
            return Ok(());
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Scaled(f64),
    }

    fn color_strategy() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), (0.0f64..=1.0).prop_map(Color::Scaled)]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -2i64..5, f in 0.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2..5).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vecs_and_tuples(v in collection::vec((0u64..4, 1u64..3), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            for (a, b) in v {
                prop_assert!(a < 4 && (1..3).contains(&b));
            }
        }

        #[test]
        fn oneof_yields_all_arms(c in color_strategy()) {
            match c {
                Color::Red => {}
                Color::Scaled(f) => prop_assert!((0.0..=1.0).contains(&f)),
            }
        }

        #[test]
        fn assume_skips(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    fn deterministic_per_test_and_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u64..1_000_000;
        let a = strat.sample(&mut TestRng::for_case("t", 3));
        let b = strat.sample(&mut TestRng::for_case("t", 3));
        let c = strat.sample(&mut TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
