//! Property tests for the energy substrate: battery invariants under
//! arbitrary operation sequences and ledger identities under arbitrary
//! balanced flows.

use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::forecast::{Forecaster, OracleForecaster, PersistenceForecaster};
use gm_energy::grid::Grid;
use gm_energy::ledger::{EnergyLedger, SlotFlows};
use gm_sim::time::SimDuration;
use gm_sim::{SlotClock, TimeSeries};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Charge(f64),
    Discharge(f64),
    SelfDischarge(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..50_000.0).prop_map(Op::Charge),
        (0.0f64..50_000.0).prop_map(Op::Discharge),
        (1u64..48).prop_map(Op::SelfDischarge),
    ]
}

fn spec_strategy() -> impl Strategy<Value = BatterySpec> {
    prop_oneof![
        (0.0f64..100_000.0).prop_map(BatterySpec::lead_acid),
        (0.0f64..100_000.0).prop_map(BatterySpec::lithium_ion),
        (0.0f64..100_000.0).prop_map(BatterySpec::ideal),
    ]
}

proptest! {
    #[test]
    fn battery_invariants_under_random_ops(
        spec in spec_strategy(),
        ops in proptest::collection::vec(op_strategy(), 0..200),
    ) {
        let hour = SimDuration::from_hours(1);
        let mut b = Battery::new(spec);
        for op in ops {
            match op {
                Op::Charge(wh) => {
                    let out = b.charge(wh, hour);
                    // Never draws more than offered or than the rate allows.
                    prop_assert!(out.drawn_wh <= wh + 1e-9);
                    if spec.max_charge_power_w().is_finite() {
                        prop_assert!(out.drawn_wh <= spec.max_charge_power_w() + 1e-9);
                    }
                    prop_assert!(out.stored_wh <= out.drawn_wh + 1e-9, "σ ≤ 1");
                }
                Op::Discharge(wh) => {
                    let got = b.discharge(wh, hour);
                    prop_assert!(got <= wh + 1e-9);
                }
                Op::SelfDischarge(h) => b.apply_self_discharge(SimDuration::from_hours(h)),
            }
            // DoD window always respected.
            prop_assert!(b.stored_wh() >= -1e-9);
            prop_assert!(b.stored_wh() <= spec.usable_wh() + 1e-6,
                "stored {} exceeds usable {}", b.stored_wh(), spec.usable_wh());
            prop_assert!((0.0..=1.0 + 1e-9).contains(&b.soc()));
            // Conservation at every step.
            prop_assert!(b.conservation_residual_wh().abs() < 1e-5,
                "residual {}", b.conservation_residual_wh());
        }
    }

    #[test]
    fn ledger_totals_match_series(
        slots in proptest::collection::vec((0.0f64..5_000.0, 0.0f64..5_000.0, 0.0f64..1.0, 0.0f64..1.0), 1..100)
    ) {
        let mut ledger = EnergyLedger::new(SlotClock::hourly(), Grid::typical_eu());
        // A toy battery keeps the generated flows physical: discharge never
        // exceeds what was previously stored (×0.85 efficiency).
        let mut stored = 0.0f64;
        for (s, (green, load, store_frac, batt_frac)) in slots.iter().enumerate() {
            let direct = green.min(*load);
            let surplus = green - direct;
            let drawn = surplus * store_frac;
            stored += drawn * 0.85;
            let deficit = load - direct;
            let batt_out = (deficit * batt_frac).min(stored);
            stored -= batt_out;
            ledger.record_slot(s, SlotFlows {
                green_produced_wh: *green,
                green_direct_wh: direct,
                battery_drawn_wh: drawn,
                battery_out_wh: batt_out,
                brown_wh: deficit - batt_out,
                curtailed_wh: surplus - drawn,
                load_wh: *load,
            });
        }
        let t = ledger.totals();
        prop_assert!((t.load_wh - ledger.load_series().sum()).abs() < 1e-6);
        prop_assert!((t.brown_wh - ledger.brown_series().sum()).abs() < 1e-6);
        prop_assert!((t.green_produced_wh - ledger.green_series().sum()).abs() < 1e-6);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ledger.green_utilization()));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ledger.green_coverage()));
        prop_assert!(ledger.carbon_g() >= 0.0);
        prop_assert!(ledger.cost_dollars() >= 0.0);
    }

    #[test]
    fn oracle_forecast_equals_trace(values in proptest::collection::vec(0.0f64..1e5, 1..100)) {
        let trace = TimeSeries::from_values(SlotClock::hourly(), values.clone());
        let mut f = OracleForecaster::new(trace);
        let p = f.predict(0, values.len());
        for (a, b) in p.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn persistence_forecast_never_invents_energy(
        values in proptest::collection::vec(0.0f64..1e5, 24..96)
    ) {
        let trace = TimeSeries::from_values(SlotClock::hourly(), values.clone());
        let mut f = PersistenceForecaster::new(trace);
        let horizon = values.len();
        for s in 0..horizon {
            for (k, v) in f.predict(s, 4).into_iter().enumerate() {
                let slot = s + k;
                if slot >= 24 {
                    prop_assert_eq!(v.to_bits(), values[slot - 24].to_bits());
                } else {
                    prop_assert_eq!(v, 0.0, "cold start is pessimistic, not inventive");
                }
            }
        }
    }
}
