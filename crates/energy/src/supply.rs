//! Power-source abstraction, trace playback and mixing.
//!
//! A [`PowerSource`] answers "how much green power (W), on average, is
//! produced in slot `s`?". Sources are materialised once per run into a
//! [`TimeSeries`] so that (a) scheduling and accounting see exactly the same
//! numbers and (b) stochastic sources (clouds, wind) are frozen into a
//! reproducible trace before any policy looks at them.

use gm_sim::time::SlotIdx;
use gm_sim::{SlotClock, TimeSeries};

/// A renewable production model queried per slot.
pub trait PowerSource {
    /// Average power (W) produced during slot `s` of `clock`.
    fn power_in_slot(&mut self, clock: SlotClock, s: SlotIdx) -> f64;

    /// Human-readable label used in reports.
    fn label(&self) -> String;

    /// Materialise `n` slots into a frozen per-slot trace.
    fn materialize(&mut self, clock: SlotClock, n: usize) -> TimeSeries {
        let values = (0..n).map(|s| self.power_in_slot(clock, s)).collect();
        TimeSeries::from_values(clock, values)
    }
}

/// Playback of a pre-recorded per-slot power trace.
///
/// Stands in for the measured PV-farm traces the genuine evaluation would
/// use; also produced by [`PowerSource::materialize`] of synthetic sources.
#[derive(Debug, Clone)]
pub struct TraceSource {
    label: String,
    trace: TimeSeries,
}

impl TraceSource {
    /// Wrap a per-slot trace.
    pub fn new(label: impl Into<String>, trace: TimeSeries) -> Self {
        TraceSource { label: label.into(), trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &TimeSeries {
        &self.trace
    }
}

impl PowerSource for TraceSource {
    fn power_in_slot(&mut self, clock: SlotClock, s: SlotIdx) -> f64 {
        debug_assert_eq!(
            clock.width(),
            self.trace.clock().width(),
            "trace queried with mismatched slot width"
        );
        self.trace.get(s)
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

/// Sum of several sources (e.g. a solar farm plus a wind turbine).
pub struct MixedSource {
    parts: Vec<Box<dyn PowerSource + Send>>,
}

impl MixedSource {
    /// A mix with no parts (produces zero).
    pub fn new() -> Self {
        MixedSource { parts: Vec::new() }
    }

    /// Add a component source.
    pub fn with(mut self, src: Box<dyn PowerSource + Send>) -> Self {
        self.parts.push(src);
        self
    }

    /// Number of component sources.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the mix is empty.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Default for MixedSource {
    fn default() -> Self {
        MixedSource::new()
    }
}

impl PowerSource for MixedSource {
    fn power_in_slot(&mut self, clock: SlotClock, s: SlotIdx) -> f64 {
        self.parts.iter_mut().map(|p| p.power_in_slot(clock, s)).sum()
    }

    fn label(&self) -> String {
        if self.parts.is_empty() {
            "none".to_string()
        } else {
            self.parts.iter().map(|p| p.label()).collect::<Vec<_>>().join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: f64, n: usize) -> TraceSource {
        TraceSource::new("flat", TimeSeries::from_values(SlotClock::hourly(), vec![v; n]))
    }

    #[test]
    fn trace_playback_returns_slots() {
        let mut t = TraceSource::new(
            "t",
            TimeSeries::from_values(SlotClock::hourly(), vec![1.0, 2.0, 3.0]),
        );
        let c = SlotClock::hourly();
        assert_eq!(t.power_in_slot(c, 0), 1.0);
        assert_eq!(t.power_in_slot(c, 2), 3.0);
        assert_eq!(t.power_in_slot(c, 99), 0.0, "beyond trace end is zero");
    }

    #[test]
    fn materialize_freezes_source() {
        let mut t = flat(5.0, 4);
        let m = t.materialize(SlotClock::hourly(), 6);
        assert_eq!(m.values(), &[5.0, 5.0, 5.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn mixed_source_sums_and_labels() {
        let mut m = MixedSource::new().with(Box::new(flat(10.0, 3))).with(Box::new(flat(2.5, 3)));
        assert_eq!(m.len(), 2);
        let c = SlotClock::hourly();
        assert_eq!(m.power_in_slot(c, 1), 12.5);
        assert_eq!(m.label(), "flat+flat");
        let empty = MixedSource::new();
        assert_eq!(empty.label(), "none");
        assert!(empty.is_empty());
    }
}
