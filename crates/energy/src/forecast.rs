//! Renewable-production forecasters.
//!
//! Renewable-aware schedulers plan against *predicted* green power for the
//! next few slots. The modeling convention of the era is short-horizon
//! (next-slot to next-day) prediction, often assumed error-free in
//! validation; this module provides that oracle plus realistic alternatives
//! so forecast sensitivity (R-Table4) can be measured:
//!
//! * [`OracleForecaster`] — perfect knowledge of the materialised trace.
//! * [`PersistenceForecaster`] — "same as yesterday at this hour", the
//!   classic no-skill baseline for diurnal sources.
//! * [`EwmaForecaster`] — exponentially-weighted average per hour-of-day.
//! * [`NoisyOracle`] — the oracle with multiplicative lognormal error of a
//!   configurable magnitude, for dose–response studies.

use gm_sim::dist::{lognormal_mean_cv, normal_quantile};
use gm_sim::time::SlotIdx;
use gm_sim::{RngFactory, TimeSeries};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The portable mutable state of a [`Forecaster`], for checkpointing.
///
/// Forecasters are trait objects built from config (they embed the trace),
/// so a snapshot cannot serialize them whole. Instead each implementation
/// exports only what it has *learned* since construction; restoring means
/// rebuilding the forecaster from the resume config and importing this
/// state on top. Stateless forecasters (oracle, noisy oracle) export
/// [`ForecasterState::Stateless`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForecasterState {
    /// Nothing to carry: the forecaster reads only the immutable trace.
    Stateless,
    /// EWMA per slot-of-day position (`None` = no observation yet) —
    /// legacy shape (snapshot v1/v2, before error tracking). Still
    /// importable; no longer exported.
    Ewma(Vec<Option<f64>>),
    /// Raw RNG words of a noise stream mid-sequence — legacy shape
    /// (snapshot v1/v2 `NoisyOracle`, whose noise was a sequential
    /// stream). Accepted and ignored on import: noise is now a pure
    /// function of the forecast slot, so there is no stream position to
    /// restore.
    Rng([u64; 4]),
    /// Learned state plus tracked forecast errors (snapshot v3): EWMA
    /// per-position values (empty for persistence) and the error ring
    /// buffer with its write cursor.
    Tracked {
        /// EWMA per slot-of-day position; empty for trackers without one.
        ewma: Vec<Option<f64>>,
        /// Recent `actual - predicted` samples (W), ring order.
        errors: Vec<f64>,
        /// Next write position in the ring.
        cursor: usize,
    },
}

/// Ring buffer of recent forecast errors (`actual − predicted`, in W) from
/// which empirical quantiles give a forecaster its confidence bands.
///
/// Bounded at two weeks of hourly slots so a long-lived service forgets
/// stale seasons; below [`ErrorTracker::MIN_SAMPLES`] observations the
/// quantiles are `None` and bands degenerate to the point forecast.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorTracker {
    errors: Vec<f64>,
    cursor: usize,
}

impl ErrorTracker {
    /// Ring capacity: two hourly weeks.
    pub const CAPACITY: usize = 336;
    /// Minimum samples before quantiles are considered meaningful.
    pub const MIN_SAMPLES: usize = 8;

    /// Record one error sample (`actual − predicted`).
    pub fn observe(&mut self, error: f64) {
        if self.errors.len() < Self::CAPACITY {
            self.errors.push(error);
        } else {
            self.errors[self.cursor] = error;
        }
        self.cursor = (self.cursor + 1) % Self::CAPACITY;
    }

    /// Number of tracked samples.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// Whether no samples are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }

    /// Empirical `q`-quantile of the tracked errors (the `ceil(q·n)`-th
    /// smallest), or `None` below the sample minimum.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q));
        if self.errors.len() < Self::MIN_SAMPLES {
            return None;
        }
        let mut sorted = self.errors.clone();
        sorted.sort_by(f64::total_cmp);
        let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[target - 1])
    }

    /// Portable form for [`ForecasterState::Tracked`].
    fn export(&self) -> (Vec<f64>, usize) {
        (self.errors.clone(), self.cursor)
    }

    fn import(&mut self, errors: &[f64], cursor: usize) {
        self.errors = errors.to_vec();
        self.cursor = cursor.min(Self::CAPACITY - 1);
    }
}

/// Predicts average green power (W) for future slots.
///
/// `predict(s, h)` returns the forecast for slots `s, s+1, …, s+h-1`, made
/// with information available strictly before slot `s` begins (except the
/// oracle, which is exact by construction).
pub trait Forecaster {
    /// Forecast `horizon` slots starting at `from_slot` into `out`, which
    /// is cleared first. This is the method implementors provide; callers in
    /// a hot loop reuse one buffer across calls so steady-state forecasting
    /// allocates nothing.
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>);

    /// Allocating convenience wrapper around [`Forecaster::predict_into`].
    fn predict(&mut self, from_slot: SlotIdx, horizon: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(horizon);
        self.predict_into(from_slot, horizon, &mut out);
        out
    }

    /// Probabilistic forecast: the point prediction plus a per-slot
    /// `alpha`-confidence band, `alpha ∈ [0.5, 1)`. The one-sided
    /// semantics admission control needs: for each slot `k`,
    /// `P(actual ≥ lower[k]) ≥ alpha` and `P(actual ≤ upper[k]) ≥ alpha`
    /// under the forecaster's error model. `point` receives exactly what
    /// [`Forecaster::predict_into`] would, so band-aware callers see the
    /// identical point forecast as band-oblivious ones. All three buffers
    /// are cleared first.
    ///
    /// Default: degenerate bands (`lower == upper == point`) — exact for
    /// the oracle, neutral for forecasters without an error model.
    fn predict_bands_into(
        &mut self,
        from_slot: SlotIdx,
        horizon: usize,
        alpha: f64,
        point: &mut Vec<f64>,
        lower: &mut Vec<f64>,
        upper: &mut Vec<f64>,
    ) {
        debug_assert!((0.5..1.0).contains(&alpha), "confidence level out of range: {alpha}");
        self.predict_into(from_slot, horizon, point);
        lower.clear();
        lower.extend_from_slice(point);
        upper.clear();
        upper.extend_from_slice(point);
    }

    /// Feed the realised production of a completed slot. Stateless
    /// forecasters ignore it; learning ones (EWMA) update.
    fn observe_actual(&mut self, _slot: SlotIdx, _power_w: f64) {}

    /// Export the mutable state accumulated since construction, for
    /// checkpointing. Default: [`ForecasterState::Stateless`].
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Stateless
    }

    /// Overlay state captured by [`Forecaster::export_state`] onto a
    /// freshly-built forecaster. Implementations must accept
    /// [`ForecasterState::Stateless`] as a no-op (cross-variant branches
    /// may resume a learning forecaster from a stateless checkpoint) and
    /// ignore shapes they did not produce.
    fn import_state(&mut self, _state: &ForecasterState) {}

    /// Label for reports.
    fn label(&self) -> String;
}

/// Error-free forecast straight from the materialised trace.
#[derive(Debug, Clone)]
pub struct OracleForecaster {
    trace: TimeSeries,
}

impl OracleForecaster {
    /// Oracle over the given trace.
    pub fn new(trace: TimeSeries) -> Self {
        OracleForecaster { trace }
    }
}

impl Forecaster for OracleForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| self.trace.get(s)));
    }

    fn label(&self) -> String {
        "oracle".into()
    }
}

/// "Tomorrow is like today": the value observed one day earlier in the true
/// trace (zero for the first day, i.e. a cold start).
#[derive(Debug, Clone)]
pub struct PersistenceForecaster {
    trace: TimeSeries,
    slots_per_day: usize,
    errors: ErrorTracker,
}

impl PersistenceForecaster {
    /// Persistence forecaster over the actual trace (it only ever reads
    /// values at least one day in the past).
    pub fn new(trace: TimeSeries) -> Self {
        let slots_per_day = trace.clock().slots_per_day();
        PersistenceForecaster { trace, slots_per_day, errors: ErrorTracker::default() }
    }

    fn point_at(&self, s: SlotIdx) -> f64 {
        if s >= self.slots_per_day {
            self.trace.get(s - self.slots_per_day)
        } else {
            0.0
        }
    }
}

impl Forecaster for PersistenceForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| self.point_at(s)));
    }

    fn predict_bands_into(
        &mut self,
        from_slot: SlotIdx,
        horizon: usize,
        alpha: f64,
        point: &mut Vec<f64>,
        lower: &mut Vec<f64>,
        upper: &mut Vec<f64>,
    ) {
        self.predict_into(from_slot, horizon, point);
        empirical_bands(&self.errors, alpha, point, lower, upper);
    }

    fn observe_actual(&mut self, slot: SlotIdx, power_w: f64) {
        self.errors.observe(power_w - self.point_at(slot));
    }

    fn export_state(&self) -> ForecasterState {
        let (errors, cursor) = self.errors.export();
        ForecasterState::Tracked { ewma: Vec::new(), errors, cursor }
    }

    fn import_state(&mut self, state: &ForecasterState) {
        if let ForecasterState::Tracked { errors, cursor, .. } = state {
            self.errors.import(errors, *cursor);
        }
    }

    fn label(&self) -> String {
        "persistence".into()
    }
}

/// Shared band construction from tracked empirical errors: shift the point
/// by the error distribution's tails, clamped at zero power. With too few
/// samples the bands collapse to the point forecast.
fn empirical_bands(
    errors: &ErrorTracker,
    alpha: f64,
    point: &[f64],
    lower: &mut Vec<f64>,
    upper: &mut Vec<f64>,
) {
    debug_assert!((0.5..1.0).contains(&alpha), "confidence level out of range: {alpha}");
    lower.clear();
    upper.clear();
    let (lo_shift, hi_shift) = match (errors.quantile(1.0 - alpha), errors.quantile(alpha)) {
        (Some(lo), Some(hi)) => (lo.min(0.0), hi.max(0.0)),
        _ => (0.0, 0.0),
    };
    lower.extend(point.iter().map(|&p| (p + lo_shift).max(0.0)));
    upper.extend(point.iter().map(|&p| p + hi_shift));
}

/// Exponentially-weighted moving average per slot-of-day position.
///
/// Must be fed observations via [`EwmaForecaster::observe`] as the
/// simulation advances; predictions for a slot use the EWMA of previous
/// days' observations at the same position.
#[derive(Debug, Clone)]
pub struct EwmaForecaster {
    alpha: f64,
    slots_per_day: usize,
    /// EWMA per slot-of-day; None until first observation at that position.
    state: Vec<Option<f64>>,
    errors: ErrorTracker,
}

impl EwmaForecaster {
    /// EWMA with smoothing factor `alpha ∈ (0, 1]` for a clock with
    /// `slots_per_day` positions.
    pub fn new(alpha: f64, slots_per_day: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        assert!(slots_per_day > 0);
        EwmaForecaster {
            alpha,
            slots_per_day,
            state: vec![None; slots_per_day],
            errors: ErrorTracker::default(),
        }
    }

    /// Record the actual production of `slot`.
    ///
    /// Observations are keyed by `slot % slots_per_day` — the position in
    /// the (site-local, since per-site traces are rotated by their UTC
    /// offset at materialisation) day — never by a running call count, so
    /// the learned pattern is invariant to *when* observation starts and
    /// to snapshot-resume forward seeks.
    pub fn observe(&mut self, slot: SlotIdx, power_w: f64) {
        let pos = slot % self.slots_per_day;
        // Track the error of what this forecaster would have predicted for
        // `slot` just before observing it (cold positions predict 0).
        self.errors.observe(power_w - self.state[pos].unwrap_or(0.0));
        self.state[pos] = Some(match self.state[pos] {
            None => power_w,
            Some(prev) => self.alpha * power_w + (1.0 - self.alpha) * prev,
        });
    }
}

impl Forecaster for EwmaForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (from_slot..from_slot + horizon)
                .map(|s| self.state[s % self.slots_per_day].unwrap_or(0.0)),
        );
    }

    fn predict_bands_into(
        &mut self,
        from_slot: SlotIdx,
        horizon: usize,
        alpha: f64,
        point: &mut Vec<f64>,
        lower: &mut Vec<f64>,
        upper: &mut Vec<f64>,
    ) {
        self.predict_into(from_slot, horizon, point);
        empirical_bands(&self.errors, alpha, point, lower, upper);
    }

    fn observe_actual(&mut self, slot: SlotIdx, power_w: f64) {
        self.observe(slot, power_w);
    }

    fn export_state(&self) -> ForecasterState {
        let (errors, cursor) = self.errors.export();
        ForecasterState::Tracked { ewma: self.state.clone(), errors, cursor }
    }

    fn import_state(&mut self, state: &ForecasterState) {
        match state {
            // Legacy shape (snapshot v1/v2): EWMA values, no error ring.
            ForecasterState::Ewma(s) => {
                assert_eq!(
                    s.len(),
                    self.slots_per_day,
                    "EWMA state length must match the clock's slots-per-day"
                );
                self.state = s.clone();
            }
            // A tracked state from another forecaster kind (e.g. a
            // persistence checkpoint resumed under EWMA in a what-if
            // branch) carries no per-position vector — ignore it rather
            // than adopt a shape this forecaster did not produce.
            ForecasterState::Tracked { ewma, errors, cursor }
                if ewma.len() == self.slots_per_day =>
            {
                self.state = ewma.clone();
                self.errors.import(errors, *cursor);
            }
            _ => {}
        }
    }

    fn label(&self) -> String {
        format!("ewma({})", self.alpha)
    }
}

/// Oracle perturbed by multiplicative lognormal noise with unit mean and the
/// given coefficient of variation — a controllable "how wrong can the
/// forecast be before the policy breaks" knob.
///
/// Noise is **counter-based**: slot `s`'s multiplier comes from a
/// `keyed_seed((slot, draw))`-seeded generator, so the forecast for a slot
/// is a pure function of `(master seed, slot)`. Historically the noise was
/// a sequential stream, which made "the forecast for slot s" depend on the
/// call pattern and on which earlier slots were zero — overlapping predict
/// windows disagreed, and there was no well-defined quantity to put a
/// confidence band around.
pub struct NoisyOracle {
    trace: TimeSeries,
    cv: f64,
    /// Pre-mixed base of the per-slot noise seeds.
    noise_base: u64,
}

impl NoisyOracle {
    /// Noisy oracle with error coefficient-of-variation `cv`.
    pub fn new(trace: TimeSeries, cv: f64, rngs: &RngFactory) -> Self {
        assert!(cv >= 0.0);
        NoisyOracle { trace, cv, noise_base: rngs.seed_for("forecast-noise") }
    }

    /// The (slot-pure) noise multiplier applied to slot `s`.
    fn multiplier(&self, s: SlotIdx) -> f64 {
        let mut rng = SmallRng::seed_from_u64(RngFactory::keyed_seed(self.noise_base, s as u64, 0));
        lognormal_mean_cv(&mut rng, 1.0, self.cv)
    }
}

impl Forecaster for NoisyOracle {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| {
            let v = self.trace.get(s);
            if v == 0.0 || self.cv == 0.0 {
                v
            } else {
                v * self.multiplier(s)
            }
        }));
    }

    fn predict_bands_into(
        &mut self,
        from_slot: SlotIdx,
        horizon: usize,
        alpha: f64,
        point: &mut Vec<f64>,
        lower: &mut Vec<f64>,
        upper: &mut Vec<f64>,
    ) {
        debug_assert!((0.5..1.0).contains(&alpha), "confidence level out of range: {alpha}");
        self.predict_into(from_slot, horizon, point);
        lower.clear();
        upper.clear();
        if self.cv == 0.0 {
            lower.extend_from_slice(point);
            upper.extend_from_slice(point);
            return;
        }
        // Analytic quantiles: the point is `actual × X` with
        // `X ~ LogNormal(mean 1, cv)`, so `actual = point / X` and
        // `ln(actual/point) ~ N(σ²/2, σ)` with `σ² = ln(1 + cv²)`.
        let sigma2 = (1.0 + self.cv * self.cv).ln();
        let sigma = sigma2.sqrt();
        let lo = (sigma2 / 2.0 + sigma * normal_quantile(1.0 - alpha)).exp();
        let hi = (sigma2 / 2.0 + sigma * normal_quantile(alpha)).exp();
        lower.extend(point.iter().map(|&p| p * lo.min(1.0)));
        upper.extend(point.iter().map(|&p| p * hi.max(1.0)));
    }

    // Noise is a pure function of the forecast slot — nothing to
    // checkpoint. Legacy `Rng` states from v1/v2 snapshots are accepted by
    // the default `import_state` no-op.

    fn label(&self) -> String {
        format!("noisy-oracle(cv={})", self.cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SlotClock;

    fn trace(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(SlotClock::hourly(), vals.to_vec())
    }

    fn two_day_trace() -> TimeSeries {
        // Day 1: ramp 0..23, Day 2: ramp scaled ×2.
        let mut v: Vec<f64> = (0..24).map(|h| h as f64).collect();
        v.extend((0..24).map(|h| 2.0 * h as f64));
        trace(&v)
    }

    #[test]
    fn oracle_is_exact() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0]);
        let mut f = OracleForecaster::new(t);
        assert_eq!(f.predict(1, 3), vec![2.0, 3.0, 4.0]);
        assert_eq!(f.predict(3, 3), vec![4.0, 0.0, 0.0], "beyond end is zero");
    }

    #[test]
    fn persistence_returns_yesterday() {
        let mut f = PersistenceForecaster::new(two_day_trace());
        // Slot 24 (day-2 hour 0) predicted as day-1 hour 0 = 0.
        assert_eq!(f.predict(24, 2), vec![0.0, 1.0]);
        // Slot 30 predicted as slot 6 = 6.0 (actual is 12.0).
        assert_eq!(f.predict(30, 1), vec![6.0]);
        // Cold start: day 1 predicts zero.
        assert_eq!(f.predict(5, 1), vec![0.0]);
    }

    #[test]
    fn ewma_learns_daily_pattern() {
        let mut f = EwmaForecaster::new(0.5, 24);
        // Observe two days of constant 100 W at hour 12, zero elsewhere.
        for day in 0..2 {
            for h in 0..24 {
                f.observe(day * 24 + h, if h == 12 { 100.0 } else { 0.0 });
            }
        }
        let p = f.predict(48, 24);
        assert_eq!(p[12], 100.0);
        assert_eq!(p[0], 0.0);
        // New lower observation shifts the EWMA halfway.
        f.observe(48 + 12, 0.0);
        assert_eq!(f.predict(72, 24)[12], 50.0);
    }

    #[test]
    fn ewma_cold_start_is_zero() {
        let mut f = EwmaForecaster::new(0.3, 24);
        assert_eq!(f.predict(0, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn noisy_oracle_zero_cv_is_oracle() {
        let t = two_day_trace();
        let rngs = RngFactory::new(3);
        let mut noisy = NoisyOracle::new(t.clone(), 0.0, &rngs);
        let mut oracle = OracleForecaster::new(t);
        assert_eq!(noisy.predict(10, 5), oracle.predict(10, 5));
    }

    #[test]
    fn noisy_oracle_is_unbiased_but_noisy() {
        let t = trace(&vec![100.0; 500]);
        let rngs = RngFactory::new(4);
        let mut noisy = NoisyOracle::new(t, 0.3, &rngs);
        let p = noisy.predict(0, 500);
        let mean = p.iter().sum::<f64>() / 500.0;
        assert!((mean - 100.0).abs() < 5.0, "unbiased mean {mean}");
        let distinct = p.iter().filter(|&&v| (v - 100.0).abs() > 1.0).count();
        assert!(distinct > 400, "noise actually applied");
        // Night (zero) slots stay exactly zero.
        let mut dark = NoisyOracle::new(trace(&[0.0; 5]), 0.3, &RngFactory::new(4));
        assert_eq!(dark.predict(0, 5), vec![0.0; 5]);
    }

    #[test]
    fn ewma_state_roundtrip() {
        let mut f = EwmaForecaster::new(0.5, 24);
        for h in 0..24 {
            f.observe(h, h as f64 * 10.0);
        }
        let state = f.export_state();
        let mut g = EwmaForecaster::new(0.5, 24);
        g.import_state(&state);
        assert_eq!(f.predict(24, 24), g.predict(24, 24));
        // Stateless import is a no-op, not a reset.
        g.import_state(&ForecasterState::Stateless);
        assert_eq!(f.predict(24, 24), g.predict(24, 24));
    }

    #[test]
    fn noisy_oracle_overlapping_windows_agree() {
        // Regression (the satellite bugfix): noise is a pure function of
        // the forecast slot, so two predict windows that overlap must
        // return identical values for the shared slots. Under the old
        // sequential noise stream the second window's draws were offset by
        // the first call's draw count and this failed.
        let t = trace(&vec![100.0; 64]);
        let rngs = RngFactory::new(9);
        let mut f = NoisyOracle::new(t, 0.3, &rngs);
        let a = f.predict(0, 24);
        let b = f.predict(12, 24);
        assert_eq!(&a[12..24], &b[..12], "overlap must agree");
        // Repeated identical calls agree too (old code re-drew noise).
        assert_eq!(f.predict(0, 24), a);
        // Zero slots consume no draw alignment: a trace with leading zeros
        // gives the same slot-10 forecast as one without.
        let mut dark_start = vec![0.0; 10];
        dark_start.extend(vec![100.0; 54]);
        let mut g = NoisyOracle::new(trace(&dark_start), 0.3, &RngFactory::new(9));
        assert_eq!(g.predict(10, 5), f.predict(10, 5));
    }

    #[test]
    fn noisy_oracle_is_stateless() {
        // Slot-pure noise means there is no stream position to carry: a
        // fresh same-seed instance reproduces any window without replaying
        // earlier calls, and legacy Rng states import as a no-op.
        let t = trace(&vec![100.0; 64]);
        let mut a = NoisyOracle::new(t.clone(), 0.3, &RngFactory::new(9));
        let _ = a.predict(0, 16);
        assert_eq!(a.export_state(), ForecasterState::Stateless);
        let mut b = NoisyOracle::new(t, 0.3, &RngFactory::new(9));
        b.import_state(&ForecasterState::Rng([1, 2, 3, 4]));
        assert_eq!(a.predict(16, 16), b.predict(16, 16));
    }

    #[test]
    fn noisy_oracle_bands_bracket_and_tighten_with_alpha() {
        let t = trace(&vec![100.0; 48]);
        let mut f = NoisyOracle::new(t, 0.4, &RngFactory::new(5));
        let (mut p, mut lo, mut hi) = (Vec::new(), Vec::new(), Vec::new());
        let mut prev_lo: Option<Vec<f64>> = None;
        for alpha in [0.5, 0.8, 0.9, 0.99] {
            f.predict_bands_into(0, 24, alpha, &mut p, &mut lo, &mut hi);
            assert_eq!(p, f.predict(0, 24), "bands do not perturb the point forecast");
            for k in 0..24 {
                assert!(lo[k] <= p[k] && p[k] <= hi[k], "alpha={alpha} k={k}");
                assert!(lo[k] > 0.0, "lognormal lower band stays positive");
            }
            if let Some(prev) = &prev_lo {
                for k in 0..24 {
                    assert!(lo[k] <= prev[k] + 1e-12, "lower band shrinks as alpha rises");
                }
            }
            prev_lo = Some(lo.clone());
        }
        // cv = 0 collapses the bands onto the (exact) point.
        let mut exact = NoisyOracle::new(trace(&[7.0; 8]), 0.0, &RngFactory::new(5));
        exact.predict_bands_into(0, 8, 0.9, &mut p, &mut lo, &mut hi);
        assert_eq!(p, lo);
        assert_eq!(p, hi);
    }

    #[test]
    fn empirical_bands_track_observed_errors() {
        let mut f = EwmaForecaster::new(0.5, 24);
        let (mut p, mut lo, mut hi) = (Vec::new(), Vec::new(), Vec::new());
        // Before enough observations: degenerate bands.
        f.predict_bands_into(0, 24, 0.9, &mut p, &mut lo, &mut hi);
        assert_eq!(p, lo);
        assert_eq!(p, hi);
        // Two days of alternating actuals around 100 W build an error
        // distribution; the band must then bracket the point.
        for day in 0..4 {
            for h in 0..24 {
                let actual = if (day * 24 + h) % 2 == 0 { 80.0 } else { 120.0 };
                f.observe(day * 24 + h, actual);
            }
        }
        f.predict_bands_into(96, 24, 0.9, &mut p, &mut lo, &mut hi);
        let mut widened = false;
        for k in 0..24 {
            assert!(lo[k] <= p[k] && p[k] <= hi[k], "k={k}");
            assert!(lo[k] >= 0.0);
            widened |= hi[k] - lo[k] > 1.0;
        }
        assert!(widened, "tracked errors must widen the band");
    }

    #[test]
    fn persistence_tracks_errors_too() {
        let mut f = PersistenceForecaster::new(two_day_trace());
        let (mut p, mut lo, mut hi) = (Vec::new(), Vec::new(), Vec::new());
        // Day 2 actuals are double day 1's, so persistence under-predicts
        // and the tracked errors are positive: upper band lifts.
        for s in 0..48 {
            let actual = if s < 24 { s as f64 } else { 2.0 * (s - 24) as f64 };
            f.observe_actual(s, actual);
        }
        f.predict_bands_into(48, 24, 0.9, &mut p, &mut lo, &mut hi);
        let lifted = (0..24).any(|k| hi[k] > p[k] + 1.0);
        assert!(lifted, "positive errors must lift the upper band");
        for k in 0..24 {
            assert!(lo[k] <= p[k] && p[k] <= hi[k], "k={k}");
        }
    }

    #[test]
    fn tracked_state_roundtrips_bands() {
        // Resume fidelity for the error ring: export mid-run, import into
        // a fresh instance, and both future observations and bands agree
        // with the uninterrupted run.
        let mut cold = EwmaForecaster::new(0.4, 24);
        let mut split = EwmaForecaster::new(0.4, 24);
        for s in 0..30 {
            let v = (s % 24) as f64 * 3.0 + 5.0;
            cold.observe(s, v);
            split.observe(s, v);
        }
        let state = split.export_state();
        let mut resumed = EwmaForecaster::new(0.4, 24);
        resumed.import_state(&state);
        for s in 30..40 {
            let v = (s % 24) as f64 * 2.0;
            cold.observe(s, v);
            resumed.observe(s, v);
        }
        let (mut p1, mut l1, mut h1) = (Vec::new(), Vec::new(), Vec::new());
        let (mut p2, mut l2, mut h2) = (Vec::new(), Vec::new(), Vec::new());
        cold.predict_bands_into(40, 24, 0.9, &mut p1, &mut l1, &mut h1);
        resumed.predict_bands_into(40, 24, 0.9, &mut p2, &mut l2, &mut h2);
        assert_eq!(p1, p2);
        assert_eq!(l1, l2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn ewma_observe_is_keyed_by_position_not_call_count() {
        // The satellite-3 audit pin: observations are keyed by
        // slot-of-day position, so a forecaster that starts observing
        // mid-run (a snapshot-resume forward seek) learns exactly what an
        // uninterrupted one knowing the same slots would, and an
        // observation affects only its own position.
        let mut f = EwmaForecaster::new(0.4, 24);
        f.observe(30, 80.0); // day 2, hour 6
        let p = f.predict(48, 24);
        assert_eq!(p[6], 80.0, "observation lands at its slot-local position");
        assert!(p.iter().enumerate().all(|(k, &v)| k == 6 || v == 0.0));
        // Same observations, different starting day: identical pattern.
        let mut early = EwmaForecaster::new(0.4, 24);
        let mut late = EwmaForecaster::new(0.4, 24);
        for h in 0..24 {
            early.observe(48 + h, h as f64);
            late.observe(96 + h, h as f64);
        }
        assert_eq!(early.predict(120, 24), late.predict(120, 24));
    }

    #[test]
    fn error_tracker_ring_overwrites_oldest() {
        let mut t = ErrorTracker::default();
        for i in 0..(ErrorTracker::CAPACITY + 10) {
            t.observe(i as f64);
        }
        assert_eq!(t.len(), ErrorTracker::CAPACITY);
        // The oldest 10 samples were overwritten: the minimum is 10.
        assert_eq!(t.quantile(0.0).unwrap(), 10.0);
        assert_eq!(t.quantile(1.0).unwrap(), (ErrorTracker::CAPACITY + 9) as f64);
    }

    #[test]
    fn labels() {
        assert_eq!(OracleForecaster::new(trace(&[])).label(), "oracle");
        assert_eq!(PersistenceForecaster::new(trace(&[])).label(), "persistence");
        assert_eq!(EwmaForecaster::new(0.5, 24).label(), "ewma(0.5)");
    }
}
