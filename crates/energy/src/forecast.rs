//! Renewable-production forecasters.
//!
//! Renewable-aware schedulers plan against *predicted* green power for the
//! next few slots. The modeling convention of the era is short-horizon
//! (next-slot to next-day) prediction, often assumed error-free in
//! validation; this module provides that oracle plus realistic alternatives
//! so forecast sensitivity (R-Table4) can be measured:
//!
//! * [`OracleForecaster`] — perfect knowledge of the materialised trace.
//! * [`PersistenceForecaster`] — "same as yesterday at this hour", the
//!   classic no-skill baseline for diurnal sources.
//! * [`EwmaForecaster`] — exponentially-weighted average per hour-of-day.
//! * [`NoisyOracle`] — the oracle with multiplicative lognormal error of a
//!   configurable magnitude, for dose–response studies.

use gm_sim::dist::lognormal_mean_cv;
use gm_sim::time::SlotIdx;
use gm_sim::{RngFactory, TimeSeries};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// The portable mutable state of a [`Forecaster`], for checkpointing.
///
/// Forecasters are trait objects built from config (they embed the trace),
/// so a snapshot cannot serialize them whole. Instead each implementation
/// exports only what it has *learned* since construction; restoring means
/// rebuilding the forecaster from the resume config and importing this
/// state on top. Stateless forecasters (oracle, persistence) export
/// [`ForecasterState::Stateless`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForecasterState {
    /// Nothing to carry: the forecaster reads only the immutable trace.
    Stateless,
    /// EWMA per slot-of-day position (`None` = no observation yet).
    Ewma(Vec<Option<f64>>),
    /// Raw RNG words of the noise stream, mid-sequence.
    Rng([u64; 4]),
}

/// Predicts average green power (W) for future slots.
///
/// `predict(s, h)` returns the forecast for slots `s, s+1, …, s+h-1`, made
/// with information available strictly before slot `s` begins (except the
/// oracle, which is exact by construction).
pub trait Forecaster {
    /// Forecast `horizon` slots starting at `from_slot` into `out`, which
    /// is cleared first. This is the method implementors provide; callers in
    /// a hot loop reuse one buffer across calls so steady-state forecasting
    /// allocates nothing.
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>);

    /// Allocating convenience wrapper around [`Forecaster::predict_into`].
    fn predict(&mut self, from_slot: SlotIdx, horizon: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(horizon);
        self.predict_into(from_slot, horizon, &mut out);
        out
    }

    /// Feed the realised production of a completed slot. Stateless
    /// forecasters ignore it; learning ones (EWMA) update.
    fn observe_actual(&mut self, _slot: SlotIdx, _power_w: f64) {}

    /// Export the mutable state accumulated since construction, for
    /// checkpointing. Default: [`ForecasterState::Stateless`].
    fn export_state(&self) -> ForecasterState {
        ForecasterState::Stateless
    }

    /// Overlay state captured by [`Forecaster::export_state`] onto a
    /// freshly-built forecaster. Implementations must accept
    /// [`ForecasterState::Stateless`] as a no-op (cross-variant branches
    /// may resume a learning forecaster from a stateless checkpoint) and
    /// ignore shapes they did not produce.
    fn import_state(&mut self, _state: &ForecasterState) {}

    /// Label for reports.
    fn label(&self) -> String;
}

/// Error-free forecast straight from the materialised trace.
#[derive(Debug, Clone)]
pub struct OracleForecaster {
    trace: TimeSeries,
}

impl OracleForecaster {
    /// Oracle over the given trace.
    pub fn new(trace: TimeSeries) -> Self {
        OracleForecaster { trace }
    }
}

impl Forecaster for OracleForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| self.trace.get(s)));
    }

    fn label(&self) -> String {
        "oracle".into()
    }
}

/// "Tomorrow is like today": the value observed one day earlier in the true
/// trace (zero for the first day, i.e. a cold start).
#[derive(Debug, Clone)]
pub struct PersistenceForecaster {
    trace: TimeSeries,
    slots_per_day: usize,
}

impl PersistenceForecaster {
    /// Persistence forecaster over the actual trace (it only ever reads
    /// values at least one day in the past).
    pub fn new(trace: TimeSeries) -> Self {
        let slots_per_day = trace.clock().slots_per_day();
        PersistenceForecaster { trace, slots_per_day }
    }
}

impl Forecaster for PersistenceForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| {
            if s >= self.slots_per_day {
                self.trace.get(s - self.slots_per_day)
            } else {
                0.0
            }
        }));
    }

    fn label(&self) -> String {
        "persistence".into()
    }
}

/// Exponentially-weighted moving average per slot-of-day position.
///
/// Must be fed observations via [`EwmaForecaster::observe`] as the
/// simulation advances; predictions for a slot use the EWMA of previous
/// days' observations at the same position.
#[derive(Debug, Clone)]
pub struct EwmaForecaster {
    alpha: f64,
    slots_per_day: usize,
    /// EWMA per slot-of-day; None until first observation at that position.
    state: Vec<Option<f64>>,
}

impl EwmaForecaster {
    /// EWMA with smoothing factor `alpha ∈ (0, 1]` for a clock with
    /// `slots_per_day` positions.
    pub fn new(alpha: f64, slots_per_day: usize) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        assert!(slots_per_day > 0);
        EwmaForecaster { alpha, slots_per_day, state: vec![None; slots_per_day] }
    }

    /// Record the actual production of `slot`.
    pub fn observe(&mut self, slot: SlotIdx, power_w: f64) {
        let pos = slot % self.slots_per_day;
        self.state[pos] = Some(match self.state[pos] {
            None => power_w,
            Some(prev) => self.alpha * power_w + (1.0 - self.alpha) * prev,
        });
    }
}

impl Forecaster for EwmaForecaster {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            (from_slot..from_slot + horizon)
                .map(|s| self.state[s % self.slots_per_day].unwrap_or(0.0)),
        );
    }

    fn observe_actual(&mut self, slot: SlotIdx, power_w: f64) {
        self.observe(slot, power_w);
    }

    fn export_state(&self) -> ForecasterState {
        ForecasterState::Ewma(self.state.clone())
    }

    fn import_state(&mut self, state: &ForecasterState) {
        if let ForecasterState::Ewma(s) = state {
            assert_eq!(
                s.len(),
                self.slots_per_day,
                "EWMA state length must match the clock's slots-per-day"
            );
            self.state = s.clone();
        }
    }

    fn label(&self) -> String {
        format!("ewma({})", self.alpha)
    }
}

/// Oracle perturbed by multiplicative lognormal noise with unit mean and the
/// given coefficient of variation — a controllable "how wrong can the
/// forecast be before the policy breaks" knob.
pub struct NoisyOracle {
    trace: TimeSeries,
    cv: f64,
    rng: SmallRng,
}

impl NoisyOracle {
    /// Noisy oracle with error coefficient-of-variation `cv`.
    pub fn new(trace: TimeSeries, cv: f64, rngs: &RngFactory) -> Self {
        assert!(cv >= 0.0);
        NoisyOracle { trace, cv, rng: rngs.stream("forecast-noise") }
    }
}

impl Forecaster for NoisyOracle {
    fn predict_into(&mut self, from_slot: SlotIdx, horizon: usize, out: &mut Vec<f64>) {
        // Draw order must stay exactly one lognormal per non-zero slot in
        // ascending slot order: the noise stream is part of the seeded
        // byte-identity contract.
        out.clear();
        out.extend((from_slot..from_slot + horizon).map(|s| {
            let v = self.trace.get(s);
            if v == 0.0 || self.cv == 0.0 {
                v
            } else {
                v * lognormal_mean_cv(&mut self.rng, 1.0, self.cv)
            }
        }));
    }

    fn export_state(&self) -> ForecasterState {
        ForecasterState::Rng(self.rng.state())
    }

    fn import_state(&mut self, state: &ForecasterState) {
        if let ForecasterState::Rng(words) = state {
            self.rng = SmallRng::from_state(*words);
        }
    }

    fn label(&self) -> String {
        format!("noisy-oracle(cv={})", self.cv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SlotClock;

    fn trace(vals: &[f64]) -> TimeSeries {
        TimeSeries::from_values(SlotClock::hourly(), vals.to_vec())
    }

    fn two_day_trace() -> TimeSeries {
        // Day 1: ramp 0..23, Day 2: ramp scaled ×2.
        let mut v: Vec<f64> = (0..24).map(|h| h as f64).collect();
        v.extend((0..24).map(|h| 2.0 * h as f64));
        trace(&v)
    }

    #[test]
    fn oracle_is_exact() {
        let t = trace(&[1.0, 2.0, 3.0, 4.0]);
        let mut f = OracleForecaster::new(t);
        assert_eq!(f.predict(1, 3), vec![2.0, 3.0, 4.0]);
        assert_eq!(f.predict(3, 3), vec![4.0, 0.0, 0.0], "beyond end is zero");
    }

    #[test]
    fn persistence_returns_yesterday() {
        let mut f = PersistenceForecaster::new(two_day_trace());
        // Slot 24 (day-2 hour 0) predicted as day-1 hour 0 = 0.
        assert_eq!(f.predict(24, 2), vec![0.0, 1.0]);
        // Slot 30 predicted as slot 6 = 6.0 (actual is 12.0).
        assert_eq!(f.predict(30, 1), vec![6.0]);
        // Cold start: day 1 predicts zero.
        assert_eq!(f.predict(5, 1), vec![0.0]);
    }

    #[test]
    fn ewma_learns_daily_pattern() {
        let mut f = EwmaForecaster::new(0.5, 24);
        // Observe two days of constant 100 W at hour 12, zero elsewhere.
        for day in 0..2 {
            for h in 0..24 {
                f.observe(day * 24 + h, if h == 12 { 100.0 } else { 0.0 });
            }
        }
        let p = f.predict(48, 24);
        assert_eq!(p[12], 100.0);
        assert_eq!(p[0], 0.0);
        // New lower observation shifts the EWMA halfway.
        f.observe(48 + 12, 0.0);
        assert_eq!(f.predict(72, 24)[12], 50.0);
    }

    #[test]
    fn ewma_cold_start_is_zero() {
        let mut f = EwmaForecaster::new(0.3, 24);
        assert_eq!(f.predict(0, 3), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn noisy_oracle_zero_cv_is_oracle() {
        let t = two_day_trace();
        let rngs = RngFactory::new(3);
        let mut noisy = NoisyOracle::new(t.clone(), 0.0, &rngs);
        let mut oracle = OracleForecaster::new(t);
        assert_eq!(noisy.predict(10, 5), oracle.predict(10, 5));
    }

    #[test]
    fn noisy_oracle_is_unbiased_but_noisy() {
        let t = trace(&vec![100.0; 500]);
        let rngs = RngFactory::new(4);
        let mut noisy = NoisyOracle::new(t, 0.3, &rngs);
        let p = noisy.predict(0, 500);
        let mean = p.iter().sum::<f64>() / 500.0;
        assert!((mean - 100.0).abs() < 5.0, "unbiased mean {mean}");
        let distinct = p.iter().filter(|&&v| (v - 100.0).abs() > 1.0).count();
        assert!(distinct > 400, "noise actually applied");
        // Night (zero) slots stay exactly zero.
        let mut dark = NoisyOracle::new(trace(&[0.0; 5]), 0.3, &RngFactory::new(4));
        assert_eq!(dark.predict(0, 5), vec![0.0; 5]);
    }

    #[test]
    fn ewma_state_roundtrip() {
        let mut f = EwmaForecaster::new(0.5, 24);
        for h in 0..24 {
            f.observe(h, h as f64 * 10.0);
        }
        let state = f.export_state();
        let mut g = EwmaForecaster::new(0.5, 24);
        g.import_state(&state);
        assert_eq!(f.predict(24, 24), g.predict(24, 24));
        // Stateless import is a no-op, not a reset.
        g.import_state(&ForecasterState::Stateless);
        assert_eq!(f.predict(24, 24), g.predict(24, 24));
    }

    #[test]
    fn noisy_oracle_state_resumes_the_stream() {
        let t = trace(&vec![100.0; 64]);
        let rngs = RngFactory::new(9);
        let mut a = NoisyOracle::new(t.clone(), 0.3, &rngs);
        let _ = a.predict(0, 16);
        let state = a.export_state();
        let mut b = NoisyOracle::new(t, 0.3, &RngFactory::new(9));
        b.import_state(&state);
        assert_eq!(a.predict(16, 16), b.predict(16, 16));
    }

    #[test]
    fn labels() {
        assert_eq!(OracleForecaster::new(trace(&[])).label(), "oracle");
        assert_eq!(PersistenceForecaster::new(trace(&[])).label(), "persistence");
        assert_eq!(EwmaForecaster::new(0.5, 24).label(), "ewma(0.5)");
    }
}
