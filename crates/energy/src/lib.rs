//! # gm-energy — renewable supply, storage and grid models
//!
//! The energy substrate of the GreenMatch reproduction:
//!
//! * [`solar`] — a photovoltaic farm model: clear-sky solar elevation
//!   (declination + hour angle) × panel area/efficiency × an AR(1) cloud
//!   attenuation process. Presets reproduce the "mostly sunny summer week"
//!   shape that on-site-PV papers of the era evaluate on, plus cloudy and
//!   winter profiles for sensitivity.
//! * [`wind`] — a wind farm model: AR(1) log wind-speed with diurnal
//!   modulation fed through a cut-in/rated/cut-out turbine power curve.
//! * [`supply`] — the [`supply::PowerSource`] abstraction, trace playback and
//!   source mixing, and materialisation into per-slot [`gm_sim::TimeSeries`].
//! * [`battery`] — the Energy Storage Device model with efficiency,
//!   charge/discharge rate limits, depth-of-discharge and self-discharge;
//!   lead-acid and lithium-ion presets.
//! * [`grid`] — the brown backup supply with a carbon-intensity profile.
//! * [`forecast`] — per-slot green-production forecasters (oracle,
//!   persistence, EWMA, noisy-oracle) used by renewable-aware schedulers.
//! * [`ledger`] — the per-slot energy bookkeeping with conservation
//!   identities checked in tests.
//!
//! Units: power in **watts**, energy in **watt-hours**, capacity in Wh.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod forecast;
pub mod grid;
pub mod ledger;
pub mod solar;
pub mod supply;
pub mod traces;
pub mod wind;

pub use battery::{Battery, BatteryChemistry, BatterySpec, BatteryState};
pub use forecast::{
    EwmaForecaster, Forecaster, ForecasterState, NoisyOracle, OracleForecaster,
    PersistenceForecaster,
};
pub use grid::Grid;
pub use ledger::{EnergyLedger, SlotFlows};
pub use solar::{SolarFarm, SolarProfile};
pub use supply::{MixedSource, PowerSource, TraceSource};
pub use traces::{source_from_csv, trace_from_csv, trace_to_csv};
pub use wind::{WindFarm, WindProfile};
