//! Wind farm model.
//!
//! Wind speed is modeled as an AR(1) process on the *logarithm* of speed
//! (keeping speeds positive and right-skewed, approximating the Weibull
//! marginals real sites exhibit), with a mild diurnal modulation (surface
//! wind tends to peak in the afternoon). Speed feeds a standard turbine
//! power curve:
//!
//! * below `cut_in` — no power;
//! * between `cut_in` and `rated` — cubic ramp (power ∝ v³ normalised to hit
//!   rated power at rated speed);
//! * between `rated` and `cut_out` — constant rated power;
//! * above `cut_out` — shutdown (zero), the storm-protection regime.
//!
//! The paper's future-work section motivates wind as the "completely
//! different production profile" counterpart to solar: roughly stationary
//! across the day but much burstier; R-Table3 exercises exactly that.

use crate::supply::PowerSource;
use gm_sim::dist::Ar1;
use gm_sim::time::SlotIdx;
use gm_sim::{RngFactory, SlotClock};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Wind climate preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindProfile {
    /// Steady coastal regime: mean ~7 m/s, moderate gustiness.
    SteadyCoastal,
    /// Gusty continental regime: mean ~5 m/s, high variance, more lulls.
    GustyContinental,
    /// Calm week: mean ~3.5 m/s, long lulls below cut-in.
    CalmWeek,
}

impl WindProfile {
    /// `(mean_speed_mps, log_phi, log_noise_std)`.
    fn params(self) -> (f64, f64, f64) {
        match self {
            WindProfile::SteadyCoastal => (7.0, 0.92, 0.10),
            WindProfile::GustyContinental => (5.0, 0.85, 0.22),
            WindProfile::CalmWeek => (3.5, 0.90, 0.15),
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            WindProfile::SteadyCoastal => "wind-coastal",
            WindProfile::GustyContinental => "wind-gusty",
            WindProfile::CalmWeek => "wind-calm",
        }
    }
}

/// Turbine electrical characteristics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TurbineSpec {
    /// Nameplate (rated) power in watts.
    pub rated_power_w: f64,
    /// Cut-in wind speed (m/s) below which no power is produced.
    pub cut_in_mps: f64,
    /// Rated wind speed (m/s) at which rated power is reached.
    pub rated_mps: f64,
    /// Cut-out speed (m/s) above which the turbine furls to zero.
    pub cut_out_mps: f64,
}

impl TurbineSpec {
    /// A small-site turbine comparable in peak to a ~10 kWp PV array.
    pub fn small_site(rated_power_w: f64) -> Self {
        TurbineSpec { rated_power_w, cut_in_mps: 3.0, rated_mps: 11.0, cut_out_mps: 25.0 }
    }

    /// Electrical power (W) at wind speed `v` (m/s).
    pub fn power_at(&self, v: f64) -> f64 {
        if v < self.cut_in_mps || v >= self.cut_out_mps {
            0.0
        } else if v >= self.rated_mps {
            self.rated_power_w
        } else {
            // Cubic ramp normalised so cut_in→0 and rated→rated_power.
            let num = v.powi(3) - self.cut_in_mps.powi(3);
            let den = self.rated_mps.powi(3) - self.cut_in_mps.powi(3);
            self.rated_power_w * num / den
        }
    }
}

/// A wind installation as a [`PowerSource`].
pub struct WindFarm {
    turbine: TurbineSpec,
    profile: WindProfile,
    log_speed: Ar1,
    rng: SmallRng,
}

impl WindFarm {
    /// Build a farm; the wind process stream is derived from `rngs`.
    pub fn new(turbine: TurbineSpec, profile: WindProfile, rngs: &RngFactory) -> Self {
        let (mean, phi, noise) = profile.params();
        WindFarm {
            turbine,
            profile,
            log_speed: Ar1::new(phi, mean.ln(), noise),
            rng: rngs.stream("wind-speed"),
        }
    }

    /// The turbine spec.
    pub fn turbine(&self) -> &TurbineSpec {
        &self.turbine
    }

    /// Sample the wind speed (m/s) for a slot midpoint at `hour_of_day`.
    fn speed_for(&mut self, hour_of_day: f64) -> f64 {
        // Diurnal modulation: ±10% peaking mid-afternoon (15:00).
        let diurnal = 1.0 + 0.10 * ((hour_of_day - 15.0) / 24.0 * std::f64::consts::TAU).cos();
        self.log_speed.step(&mut self.rng).exp() * diurnal
    }
}

impl PowerSource for WindFarm {
    fn power_in_slot(&mut self, clock: SlotClock, s: SlotIdx) -> f64 {
        let mid = clock.slot_start(s) + clock.width() / 2;
        let v = self.speed_for(mid.hour_of_day());
        self.turbine.power_at(v)
    }

    fn label(&self) -> String {
        format!("{}({:.1}kW)", self.profile.label(), self.turbine.rated_power_w / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SlotClock;

    #[test]
    fn power_curve_regimes() {
        let t = TurbineSpec::small_site(10_000.0);
        assert_eq!(t.power_at(0.0), 0.0);
        assert_eq!(t.power_at(2.9), 0.0, "below cut-in");
        assert_eq!(t.power_at(11.0), 10_000.0, "at rated");
        assert_eq!(t.power_at(20.0), 10_000.0, "rated plateau");
        assert_eq!(t.power_at(25.0), 0.0, "cut-out");
        let mid = t.power_at(7.0);
        assert!(mid > 0.0 && mid < 10_000.0);
        // Monotone on the ramp.
        assert!(t.power_at(8.0) > t.power_at(6.0));
    }

    #[test]
    fn ramp_is_continuous_at_cut_in() {
        let t = TurbineSpec::small_site(10_000.0);
        let eps = t.power_at(3.0 + 1e-9);
        assert!(eps < 1.0, "power just above cut-in should be ~0, got {eps}");
    }

    #[test]
    fn coastal_produces_more_than_calm() {
        let rngs = RngFactory::new(5);
        let t = TurbineSpec::small_site(10_000.0);
        let week = 7 * 24;
        let c = SlotClock::hourly();
        let coastal =
            WindFarm::new(t, WindProfile::SteadyCoastal, &rngs).materialize(c, week).energy_wh();
        let calm = WindFarm::new(t, WindProfile::CalmWeek, &rngs).materialize(c, week).energy_wh();
        assert!(coastal > calm * 1.5, "coastal {coastal} vs calm {calm}");
    }

    #[test]
    fn wind_produces_at_night_unlike_solar() {
        let rngs = RngFactory::new(11);
        let t = TurbineSpec::small_site(10_000.0);
        let mut farm = WindFarm::new(t, WindProfile::SteadyCoastal, &rngs);
        let trace = farm.materialize(SlotClock::hourly(), 7 * 24);
        // At least some night slots (00:00–04:00 of each day) have power.
        let night_energy: f64 =
            (0..7).flat_map(|d| (0..4).map(move |h| d * 24 + h)).map(|s| trace.get(s)).sum();
        assert!(night_energy > 0.0, "wind should blow at night");
    }

    #[test]
    fn deterministic_per_seed() {
        let t = TurbineSpec::small_site(5_000.0);
        let a = WindFarm::new(t, WindProfile::GustyContinental, &RngFactory::new(3))
            .materialize(SlotClock::hourly(), 48);
        let b = WindFarm::new(t, WindProfile::GustyContinental, &RngFactory::new(3))
            .materialize(SlotClock::hourly(), 48);
        assert_eq!(a.values(), b.values());
    }
}
