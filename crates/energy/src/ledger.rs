//! Per-slot energy bookkeeping.
//!
//! Every policy run produces, for each slot, a [`SlotFlows`] record; the
//! [`EnergyLedger`] accumulates them, keeps the per-slot series for plots,
//! and enforces the two conservation identities:
//!
//! ```text
//! load          = green_direct + battery_out + brown          (supply side)
//! green_produced = green_direct + battery_drawn + curtailed   (production side)
//! ```
//!
//! All quantities are **energy per slot in Wh**, already integrated by the
//! caller. Battery-internal losses (efficiency, self-discharge) live in the
//! battery and are copied into the ledger totals at the end of a run.

use crate::grid::Grid;
use gm_sim::time::SlotIdx;
use gm_sim::{SlotClock, TimeSeries};
use serde::{Deserialize, Serialize};

/// Energy flows of a single slot (Wh).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SlotFlows {
    /// Total renewable energy produced this slot.
    pub green_produced_wh: f64,
    /// Renewable energy consumed directly by the load.
    pub green_direct_wh: f64,
    /// Renewable energy drawn into the battery (source side, pre-efficiency).
    pub battery_drawn_wh: f64,
    /// Energy delivered from the battery to the load.
    pub battery_out_wh: f64,
    /// Grid (brown) energy consumed by the load.
    pub brown_wh: f64,
    /// Renewable energy neither consumed nor stored (lost/curtailed).
    pub curtailed_wh: f64,
    /// Total energy consumed by the load (= IT + overheads) this slot.
    pub load_wh: f64,
}

impl SlotFlows {
    /// Residual of the supply-side identity (should be ~0).
    pub fn supply_residual(&self) -> f64 {
        self.load_wh - (self.green_direct_wh + self.battery_out_wh + self.brown_wh)
    }

    /// Residual of the production-side identity (should be ~0).
    pub fn production_residual(&self) -> f64 {
        self.green_produced_wh - (self.green_direct_wh + self.battery_drawn_wh + self.curtailed_wh)
    }
}

/// Accumulated energy accounting for one policy run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyLedger {
    clock: SlotClock,
    grid: Grid,
    /// Per-slot series (Wh per slot) for plotting.
    green_produced: TimeSeries,
    green_direct: TimeSeries,
    battery_drawn: TimeSeries,
    battery_out: TimeSeries,
    brown: TimeSeries,
    curtailed: TimeSeries,
    load: TimeSeries,
    /// Totals (Wh).
    total: SlotFlows,
    /// Carbon (g) and cost ($) of the brown draw, integrated with the grid
    /// profiles at slot midpoints.
    carbon_g: f64,
    cost_dollars: f64,
    /// Battery-internal losses copied in by `set_battery_losses`.
    battery_efficiency_loss_wh: f64,
    battery_self_discharge_wh: f64,
    /// Scheduling overhead energy (spin-ups, migrations/reclaims), recorded
    /// separately for the loss-breakdown figure. Already included in `load`.
    spinup_overhead_wh: f64,
    reclaim_overhead_wh: f64,
}

impl EnergyLedger {
    /// An empty ledger for the given slot clock and grid.
    pub fn new(clock: SlotClock, grid: Grid) -> Self {
        EnergyLedger {
            clock,
            grid,
            green_produced: TimeSeries::zeros(clock, 0),
            green_direct: TimeSeries::zeros(clock, 0),
            battery_drawn: TimeSeries::zeros(clock, 0),
            battery_out: TimeSeries::zeros(clock, 0),
            brown: TimeSeries::zeros(clock, 0),
            curtailed: TimeSeries::zeros(clock, 0),
            load: TimeSeries::zeros(clock, 0),
            total: SlotFlows::default(),
            carbon_g: 0.0,
            cost_dollars: 0.0,
            battery_efficiency_loss_wh: 0.0,
            battery_self_discharge_wh: 0.0,
            spinup_overhead_wh: 0.0,
            reclaim_overhead_wh: 0.0,
        }
    }

    /// Record slot `s`. Panics (debug) if either conservation identity is
    /// violated beyond float tolerance.
    pub fn record_slot(&mut self, s: SlotIdx, flows: SlotFlows) {
        debug_assert!(
            flows.supply_residual().abs() < 1e-6,
            "slot {s}: supply identity violated by {} Wh ({flows:?})",
            flows.supply_residual()
        );
        debug_assert!(
            flows.production_residual().abs() < 1e-6,
            "slot {s}: production identity violated by {} Wh ({flows:?})",
            flows.production_residual()
        );
        self.green_produced.add(s, flows.green_produced_wh);
        self.green_direct.add(s, flows.green_direct_wh);
        self.battery_drawn.add(s, flows.battery_drawn_wh);
        self.battery_out.add(s, flows.battery_out_wh);
        self.brown.add(s, flows.brown_wh);
        self.curtailed.add(s, flows.curtailed_wh);
        self.load.add(s, flows.load_wh);

        self.total.green_produced_wh += flows.green_produced_wh;
        self.total.green_direct_wh += flows.green_direct_wh;
        self.total.battery_drawn_wh += flows.battery_drawn_wh;
        self.total.battery_out_wh += flows.battery_out_wh;
        self.total.brown_wh += flows.brown_wh;
        self.total.curtailed_wh += flows.curtailed_wh;
        self.total.load_wh += flows.load_wh;

        let mid = self.clock.slot_start(s) + self.clock.width() / 2;
        self.carbon_g += self.grid.carbon_for(flows.brown_wh, mid);
        self.cost_dollars += self.grid.cost_for(flows.brown_wh, mid);
    }

    /// Copy the battery's internal loss counters in at end of run.
    pub fn set_battery_losses(&mut self, efficiency_loss_wh: f64, self_discharge_wh: f64) {
        self.battery_efficiency_loss_wh = efficiency_loss_wh;
        self.battery_self_discharge_wh = self_discharge_wh;
    }

    /// Add scheduling overhead energy (already part of the load) for the
    /// loss-breakdown figure.
    pub fn add_spinup_overhead(&mut self, wh: f64) {
        self.spinup_overhead_wh += wh;
    }

    /// Add consolidation/reclaim overhead energy (already part of the load).
    pub fn add_reclaim_overhead(&mut self, wh: f64) {
        self.reclaim_overhead_wh += wh;
    }

    /// Totals over the whole run (Wh).
    pub fn totals(&self) -> &SlotFlows {
        &self.total
    }

    /// Total brown energy in kWh — the headline metric.
    pub fn brown_kwh(&self) -> f64 {
        self.total.brown_wh / 1000.0
    }

    /// Fraction of produced renewable energy that served the load, directly
    /// or through the battery: `(direct + battery_out) / produced`.
    /// (Battery losses make this differ from `1 - curtailed/produced`.)
    pub fn green_utilization(&self) -> f64 {
        if self.total.green_produced_wh == 0.0 {
            0.0
        } else {
            (self.total.green_direct_wh + self.total.battery_out_wh) / self.total.green_produced_wh
        }
    }

    /// Fraction of the load served by renewables (directly or via battery).
    pub fn green_coverage(&self) -> f64 {
        if self.total.load_wh == 0.0 {
            0.0
        } else {
            (self.total.green_direct_wh + self.total.battery_out_wh) / self.total.load_wh
        }
    }

    /// Renewable energy lost to curtailment (Wh).
    pub fn curtailed_wh(&self) -> f64 {
        self.total.curtailed_wh
    }

    /// Battery conversion loss (Wh).
    pub fn battery_efficiency_loss_wh(&self) -> f64 {
        self.battery_efficiency_loss_wh
    }

    /// Battery self-discharge loss (Wh).
    pub fn battery_self_discharge_wh(&self) -> f64 {
        self.battery_self_discharge_wh
    }

    /// Spin-up overhead energy (Wh).
    pub fn spinup_overhead_wh(&self) -> f64 {
        self.spinup_overhead_wh
    }

    /// Consolidation/reclaim overhead energy (Wh).
    pub fn reclaim_overhead_wh(&self) -> f64 {
        self.reclaim_overhead_wh
    }

    /// All losses attributable to the energy system and scheduling overheads
    /// (Wh): battery efficiency + self-discharge + curtailment + spin-up +
    /// reclaim.
    pub fn total_losses_wh(&self) -> f64 {
        self.battery_efficiency_loss_wh
            + self.battery_self_discharge_wh
            + self.total.curtailed_wh
            + self.spinup_overhead_wh
            + self.reclaim_overhead_wh
    }

    /// Carbon emitted by the brown draw (grams CO₂).
    pub fn carbon_g(&self) -> f64 {
        self.carbon_g
    }

    /// Cost of the brown draw (dollars).
    pub fn cost_dollars(&self) -> f64 {
        self.cost_dollars
    }

    /// Per-slot brown series (Wh/slot).
    pub fn brown_series(&self) -> &TimeSeries {
        &self.brown
    }

    /// Per-slot load series (Wh/slot).
    pub fn load_series(&self) -> &TimeSeries {
        &self.load
    }

    /// Per-slot green-production series (Wh/slot).
    pub fn green_series(&self) -> &TimeSeries {
        &self.green_produced
    }

    /// Per-slot curtailment series (Wh/slot).
    pub fn curtailed_series(&self) -> &TimeSeries {
        &self.curtailed
    }

    /// Per-slot battery-out series (Wh/slot).
    pub fn battery_out_series(&self) -> &TimeSeries {
        &self.battery_out
    }

    /// Per-slot green-direct series (Wh/slot).
    pub fn green_direct_series(&self) -> &TimeSeries {
        &self.green_direct
    }

    /// Per-slot battery-drawn (source-side charge) series (Wh/slot).
    pub fn battery_drawn_series(&self) -> &TimeSeries {
        &self.battery_drawn
    }

    /// The recorded flows of slot `s`, reassembled from the per-slot
    /// series (zeros for a slot that was never recorded). Lets an external
    /// audit re-check the conservation identities per slot after the run,
    /// including in release builds where `record_slot`'s `debug_assert`s
    /// are compiled out.
    pub fn slot_flows(&self, s: SlotIdx) -> SlotFlows {
        SlotFlows {
            green_produced_wh: self.green_produced.get(s),
            green_direct_wh: self.green_direct.get(s),
            battery_drawn_wh: self.battery_drawn.get(s),
            battery_out_wh: self.battery_out.get(s),
            brown_wh: self.brown.get(s),
            curtailed_wh: self.curtailed.get(s),
            load_wh: self.load.get(s),
        }
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.load.len()
    }

    /// Whether no slots have been recorded.
    pub fn is_empty(&self) -> bool {
        self.load.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SlotClock;

    fn ledger() -> EnergyLedger {
        EnergyLedger::new(SlotClock::hourly(), Grid::typical_eu())
    }

    fn balanced(green: f64, load: f64, batt_in: f64, batt_out: f64) -> SlotFlows {
        let direct = green.min(load);
        let brown = (load - direct - batt_out).max(0.0);
        let curtailed = green - direct - batt_in;
        SlotFlows {
            green_produced_wh: green,
            green_direct_wh: direct,
            battery_drawn_wh: batt_in,
            battery_out_wh: batt_out,
            brown_wh: brown,
            curtailed_wh: curtailed,
            load_wh: load,
        }
    }

    #[test]
    fn accumulates_totals_and_series() {
        let mut l = ledger();
        l.record_slot(0, balanced(0.0, 100.0, 0.0, 0.0)); // all brown
        l.record_slot(1, balanced(500.0, 100.0, 200.0, 0.0)); // surplus, some stored
        assert_eq!(l.len(), 2);
        assert_eq!(l.totals().brown_wh, 100.0);
        assert_eq!(l.totals().green_direct_wh, 100.0);
        assert_eq!(l.totals().curtailed_wh, 200.0);
        assert_eq!(l.brown_series().get(0), 100.0);
        assert_eq!(l.brown_series().get(1), 0.0);
        assert!((l.brown_kwh() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn utilization_and_coverage() {
        let mut l = ledger();
        // 1000 Wh green; load 600; store 300; curtail 100; later battery
        // serves 200 of a 200 load at night.
        l.record_slot(0, balanced(1000.0, 600.0, 300.0, 0.0));
        l.record_slot(1, balanced(0.0, 200.0, 0.0, 200.0));
        // utilization = (600 + 200) / 1000 = 0.8
        assert!((l.green_utilization() - 0.8).abs() < 1e-12);
        // coverage = (600+200)/800 = 1.0
        assert!((l.green_coverage() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_ratios_are_zero() {
        let l = ledger();
        assert_eq!(l.green_utilization(), 0.0);
        assert_eq!(l.green_coverage(), 0.0);
        assert!(l.is_empty());
    }

    #[test]
    fn carbon_and_cost_follow_grid_profile() {
        let mut l = ledger();
        // slot 3 (03:30 midpoint): off-peak, base carbon.
        l.record_slot(3, balanced(0.0, 1000.0, 0.0, 0.0));
        assert!((l.carbon_g() - 300.0).abs() < 1e-9);
        assert!((l.cost_dollars() - 0.10).abs() < 1e-12);
        // slot 12: peak price.
        let mut l2 = ledger();
        l2.record_slot(12, balanced(0.0, 1000.0, 0.0, 0.0));
        assert!((l2.cost_dollars() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn losses_aggregate() {
        let mut l = ledger();
        l.record_slot(0, balanced(100.0, 0.0, 0.0, 0.0)); // curtail 100
        l.set_battery_losses(30.0, 5.0);
        l.add_spinup_overhead(12.0);
        l.add_reclaim_overhead(8.0);
        assert_eq!(l.total_losses_wh(), 100.0 + 30.0 + 5.0 + 12.0 + 8.0);
    }

    #[test]
    #[should_panic(expected = "supply identity")]
    fn bad_supply_identity_panics_in_debug() {
        let mut l = ledger();
        let flows = SlotFlows { load_wh: 10.0, ..Default::default() };
        l.record_slot(0, flows);
    }

    #[test]
    #[should_panic(expected = "production identity")]
    fn bad_production_identity_panics_in_debug() {
        let mut l = ledger();
        let flows = SlotFlows { green_produced_wh: 10.0, ..Default::default() };
        l.record_slot(0, flows);
    }
}
