//! Energy Storage Device (battery) model.
//!
//! Captures the four ESD phenomena renewable-integration studies model:
//!
//! 1. **Efficiency** — storing `E` from the source yields only `σ·E` usable;
//!    the loss is charged to the battery, not the source.
//! 2. **Charge / discharge rate limits** — the charge rate is a fraction of
//!    capacity per hour (C-rate); the discharge limit is a fixed multiple of
//!    the charge limit.
//! 3. **Self-discharge** — a per-day fractional loss of the stored energy.
//! 4. **Depth of discharge (DoD)** — to preserve battery lifetime only
//!    `η·C` of the nominal capacity is ever used; all "stored" quantities in
//!    this API are within the usable window `[0, η·C]`.
//!
//! Presets for **lead-acid** and **lithium-ion** use the era-standard
//! characteristics (DoD 0.8; charge rate 12.5 %/25 % of capacity per hour;
//! efficiency 0.75/0.85; self-discharge 0.3 %/0.1 % per day; discharge:charge
//! ratio 10/5; 200/525 $ per kWh; ~78/150 Wh per litre).
//!
//! Charging and discharging are mutually exclusive within one slot (the ESD
//! has a single converter path), matching the "never simultaneously charging
//! and discharging" modeling convention.

use gm_sim::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Battery technology presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BatteryChemistry {
    /// Valve-regulated lead-acid, the incumbent data-center ESD.
    LeadAcid,
    /// Lithium-ion: denser, more efficient, pricier.
    LithiumIon,
}

impl BatteryChemistry {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BatteryChemistry::LeadAcid => "LA",
            BatteryChemistry::LithiumIon => "LI",
        }
    }
}

/// Full parameterisation of an ESD.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatterySpec {
    /// Nominal capacity in Wh.
    pub capacity_wh: f64,
    /// Usable fraction of capacity (depth-of-discharge bound η).
    pub dod: f64,
    /// Charging efficiency σ (fraction of input energy actually stored).
    pub efficiency: f64,
    /// Charge-rate limit as fraction of nominal capacity per hour.
    pub charge_rate_per_hour: f64,
    /// Discharge-rate limit as a multiple of the charge-rate limit.
    pub discharge_to_charge_ratio: f64,
    /// Self-discharge per day (fraction of stored energy).
    pub self_discharge_per_day: f64,
    /// Price in $ per kWh of nominal capacity.
    pub price_per_kwh: f64,
    /// Equivalent full cycles until the pack fades to 80 % capacity
    /// (the standard end-of-life criterion).
    pub cycle_life: f64,
    /// Volumetric energy density in Wh per litre.
    pub density_wh_per_litre: f64,
}

impl BatterySpec {
    /// Lead-acid preset at the given nominal capacity.
    pub fn lead_acid(capacity_wh: f64) -> Self {
        BatterySpec {
            capacity_wh,
            dod: 0.8,
            efficiency: 0.75,
            charge_rate_per_hour: 0.125,
            discharge_to_charge_ratio: 10.0,
            self_discharge_per_day: 0.003,
            price_per_kwh: 200.0,
            cycle_life: 600.0,
            density_wh_per_litre: 78.3,
        }
    }

    /// Lithium-ion preset at the given nominal capacity.
    pub fn lithium_ion(capacity_wh: f64) -> Self {
        BatterySpec {
            capacity_wh,
            dod: 0.8,
            efficiency: 0.85,
            charge_rate_per_hour: 0.25,
            discharge_to_charge_ratio: 5.0,
            self_discharge_per_day: 0.001,
            price_per_kwh: 525.0,
            cycle_life: 4_000.0,
            density_wh_per_litre: 150.0,
        }
    }

    /// Preset by chemistry.
    pub fn of(chem: BatteryChemistry, capacity_wh: f64) -> Self {
        match chem {
            BatteryChemistry::LeadAcid => BatterySpec::lead_acid(capacity_wh),
            BatteryChemistry::LithiumIon => BatterySpec::lithium_ion(capacity_wh),
        }
    }

    /// An idealised ESD for sizing studies: lossless, unconstrained rates,
    /// full DoD.
    pub fn ideal(capacity_wh: f64) -> Self {
        BatterySpec {
            capacity_wh,
            dod: 1.0,
            efficiency: 1.0,
            charge_rate_per_hour: f64::INFINITY,
            discharge_to_charge_ratio: 1.0,
            self_discharge_per_day: 0.0,
            price_per_kwh: 0.0,
            cycle_life: f64::INFINITY,
            density_wh_per_litre: f64::INFINITY,
        }
    }

    /// Usable capacity `η·C` in Wh.
    pub fn usable_wh(&self) -> f64 {
        self.dod * self.capacity_wh
    }

    /// Maximum charge power (W) the ESD can absorb from the source side.
    pub fn max_charge_power_w(&self) -> f64 {
        self.charge_rate_per_hour * self.capacity_wh
    }

    /// Maximum discharge power (W) the ESD can deliver.
    pub fn max_discharge_power_w(&self) -> f64 {
        self.max_charge_power_w() * self.discharge_to_charge_ratio
    }

    /// Purchase price in dollars.
    pub fn price_dollars(&self) -> f64 {
        self.price_per_kwh * self.capacity_wh / 1000.0
    }

    /// Physical volume in litres.
    pub fn volume_litres(&self) -> f64 {
        self.capacity_wh / self.density_wh_per_litre
    }
}

/// Outcome of a charge operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChargeOutcome {
    /// Energy drawn from the source (Wh) — what the PV side loses.
    pub drawn_wh: f64,
    /// Energy actually banked (Wh) — drawn × σ, clamped to the remaining
    /// headroom (any rounding sliver is booked as conversion loss).
    pub stored_wh: f64,
    /// Conversion loss (Wh) = drawn − banked.
    pub efficiency_loss_wh: f64,
}

/// The mutable state of a [`Battery`], detached from its spec, for
/// checkpointing.
///
/// Snapshots never serialize the spec: the ideal preset carries
/// `f64::INFINITY` rate limits, which JSON cannot round-trip, and the spec
/// is config-derived anyway. Restoring overlays this state onto a battery
/// rebuilt from the resume config via [`Battery::restore`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct BatteryState {
    /// Usable energy stored (Wh).
    pub stored_wh: f64,
    /// Cumulative conversion loss (Wh).
    pub efficiency_loss_wh: f64,
    /// Cumulative self-discharge loss (Wh).
    pub self_discharge_wh: f64,
    /// Cumulative energy delivered to the load (Wh).
    pub discharged_wh: f64,
    /// Cumulative energy drawn from sources (Wh).
    pub drawn_wh: f64,
}

/// A stateful ESD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    spec: BatterySpec,
    stored_wh: f64,
    /// Cumulative conversion loss (Wh).
    total_efficiency_loss_wh: f64,
    /// Cumulative self-discharge loss (Wh).
    total_self_discharge_wh: f64,
    /// Cumulative energy delivered to the load (Wh).
    total_discharged_wh: f64,
    /// Cumulative energy drawn from sources (Wh).
    total_drawn_wh: f64,
}

impl Battery {
    /// A new, empty battery.
    pub fn new(spec: BatterySpec) -> Self {
        assert!(spec.capacity_wh >= 0.0);
        assert!((0.0..=1.0).contains(&spec.dod), "DoD must be in [0,1]");
        assert!(spec.efficiency > 0.0 && spec.efficiency <= 1.0);
        Battery {
            spec,
            stored_wh: 0.0,
            total_efficiency_loss_wh: 0.0,
            total_self_discharge_wh: 0.0,
            total_discharged_wh: 0.0,
            total_drawn_wh: 0.0,
        }
    }

    /// The spec this battery was built from.
    pub fn spec(&self) -> &BatterySpec {
        &self.spec
    }

    /// Export the mutable state for checkpointing (spec excluded).
    pub fn export_state(&self) -> BatteryState {
        BatteryState {
            stored_wh: self.stored_wh,
            efficiency_loss_wh: self.total_efficiency_loss_wh,
            self_discharge_wh: self.total_self_discharge_wh,
            discharged_wh: self.total_discharged_wh,
            drawn_wh: self.total_drawn_wh,
        }
    }

    /// A battery with the given spec and a previously exported state.
    ///
    /// Same-spec restores are exact. A cross-spec branch (resuming under a
    /// different battery config) clamps the stored charge into the new
    /// usable window; the overflow is booked as self-discharge so the
    /// conservation identity still holds.
    pub fn restore(spec: BatterySpec, state: BatteryState) -> Self {
        let mut b = Battery::new(spec);
        let stored = state.stored_wh.min(b.spec.usable_wh());
        b.stored_wh = stored;
        b.total_efficiency_loss_wh = state.efficiency_loss_wh;
        b.total_self_discharge_wh = state.self_discharge_wh + (state.stored_wh - stored);
        b.total_discharged_wh = state.discharged_wh;
        b.total_drawn_wh = state.drawn_wh;
        b
    }

    /// Usable energy currently stored (Wh), in `[0, η·C]`.
    pub fn stored_wh(&self) -> f64 {
        self.stored_wh
    }

    /// Remaining usable headroom (Wh) on the stored side.
    pub fn headroom_wh(&self) -> f64 {
        (self.spec.usable_wh() - self.stored_wh).max(0.0)
    }

    /// State of charge as a fraction of the usable window.
    pub fn soc(&self) -> f64 {
        if self.spec.usable_wh() == 0.0 {
            0.0
        } else {
            self.stored_wh / self.spec.usable_wh()
        }
    }

    /// Cumulative conversion loss (Wh).
    pub fn efficiency_loss_wh(&self) -> f64 {
        self.total_efficiency_loss_wh
    }

    /// Cumulative self-discharge loss (Wh).
    pub fn self_discharge_loss_wh(&self) -> f64 {
        self.total_self_discharge_wh
    }

    /// Cumulative energy delivered to the load (Wh).
    pub fn total_discharged_wh(&self) -> f64 {
        self.total_discharged_wh
    }

    /// Cumulative energy drawn from sources (Wh).
    pub fn total_drawn_wh(&self) -> f64 {
        self.total_drawn_wh
    }

    /// Maximum energy (Wh) the ESD could *draw from a source* over `dt`,
    /// given the rate limit and the remaining headroom.
    pub fn charge_capacity_wh(&self, dt: SimDuration) -> f64 {
        let rate_bound = self.spec.max_charge_power_w() * dt.as_hours_f64();
        // Headroom is on the stored side; the source side is larger by 1/σ.
        let headroom_bound = self.headroom_wh() / self.spec.efficiency;
        rate_bound.min(headroom_bound)
    }

    /// Maximum energy (Wh) the ESD could deliver over `dt`.
    pub fn discharge_capacity_wh(&self, dt: SimDuration) -> f64 {
        let rate_bound = self.spec.max_discharge_power_w() * dt.as_hours_f64();
        rate_bound.min(self.stored_wh)
    }

    /// Offer `offered_wh` of surplus green energy over `dt`. Returns how much
    /// was drawn/stored/lost; the un-drawn remainder is the caller's to
    /// curtail or use elsewhere.
    pub fn charge(&mut self, offered_wh: f64, dt: SimDuration) -> ChargeOutcome {
        debug_assert!(offered_wh >= 0.0);
        let drawn = offered_wh.min(self.charge_capacity_wh(dt));
        // `charge_capacity_wh` already bounds `drawn` by headroom/σ, but the
        // round trip drawn·σ can overshoot the headroom by an ulp; clamp the
        // stored side and book the sliver as conversion loss so the
        // conservation identity stays exact.
        let stored = (drawn * self.spec.efficiency).min(self.headroom_wh());
        self.stored_wh += stored;
        let loss = drawn - stored;
        self.total_efficiency_loss_wh += loss;
        self.total_drawn_wh += drawn;
        ChargeOutcome { drawn_wh: drawn, stored_wh: stored, efficiency_loss_wh: loss }
    }

    /// Request `wanted_wh` over `dt`; returns the energy actually delivered.
    pub fn discharge(&mut self, wanted_wh: f64, dt: SimDuration) -> f64 {
        debug_assert!(wanted_wh >= 0.0);
        let given = wanted_wh.min(self.discharge_capacity_wh(dt));
        self.stored_wh -= given;
        self.total_discharged_wh += given;
        given
    }

    /// Apply self-discharge for an elapsed span. Call once per slot, *before*
    /// charging/discharging for that slot.
    pub fn apply_self_discharge(&mut self, dt: SimDuration) {
        if self.spec.self_discharge_per_day <= 0.0 || self.stored_wh == 0.0 {
            return;
        }
        let days = dt.as_hours_f64() / 24.0;
        let keep = (1.0 - self.spec.self_discharge_per_day).powf(days);
        let lost = self.stored_wh * (1.0 - keep);
        self.stored_wh -= lost;
        self.total_self_discharge_wh += lost;
    }

    /// Equivalent full cycles completed so far: total energy delivered
    /// over the usable window. The standard wear metric.
    pub fn equivalent_full_cycles(&self) -> f64 {
        let usable = self.spec.usable_wh();
        if usable == 0.0 {
            0.0
        } else {
            self.total_discharged_wh / usable
        }
    }

    /// Fraction of the pack's cycle life consumed so far.
    pub fn life_consumed(&self) -> f64 {
        if self.spec.cycle_life.is_infinite() {
            0.0
        } else {
            self.equivalent_full_cycles() / self.spec.cycle_life
        }
    }

    /// Dollars of battery life consumed so far (capex × life fraction) —
    /// the wear term a TCO comparison charges against storage-heavy
    /// policies.
    pub fn wear_cost_dollars(&self) -> f64 {
        self.spec.price_dollars() * self.life_consumed()
    }

    /// Conservation identity: everything drawn equals what is stored now,
    /// plus deliveries, plus both loss categories. Exposed so tests and the
    /// ledger can assert it after arbitrary operation sequences.
    pub fn conservation_residual_wh(&self) -> f64 {
        self.total_drawn_wh
            - (self.stored_wh
                + self.total_discharged_wh
                + self.total_efficiency_loss_wh
                + self.total_self_discharge_wh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: SimDuration = SimDuration(gm_sim::time::MICROS_PER_HOUR);

    #[test]
    fn presets_match_published_characteristics() {
        let la = BatterySpec::lead_acid(90_000.0);
        let li = BatterySpec::lithium_ion(90_000.0);
        assert_eq!(la.dod, 0.8);
        assert_eq!(li.dod, 0.8);
        assert_eq!(la.efficiency, 0.75);
        assert_eq!(li.efficiency, 0.85);
        // 90 kWh: LA $18,000 / ~1150 L; LI $47,250 / 600 L.
        assert!((la.price_dollars() - 18_000.0).abs() < 1.0);
        assert!((li.price_dollars() - 47_250.0).abs() < 1.0);
        assert!((la.volume_litres() - 1_150.0).abs() < 10.0, "{}", la.volume_litres());
        assert!((li.volume_litres() - 600.0).abs() < 1.0, "{}", li.volume_litres());
        // Discharge power is a multiple of charge power.
        assert!((la.max_discharge_power_w() / la.max_charge_power_w() - 10.0).abs() < 1e-9);
        assert!((li.max_discharge_power_w() / li.max_charge_power_w() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn charge_respects_efficiency_and_rate() {
        // LI 10 kWh: charge rate 25%/h = 2500 W.
        let mut b = Battery::new(BatterySpec::lithium_ion(10_000.0));
        let out = b.charge(10_000.0, HOUR);
        assert!((out.drawn_wh - 2_500.0).abs() < 1e-9, "rate-limited draw {}", out.drawn_wh);
        assert!((out.stored_wh - 2_125.0).abs() < 1e-9, "σ applied {}", out.stored_wh);
        assert!((out.efficiency_loss_wh - 375.0).abs() < 1e-9);
        assert!((b.stored_wh() - 2_125.0).abs() < 1e-9);
        assert!(b.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn charge_respects_dod_headroom() {
        let mut b = Battery::new(BatterySpec::ideal(1_000.0));
        let out = b.charge(5_000.0, HOUR);
        assert_eq!(out.stored_wh, 1_000.0);
        assert_eq!(b.headroom_wh(), 0.0);
        // Full battery accepts nothing.
        let out2 = b.charge(100.0, HOUR);
        assert_eq!(out2.drawn_wh, 0.0);
        assert_eq!(b.soc(), 1.0);
    }

    #[test]
    fn stored_never_exceeds_usable_window() {
        // LA 1 kWh: usable 800 Wh.
        let mut b = Battery::new(BatterySpec::lead_acid(1_000.0));
        for _ in 0..100 {
            b.charge(1_000.0, HOUR);
        }
        assert!(b.stored_wh() <= b.spec().usable_wh() + 1e-9);
        assert!((b.stored_wh() - 800.0).abs() < 1e-6);
    }

    #[test]
    fn discharge_bounded_by_store_and_rate() {
        let mut b = Battery::new(BatterySpec::lithium_ion(10_000.0));
        b.charge(2_000.0, HOUR);
        let stored = b.stored_wh();
        // Ask for more than stored.
        let got = b.discharge(100_000.0, HOUR);
        assert!((got - stored).abs() < 1e-9, "delivered {got} of stored {stored}");
        assert_eq!(b.stored_wh(), 0.0);
        assert!(b.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn discharge_rate_limit_binds_for_large_batteries() {
        // LA 100 kWh: charge 12.5 kW, discharge 125 kW — fill it first (ideal
        // trick: charge many hours), then check one-hour discharge cap.
        let mut b = Battery::new(BatterySpec::lead_acid(100_000.0));
        for _ in 0..20 {
            b.charge(20_000.0, HOUR);
        }
        assert!(b.stored_wh() > 70_000.0);
        let got = b.discharge(f64::INFINITY.min(1e12), HOUR);
        assert!((got - 80_000.0).abs() < 1e-6 || got <= 125_000.0);
    }

    #[test]
    fn self_discharge_decays_store() {
        let mut b = Battery::new(BatterySpec::lead_acid(10_000.0));
        b.charge(4_000.0, HOUR);
        let before = b.stored_wh();
        b.apply_self_discharge(SimDuration::from_days(1));
        let after = b.stored_wh();
        assert!((before - after) / before > 0.0029 && (before - after) / before < 0.0031);
        assert!(b.self_discharge_loss_wh() > 0.0);
        assert!(b.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn li_self_discharges_slower_than_la() {
        let mut la = Battery::new(BatterySpec::lead_acid(10_000.0));
        let mut li = Battery::new(BatterySpec::lithium_ion(10_000.0));
        la.charge(1_000.0, HOUR);
        li.charge(1_000.0, HOUR);
        la.apply_self_discharge(SimDuration::from_days(10));
        li.apply_self_discharge(SimDuration::from_days(10));
        assert!(la.self_discharge_loss_wh() > li.self_discharge_loss_wh());
    }

    #[test]
    fn zero_capacity_battery_is_inert() {
        let mut b = Battery::new(BatterySpec::lithium_ion(0.0));
        let out = b.charge(100.0, HOUR);
        assert_eq!(out.drawn_wh, 0.0);
        assert_eq!(b.discharge(100.0, HOUR), 0.0);
        assert_eq!(b.soc(), 0.0);
    }

    #[test]
    fn ideal_battery_is_lossless() {
        let mut b = Battery::new(BatterySpec::ideal(1_000_000.0));
        let out = b.charge(123.0, HOUR);
        assert_eq!(out.stored_wh, 123.0);
        assert_eq!(out.efficiency_loss_wh, 0.0);
        b.apply_self_discharge(SimDuration::from_days(30));
        assert_eq!(b.stored_wh(), 123.0);
        assert_eq!(b.discharge(123.0, HOUR), 123.0);
        assert!(b.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn conservation_after_random_walk() {
        let mut b = Battery::new(BatterySpec::lithium_ion(50_000.0));
        let mut x = 12345u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let amount = (x >> 33) as f64 / 1e4;
            if x.is_multiple_of(3) {
                b.charge(amount, HOUR);
            } else if x % 3 == 1 {
                b.discharge(amount, HOUR);
            } else {
                b.apply_self_discharge(HOUR);
            }
        }
        assert!(
            b.conservation_residual_wh().abs() < 1e-6,
            "residual {}",
            b.conservation_residual_wh()
        );
    }

    #[test]
    fn charge_books_headroom_clamp_to_loss_exactly() {
        // Regression: a full-window refill of a nearly empty battery is
        // headroom-bound, and the drawn→stored round trip `fl(fl(h/σ)·σ)`
        // overshoots the headroom `h` by an ulp on a sizeable fraction of
        // residues. The old code clamped `stored_wh` silently while
        // reporting the unclamped amount, so the per-call delta identity
        // broke. With the fix it is *exact*:
        // stored_after == stored_before + outcome.stored_wh.
        let mut spec = BatterySpec::lithium_ion(10_000.0);
        // Rate bound well above usable/σ so the headroom bound governs a
        // from-empty refill in a single one-hour charge.
        spec.charge_rate_per_hour = 2.0;
        spec.discharge_to_charge_ratio = 1.0;
        let mut b = Battery::new(spec);
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..4_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            // Drain to a small random residue, then refill the whole window.
            let residue = (x >> 40) as f64 / 16_777_216.0 * 5.0;
            b.discharge((b.stored_wh() - residue).max(0.0), HOUR);
            let before = b.stored_wh();
            let out = b.charge(1e9, HOUR);
            assert_eq!(
                before + out.stored_wh,
                b.stored_wh(),
                "charge delta identity must be exact (before {before}, stored {})",
                out.stored_wh
            );
            assert!(b.stored_wh() <= b.spec().usable_wh(), "stored above usable window");
        }
        assert!(
            b.conservation_residual_wh().abs() < 1e-6,
            "residual {} after deep-cycle walk",
            b.conservation_residual_wh()
        );
    }

    #[test]
    fn state_roundtrip_is_exact() {
        let mut b = Battery::new(BatterySpec::lithium_ion(10_000.0));
        b.charge(3_000.0, HOUR);
        b.discharge(700.0, HOUR);
        b.apply_self_discharge(SimDuration::from_days(2));
        let restored = Battery::restore(*b.spec(), b.export_state());
        assert_eq!(b, restored);
        assert!(restored.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn cross_spec_restore_clamps_and_conserves() {
        let mut b = Battery::new(BatterySpec::ideal(10_000.0));
        b.charge(9_000.0, HOUR);
        // Branch into a battery with a smaller usable window.
        let small = Battery::restore(BatterySpec::lithium_ion(1_000.0), b.export_state());
        assert!((small.stored_wh() - small.spec().usable_wh()).abs() < 1e-9);
        assert!(small.conservation_residual_wh().abs() < 1e-9);
    }

    #[test]
    fn cycle_accounting_and_wear() {
        // LI 10 kWh: usable 8 kWh. Deliver 16 kWh total = 2 EFC.
        let mut b = Battery::new(BatterySpec::lithium_ion(10_000.0));
        for _ in 0..20 {
            b.charge(4_000.0, HOUR);
            b.discharge(800.0, HOUR);
        }
        let delivered = b.total_discharged_wh();
        let efc = b.equivalent_full_cycles();
        assert!((efc - delivered / 8_000.0).abs() < 1e-9);
        // Life fraction and wear cost follow.
        assert!((b.life_consumed() - efc / 4_000.0).abs() < 1e-12);
        let expected_wear = 5_250.0 * b.life_consumed();
        assert!((b.wear_cost_dollars() - expected_wear).abs() < 1e-9);
    }

    #[test]
    fn lead_acid_wears_faster_per_cycle() {
        let mut la = Battery::new(BatterySpec::lead_acid(10_000.0));
        let mut li = Battery::new(BatterySpec::lithium_ion(10_000.0));
        for _ in 0..10 {
            la.charge(1_000.0, HOUR);
            li.charge(1_000.0, HOUR);
            la.discharge(500.0, HOUR);
            li.discharge(500.0, HOUR);
        }
        // Same energy throughput, LA consumes a larger life fraction
        // (600 vs 4000 cycle life).
        assert!(la.life_consumed() > li.life_consumed() * 5.0);
    }

    #[test]
    fn ideal_battery_never_wears() {
        let mut b = Battery::new(BatterySpec::ideal(1_000.0));
        b.charge(1_000.0, HOUR);
        b.discharge(1_000.0, HOUR);
        assert_eq!(b.life_consumed(), 0.0);
        assert_eq!(b.wear_cost_dollars(), 0.0);
        assert!(b.equivalent_full_cycles() > 0.0);
    }

    #[test]
    fn zero_capacity_has_zero_cycles() {
        let b = Battery::new(BatterySpec::lithium_ion(0.0));
        assert_eq!(b.equivalent_full_cycles(), 0.0);
        assert_eq!(b.wear_cost_dollars(), 0.0);
    }

    #[test]
    #[should_panic(expected = "DoD must be in [0,1]")]
    fn bad_dod_panics() {
        let mut spec = BatterySpec::lead_acid(1.0);
        spec.dod = 1.5;
        let _ = Battery::new(spec);
    }
}
