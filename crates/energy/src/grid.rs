//! Brown (grid) supply.
//!
//! The grid is the infinite backup source. It is characterised by a
//! carbon-intensity profile (gCO₂ per kWh, varying by hour to model the
//! evening fossil peak) and a two-tier price. Schedulers never *ration* grid
//! power — the metric of interest is how much of it they consume.

use gm_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Grid supply parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    /// Base carbon intensity in gCO₂/kWh.
    pub base_carbon_g_per_kwh: f64,
    /// Additional carbon intensity at the evening peak (gCO₂/kWh).
    pub peak_carbon_g_per_kwh: f64,
    /// Off-peak electricity price ($/kWh).
    pub offpeak_price_per_kwh: f64,
    /// Peak electricity price ($/kWh), applied 07:00–23:00.
    pub peak_price_per_kwh: f64,
}

impl Grid {
    /// A Western-European-style mix of the era: ~300 g/kWh base with a
    /// fossil-peaker evening bump, 0.10/0.16 $ per kWh tariffs.
    pub fn typical_eu() -> Self {
        Grid {
            base_carbon_g_per_kwh: 300.0,
            peak_carbon_g_per_kwh: 150.0,
            offpeak_price_per_kwh: 0.10,
            peak_price_per_kwh: 0.16,
        }
    }

    /// Carbon intensity (gCO₂/kWh) at instant `t`: base plus a cosine bump
    /// centred on 19:00 with a 6-hour half-width.
    pub fn carbon_intensity(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        let dist = {
            let d = (h - 19.0).abs();
            d.min(24.0 - d)
        };
        if dist >= 6.0 {
            self.base_carbon_g_per_kwh
        } else {
            let w = (dist / 6.0 * std::f64::consts::FRAC_PI_2).cos();
            self.base_carbon_g_per_kwh + self.peak_carbon_g_per_kwh * w
        }
    }

    /// Price ($/kWh) at instant `t`.
    pub fn price(&self, t: SimTime) -> f64 {
        let h = t.hour_of_day();
        if (7.0..23.0).contains(&h) {
            self.peak_price_per_kwh
        } else {
            self.offpeak_price_per_kwh
        }
    }

    /// Carbon (grams) emitted by drawing `energy_wh` at instant `t`.
    pub fn carbon_for(&self, energy_wh: f64, t: SimTime) -> f64 {
        self.carbon_intensity(t) * energy_wh / 1000.0
    }

    /// Cost ($) of drawing `energy_wh` at instant `t`.
    pub fn cost_for(&self, energy_wh: f64, t: SimTime) -> f64 {
        self.price(t) * energy_wh / 1000.0
    }
}

impl Default for Grid {
    fn default() -> Self {
        Grid::typical_eu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::time::SimDuration;

    #[test]
    fn carbon_peaks_in_evening() {
        let g = Grid::typical_eu();
        let noon = g.carbon_intensity(SimTime::from_hours(12));
        let evening = g.carbon_intensity(SimTime::from_hours(19));
        let night = g.carbon_intensity(SimTime::from_hours(3));
        assert!(evening > noon);
        assert!((night - 300.0).abs() < 1e-9);
        assert!((evening - 450.0).abs() < 1.0, "peak {evening}");
    }

    #[test]
    fn carbon_bump_wraps_midnight_correctly() {
        let g = Grid::typical_eu();
        // 23:30 is 4.5h past the 19:00 peak -> still elevated.
        let late = g.carbon_intensity(SimTime::from_hours(23) + SimDuration::from_mins(30));
        assert!(late > g.base_carbon_g_per_kwh);
    }

    #[test]
    fn price_tiers() {
        let g = Grid::typical_eu();
        assert_eq!(g.price(SimTime::from_hours(12)), 0.16);
        assert_eq!(g.price(SimTime::from_hours(3)), 0.10);
        assert_eq!(g.price(SimTime::from_hours(23)), 0.10);
    }

    #[test]
    fn cost_and_carbon_scale_linearly() {
        let g = Grid::typical_eu();
        let t = SimTime::from_hours(12);
        assert!((g.cost_for(2_000.0, t) - 2.0 * g.cost_for(1_000.0, t)).abs() < 1e-12);
        assert!((g.carbon_for(1_000.0, SimTime::from_hours(3)) - 300.0).abs() < 1e-9);
    }
}
