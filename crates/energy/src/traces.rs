//! Supply-trace import/export.
//!
//! The substitution point for *measured* production data: the genuine
//! evaluation would replay a university PV installation's logger output.
//! This module defines a minimal CSV interchange format for per-slot power
//! traces and converts both ways, so a user with real data can bypass the
//! synthetic models entirely:
//!
//! ```text
//! slot,power_w
//! 0,0.0
//! 1,0.0
//! 2,143.5
//! ...
//! ```
//!
//! Slots must be contiguous from zero; the slot width travels out-of-band
//! (it is part of the experiment config). [`TraceSource`] wraps a parsed
//! trace for use anywhere a [`crate::supply::PowerSource`] is expected.

use crate::supply::TraceSource;
use gm_sim::{SlotClock, TimeSeries};

/// Render a per-slot power trace as interchange CSV.
pub fn trace_to_csv(trace: &TimeSeries) -> String {
    let mut out = String::from("slot,power_w\n");
    for (s, v) in trace.iter() {
        out.push_str(&format!("{s},{v}\n"));
    }
    out
}

/// Parse interchange CSV into a trace aligned to `clock`.
///
/// Rejects gaps, out-of-order slots, negative power and malformed rows —
/// a mangled measurement file should fail loudly, not silently zero-fill.
pub fn trace_from_csv(csv: &str, clock: SlotClock) -> Result<TimeSeries, String> {
    let mut values = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let (slot_s, power_s) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected `slot,power_w`", lineno + 1))?;
        let slot: usize =
            slot_s.trim().parse().map_err(|e| format!("line {}: slot: {e}", lineno + 1))?;
        if slot != values.len() {
            return Err(format!(
                "line {}: slots must be contiguous from 0 (expected {}, got {slot})",
                lineno + 1,
                values.len()
            ));
        }
        let power: f64 =
            power_s.trim().parse().map_err(|e| format!("line {}: power: {e}", lineno + 1))?;
        if !power.is_finite() || power < 0.0 {
            return Err(format!("line {}: power must be finite and non-negative", lineno + 1));
        }
        values.push(power);
    }
    Ok(TimeSeries::from_values(clock, values))
}

/// Parse interchange CSV straight into a playback [`TraceSource`].
pub fn source_from_csv(label: &str, csv: &str, clock: SlotClock) -> Result<TraceSource, String> {
    Ok(TraceSource::new(label, trace_from_csv(csv, clock)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supply::PowerSource;

    fn clock() -> SlotClock {
        SlotClock::hourly()
    }

    #[test]
    fn roundtrip_preserves_values() {
        let trace = TimeSeries::from_values(clock(), vec![0.0, 12.5, 990.125, 3.0]);
        let csv = trace_to_csv(&trace);
        let back = trace_from_csv(&csv, clock()).expect("roundtrip parses");
        assert_eq!(back.values(), trace.values());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TimeSeries::zeros(clock(), 0);
        let back = trace_from_csv(&trace_to_csv(&trace), clock()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_gaps_and_disorder() {
        assert!(trace_from_csv("h\n0,1.0\n2,2.0\n", clock()).is_err(), "gap");
        assert!(trace_from_csv("h\n1,1.0\n", clock()).is_err(), "not from zero");
        assert!(trace_from_csv("h\n0,1.0\n0,2.0\n", clock()).is_err(), "duplicate");
    }

    #[test]
    fn rejects_bad_values() {
        assert!(trace_from_csv("h\n0,-5.0\n", clock()).is_err(), "negative");
        assert!(trace_from_csv("h\n0,NaN\n", clock()).is_err(), "NaN");
        assert!(trace_from_csv("h\n0,abc\n", clock()).is_err(), "non-numeric");
        assert!(trace_from_csv("h\nzero,1.0\n", clock()).is_err(), "bad slot");
        assert!(trace_from_csv("h\n0\n", clock()).is_err(), "missing column");
    }

    #[test]
    fn blank_lines_are_skipped() {
        let t = trace_from_csv("slot,power_w\n0,1.0\n\n1,2.0\n", clock()).unwrap();
        assert_eq!(t.values(), &[1.0, 2.0]);
    }

    #[test]
    fn source_from_csv_plays_back() {
        let mut src =
            source_from_csv("measured-pv", "slot,power_w\n0,10.0\n1,20.0\n", clock()).unwrap();
        assert_eq!(src.power_in_slot(clock(), 0), 10.0);
        assert_eq!(src.power_in_slot(clock(), 1), 20.0);
        assert_eq!(src.label(), "measured-pv");
    }
}
