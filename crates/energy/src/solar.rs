//! Photovoltaic farm model.
//!
//! Production = clear-sky irradiance envelope × cloud attenuation × panel
//! area × panel efficiency.
//!
//! * The **clear-sky envelope** uses the standard solar-geometry
//!   approximation: solar declination from the day of year (Cooper's
//!   formula), hour angle from solar time, elevation from latitude,
//!   and irradiance ≈ `I0 · max(0, sin(elevation))^1.15` with
//!   `I0 = 1000 W/m²` (the air-mass exponent 1.15 is a common engineering
//!   fit). This produces the familiar half-sine daily bell that on-site PV
//!   traces show.
//! * **Clouds** are an AR(1) attenuation factor in `[attenuation_floor, 1]`,
//!   sampled per slot, with profile-dependent persistence and variance.
//! * The **panel** is characterised by its total area (m²) and efficiency;
//!   the era-typical module (≈240 Wp per 1.7 m² panel) corresponds to
//!   ~14.5 % efficiency, which is the default.
//!
//! Substitution note (DESIGN.md §5): the genuine evaluation would replay a
//! measured university PV trace; this model reproduces its envelope, peak
//! scaling and cloudiness statistics, with the cloud process seeded per run.

use crate::supply::PowerSource;
use gm_sim::dist::Ar1;
use gm_sim::time::SlotIdx;
use gm_sim::{RngFactory, SlotClock};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

/// Peak extraterrestrial-ish irradiance used by the clear-sky envelope (W/m²).
pub const CLEAR_SKY_PEAK_IRRADIANCE: f64 = 1000.0;

/// Area of one era-typical PV module (m²): 1.6 m × 0.861 m ≈ 1.38 m²
/// producing 240 Wp ⇒ efficiency ≈ 0.174; we model the slightly more
/// conservative installed figure below.
pub const PANEL_AREA_M2: f64 = 1.38;

/// Default module efficiency (fraction of irradiance converted).
pub const DEFAULT_PANEL_EFFICIENCY: f64 = 0.174;

/// Weather/season preset controlling the envelope and the cloud process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolarProfile {
    /// Mostly sunny mid-summer week (the headline evaluation profile).
    SunnySummer,
    /// Changeable week: significant, persistent cloud cover.
    CloudySummer,
    /// Short, low-sun winter days with heavy cloud.
    Winter,
}

impl SolarProfile {
    /// Day-of-year used for the declination term.
    fn day_of_year(self) -> f64 {
        match self {
            SolarProfile::SunnySummer | SolarProfile::CloudySummer => 172.0, // ~June 21
            SolarProfile::Winter => 355.0,                                   // ~Dec 21
        }
    }

    /// AR(1) cloud-attenuation parameters `(phi, mean, noise_std, floor)`.
    fn cloud_params(self) -> (f64, f64, f64, f64) {
        match self {
            SolarProfile::SunnySummer => (0.85, 0.93, 0.05, 0.35),
            SolarProfile::CloudySummer => (0.90, 0.55, 0.15, 0.10),
            SolarProfile::Winter => (0.92, 0.40, 0.15, 0.05),
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            SolarProfile::SunnySummer => "solar-sunny",
            SolarProfile::CloudySummer => "solar-cloudy",
            SolarProfile::Winter => "solar-winter",
        }
    }
}

/// Static configuration of a PV installation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolarFarmSpec {
    /// Total panel area in m².
    pub area_m2: f64,
    /// Module efficiency (0–1).
    pub efficiency: f64,
    /// Site latitude in degrees (positive north).
    pub latitude_deg: f64,
    /// Weather/season preset.
    pub profile: SolarProfile,
}

impl SolarFarmSpec {
    /// A farm of `n` era-typical 240 Wp modules at a mid-latitude site.
    pub fn panels(n: usize, profile: SolarProfile) -> Self {
        SolarFarmSpec {
            area_m2: n as f64 * PANEL_AREA_M2,
            efficiency: DEFAULT_PANEL_EFFICIENCY,
            latitude_deg: 47.2, // Nantes-like mid-latitude site
            profile,
        }
    }

    /// A farm of the given total area with default efficiency/latitude.
    pub fn with_area(area_m2: f64, profile: SolarProfile) -> Self {
        SolarFarmSpec { area_m2, efficiency: DEFAULT_PANEL_EFFICIENCY, latitude_deg: 47.2, profile }
    }

    /// Theoretical peak DC power (W) under clear-sky peak irradiance.
    pub fn peak_power_w(&self) -> f64 {
        self.area_m2 * self.efficiency * CLEAR_SKY_PEAK_IRRADIANCE
    }
}

/// Clear-sky irradiance (W/m²) at fractional `hour_of_day` for a site at
/// `latitude_deg` on `day_of_year`. Zero at night.
pub fn clear_sky_irradiance(latitude_deg: f64, day_of_year: f64, hour_of_day: f64) -> f64 {
    let lat = latitude_deg.to_radians();
    // Cooper's declination formula.
    let decl =
        (23.45f64).to_radians() * ((360.0 / 365.0) * (284.0 + day_of_year)).to_radians().sin();
    // Hour angle: 15° per hour from solar noon.
    let hour_angle = (15.0 * (hour_of_day - 12.0)).to_radians();
    let sin_elev = lat.sin() * decl.sin() + lat.cos() * decl.cos() * hour_angle.cos();
    if sin_elev <= 0.0 {
        0.0
    } else {
        CLEAR_SKY_PEAK_IRRADIANCE * sin_elev.powf(1.15)
    }
}

/// A PV farm as a [`PowerSource`]: deterministic envelope, seeded clouds.
pub struct SolarFarm {
    spec: SolarFarmSpec,
    clouds: Ar1,
    cloud_floor: f64,
    rng: SmallRng,
}

impl SolarFarm {
    /// Build from a spec, deriving the cloud stream from `rngs`.
    pub fn new(spec: SolarFarmSpec, rngs: &RngFactory) -> Self {
        let (phi, mean, noise, floor) = spec.profile.cloud_params();
        SolarFarm {
            spec,
            clouds: Ar1::new(phi, mean, noise),
            cloud_floor: floor,
            rng: rngs.stream("solar-clouds"),
        }
    }

    /// The installation spec.
    pub fn spec(&self) -> &SolarFarmSpec {
        &self.spec
    }

    /// Clear-sky (cloudless) power at fractional hour-of-day, in watts.
    pub fn clear_sky_power(&self, hour_of_day: f64) -> f64 {
        clear_sky_irradiance(self.spec.latitude_deg, self.spec.profile.day_of_year(), hour_of_day)
            * self.spec.area_m2
            * self.spec.efficiency
    }
}

impl PowerSource for SolarFarm {
    fn power_in_slot(&mut self, clock: SlotClock, s: SlotIdx) -> f64 {
        let mid = clock.slot_start(s) + clock.width() / 2;
        let envelope = self.clear_sky_power(mid.hour_of_day());
        // Advance the cloud process once per slot even at night so that a
        // storm developing overnight is still correlated into the morning.
        let att = self.clouds.step_clamped(&mut self.rng, self.cloud_floor, 1.0);
        envelope * att
    }

    fn label(&self) -> String {
        format!("{}({:.0}m2)", self.spec.profile.label(), self.spec.area_m2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gm_sim::SlotClock;

    #[test]
    fn irradiance_zero_at_night_peaks_at_noon() {
        let i_noon = clear_sky_irradiance(47.2, 172.0, 12.0);
        let i_morning = clear_sky_irradiance(47.2, 172.0, 8.0);
        let i_night = clear_sky_irradiance(47.2, 172.0, 0.0);
        assert_eq!(i_night, 0.0);
        assert!(i_noon > i_morning, "noon {i_noon} vs morning {i_morning}");
        assert!(i_noon > 800.0 && i_noon < 1000.0, "summer noon {i_noon}");
    }

    #[test]
    fn winter_days_are_shorter_and_weaker() {
        let summer_noon = clear_sky_irradiance(47.2, 172.0, 12.0);
        let winter_noon = clear_sky_irradiance(47.2, 355.0, 12.0);
        assert!(winter_noon < summer_noon * 0.6);
        // 7am: light in summer, dark in winter at 47°N.
        assert!(clear_sky_irradiance(47.2, 172.0, 7.0) > 0.0);
        assert_eq!(clear_sky_irradiance(47.2, 355.0, 7.0), 0.0);
    }

    #[test]
    fn peak_power_scales_with_area() {
        let small = SolarFarmSpec::panels(8, SolarProfile::SunnySummer);
        let big = SolarFarmSpec::with_area(small.area_m2 * 10.0, SolarProfile::SunnySummer);
        assert!((big.peak_power_w() / small.peak_power_w() - 10.0).abs() < 1e-9);
        // 8 era-typical panels ≈ 1.9 kWp.
        assert!((small.peak_power_w() - 1920.0).abs() < 100.0, "{}", small.peak_power_w());
    }

    #[test]
    fn farm_produces_daily_bell() {
        let rngs = RngFactory::new(1);
        let mut farm = SolarFarm::new(SolarFarmSpec::panels(8, SolarProfile::SunnySummer), &rngs);
        let trace = farm.materialize(SlotClock::hourly(), 24);
        // Night slots are zero, midday slots positive.
        assert_eq!(trace.get(0), 0.0);
        assert_eq!(trace.get(23), 0.0);
        assert!(trace.get(12) > 500.0, "midday {}", trace.get(12));
        assert!(trace.get(12) > trace.get(8));
        // Energy for a sunny summer day from ~1.9kWp: roughly 8–16 kWh.
        let day_wh = trace.energy_wh();
        assert!(day_wh > 6_000.0 && day_wh < 18_000.0, "day energy {day_wh}");
    }

    #[test]
    fn cloudy_profile_produces_less_than_sunny() {
        let rngs = RngFactory::new(7);
        let mut sunny = SolarFarm::new(SolarFarmSpec::panels(8, SolarProfile::SunnySummer), &rngs);
        let mut cloudy =
            SolarFarm::new(SolarFarmSpec::panels(8, SolarProfile::CloudySummer), &rngs);
        let c = SlotClock::hourly();
        let week = 7 * 24;
        let e_sunny = sunny.materialize(c, week).energy_wh();
        let e_cloudy = cloudy.materialize(c, week).energy_wh();
        assert!(e_cloudy < e_sunny * 0.8, "cloudy {e_cloudy} vs sunny {e_sunny}");
    }

    #[test]
    fn same_seed_same_trace() {
        let rngs = RngFactory::new(99);
        let spec = SolarFarmSpec::panels(8, SolarProfile::SunnySummer);
        let a = SolarFarm::new(spec, &rngs).materialize(SlotClock::hourly(), 48);
        let b = SolarFarm::new(spec, &rngs).materialize(SlotClock::hourly(), 48);
        assert_eq!(a.values(), b.values());
    }
}
