//! Sweep-level job submission over the shared [`gm_sim::WorkPool`].
//!
//! Historically each sweep spun up its own `std::thread::scope`, ran to a
//! barrier and tore the threads down again; a first-generation `JobPool`
//! replaced that with dedicated sweep workers. Now that the simulation
//! kernel itself fans work out (sharded request synthesis, per-site phase
//! execution), sweeps and kernel shards must share **one** set of threads
//! — otherwise a machine-wide sweep and the shards it spawns would
//! oversubscribe every core. [`JobPool`] is therefore a thin facade over
//! the process-wide [`gm_sim::WorkPool`]: it contributes the one thing the
//! generic pool does not know about — a long-lived per-thread
//! [`SlotScratch`] — and delegates scheduling, batch completion and panic
//! propagation.
//!
//! Nesting is safe by the helping-submitter rule of the underlying pool: a
//! sweep job that triggers sharded synthesis submits an inner batch and
//! helps drain it inline. The inner shard tasks never touch the
//! thread-local scratch (it is borrowed only for the duration of each
//! outer job's closure body — by the time a nested batch is submitted the
//! job owns its simulation's scratch through other means), so the
//! `RefCell` borrow is never re-entered.

use greenmatch::SlotScratch;
use std::cell::RefCell;
use std::panic::AssertUnwindSafe;

pub use gm_sim::pool::set_max_workers;

/// A unit of sweep work: runs with the worker's long-lived scratch.
pub type Job = Box<dyn FnOnce(&mut SlotScratch) + Send + 'static>;

thread_local! {
    /// One simulation scratch per pool thread (and per submitting thread —
    /// the helping submitter runs jobs inline too), allocated on first use
    /// and reused for the life of the thread.
    static SCRATCH: RefCell<SlotScratch> = RefCell::new(SlotScratch::new());
}

/// Facade over the global [`gm_sim::WorkPool`] that supplies each job a
/// long-lived per-thread [`SlotScratch`]. Obtain it with
/// [`JobPool::global`].
pub struct JobPool(());

static GLOBAL: JobPool = JobPool(());

impl JobPool {
    /// The process-wide pool (see [`gm_sim::WorkPool::global`]; cap the
    /// width with [`set_max_workers`] before first use).
    pub fn global() -> &'static JobPool {
        &GLOBAL
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        gm_sim::WorkPool::global().width()
    }

    /// Submit `jobs` and block until every one has finished. The
    /// submitting thread helps drain the batch; if any job panicked, the
    /// first panic is re-raised here after the whole batch has drained (so
    /// sibling runs still complete and the pool survives).
    pub fn run_batch(&self, jobs: Vec<Job>) {
        let tasks: Vec<gm_sim::pool::Task> = jobs
            .into_iter()
            .map(|job| {
                Box::new(move || {
                    SCRATCH.with(|scratch| {
                        let mut scratch = scratch.borrow_mut();
                        // catch_unwind inside the borrow so a panicking job
                        // cannot poison the thread-local for its successors
                        // on this worker; the pool re-raises it batch-wide.
                        if let Err(payload) =
                            std::panic::catch_unwind(AssertUnwindSafe(|| job(&mut scratch)))
                        {
                            drop(scratch);
                            std::panic::resume_unwind(payload);
                        }
                    });
                }) as gm_sim::pool::Task
            })
            .collect();
        gm_sim::WorkPool::global().scatter(tasks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn batch_runs_every_job_and_waits() {
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..25)
            .map(|i| {
                let c = Arc::clone(&counter);
                Box::new(move |_: &mut SlotScratch| {
                    c.fetch_add(i + 1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        JobPool::global().run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 25 * 26 / 2);
    }

    #[test]
    fn sequential_batches_share_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&counter);
            JobPool::global().run_batch(vec![Box::new(move |_: &mut SlotScratch| {
                c.fetch_add(1, Ordering::Relaxed);
            }) as Job]);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        JobPool::global().run_batch(Vec::new());
    }

    #[test]
    fn width_is_positive() {
        assert!(JobPool::global().width() >= 1);
    }

    #[test]
    fn job_panic_surfaces_on_submitter_after_batch_drains() {
        let survivors = Arc::new(AtomicU64::new(0));
        let mut jobs: Vec<Job> = vec![Box::new(|_: &mut SlotScratch| panic!("boom in job"))];
        for _ in 0..4 {
            let s = Arc::clone(&survivors);
            jobs.push(Box::new(move |_: &mut SlotScratch| {
                s.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| JobPool::global().run_batch(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in job");
        assert_eq!(survivors.load(Ordering::Relaxed), 4, "siblings still ran");
        // The pool survives the panic and accepts new work.
        let after = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&after);
        JobPool::global().run_batch(vec![Box::new(move |_: &mut SlotScratch| {
            a.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }
}
