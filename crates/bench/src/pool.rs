//! The process-wide work-stealing job pool every sweep feeds through.
//!
//! Historically each sweep spun up its own `std::thread::scope`, ran to a
//! barrier and tore the threads down again — ~15 barriers per suite, with
//! per-worker [`SlotScratch`] buffers rebuilt every time. The [`JobPool`]
//! replaces all of that with one set of long-lived workers: sweeps submit
//! batches of boxed jobs, each worker owns a single `SlotScratch` for the
//! lifetime of the process, and batch completion is tracked per submission
//! so callers still get a synchronous "all my runs finished" point without
//! any global barrier between sweeps.
//!
//! Scheduling is work-stealing in shape — each worker has its own deque,
//! pops its own back (LIFO, cache-warm) and steals a victim's front (FIFO,
//! oldest first) — but all deques sit behind one mutex. Jobs here are
//! whole simulation runs (hundreds of milliseconds to minutes), so
//! scheduling cost is irrelevant and a single lock keeps the queue/counter
//! invariants trivially correct; the crate stays `forbid(unsafe_code)`.
//!
//! A job panic (e.g. an invalid config) is caught on the worker, carried
//! into the batch result, and re-raised on the submitting thread by
//! [`JobPool::run_batch`] — the same surface behaviour the old scoped
//! threads had, without killing the shared worker.

use greenmatch::SlotScratch;
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A unit of pool work: runs with the worker's long-lived scratch.
pub type Job = Box<dyn FnOnce(&mut SlotScratch) + Send + 'static>;

/// Upper bound on pool width requested via [`set_max_workers`] (0 = no
/// cap). Read once, when the global pool first starts.
static MAX_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// Cap the global pool at `n` workers (`--jobs N`). Takes effect only if
/// called before the first sweep starts the pool; later calls are ignored.
pub fn set_max_workers(n: usize) {
    MAX_WORKERS.store(n, Ordering::Relaxed);
}

struct PoolState {
    /// One deque per worker. Owner pops back, thieves pop front.
    queues: Vec<VecDeque<Job>>,
    /// Round-robin submission cursor.
    rr: usize,
}

struct BatchProgress {
    remaining: usize,
    /// First panic payload from this batch's jobs, if any.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Batch {
    state: Mutex<BatchProgress>,
    done_cv: Condvar,
}

/// The shared pool. Obtain it with [`JobPool::global`].
pub struct JobPool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    workers: usize,
}

impl JobPool {
    /// Start a pool with `workers` threads (used directly only by tests;
    /// everything else goes through [`JobPool::global`]).
    fn start(workers: usize) -> Arc<JobPool> {
        let workers = workers.max(1);
        let pool = Arc::new(JobPool {
            state: Mutex::new(PoolState {
                queues: (0..workers).map(|_| VecDeque::new()).collect(),
                rr: 0,
            }),
            work_cv: Condvar::new(),
            workers,
        });
        for me in 0..workers {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("gm-sweep-{me}"))
                .spawn(move || worker_loop(&pool, me))
                .expect("spawn sweep worker");
        }
        pool
    }

    /// The process-wide pool, started on first use with one worker per
    /// available core, capped by [`set_max_workers`]. Workers live (parked
    /// when idle) for the rest of the process.
    pub fn global() -> &'static Arc<JobPool> {
        static POOL: OnceLock<Arc<JobPool>> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
            let cap = MAX_WORKERS.load(Ordering::Relaxed);
            let width = if cap == 0 { cores } else { cores.min(cap) };
            JobPool::start(width)
        })
    }

    /// Number of worker threads.
    pub fn width(&self) -> usize {
        self.workers
    }

    /// Submit `jobs` and block until every one has finished. If any job
    /// panicked, the first panic is re-raised here after the whole batch
    /// has drained (so sibling runs still complete and the pool survives).
    pub fn run_batch(&self, jobs: Vec<Job>) {
        let n = jobs.len();
        if n == 0 {
            return;
        }
        let batch = Arc::new(Batch {
            state: Mutex::new(BatchProgress { remaining: n, panic: None }),
            done_cv: Condvar::new(),
        });
        {
            let mut st = self.state.lock().expect("pool state");
            for job in jobs {
                let b = Arc::clone(&batch);
                let wrapped: Job = Box::new(move |scratch| {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| job(scratch)));
                    let mut s = b.state.lock().expect("batch state");
                    s.remaining -= 1;
                    if let Err(payload) = outcome {
                        s.panic.get_or_insert(payload);
                    }
                    if s.remaining == 0 {
                        b.done_cv.notify_all();
                    }
                });
                let q = st.rr % self.workers;
                st.rr += 1;
                st.queues[q].push_back(wrapped);
            }
            self.work_cv.notify_all();
        }
        let mut s = batch.state.lock().expect("batch state");
        while s.remaining > 0 {
            s = batch.done_cv.wait(s).expect("batch wait");
        }
        if let Some(payload) = s.panic.take() {
            drop(s);
            std::panic::resume_unwind(payload);
        }
    }
}

fn worker_loop(pool: &JobPool, me: usize) {
    let mut scratch = SlotScratch::new();
    loop {
        let job = {
            let mut st = pool.state.lock().expect("pool state");
            'found: loop {
                if let Some(job) = st.queues[me].pop_back() {
                    break 'found job;
                }
                for k in 1..pool.workers {
                    let victim = (me + k) % pool.workers;
                    if let Some(job) = st.queues[victim].pop_front() {
                        break 'found job;
                    }
                }
                st = pool.work_cv.wait(st).expect("pool wait");
            }
        };
        job(&mut scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn batch_runs_every_job_and_waits() {
        let pool = JobPool::start(2);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<Job> = (0..25)
            .map(|i| {
                let c = Arc::clone(&counter);
                Box::new(move |_: &mut SlotScratch| {
                    c.fetch_add(i + 1, Ordering::Relaxed);
                }) as Job
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 25 * 26 / 2);
    }

    #[test]
    fn sequential_batches_share_workers() {
        let pool = JobPool::start(1);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..3 {
            let c = Arc::clone(&counter);
            pool.run_batch(vec![Box::new(move |_: &mut SlotScratch| {
                c.fetch_add(1, Ordering::Relaxed);
            }) as Job]);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn empty_batch_returns_immediately() {
        JobPool::start(1).run_batch(Vec::new());
    }

    #[test]
    fn job_panic_surfaces_on_submitter_after_batch_drains() {
        let pool = JobPool::start(2);
        let survivors = Arc::new(AtomicU64::new(0));
        let mut jobs: Vec<Job> = vec![Box::new(|_: &mut SlotScratch| panic!("boom in job"))];
        for _ in 0..4 {
            let s = Arc::clone(&survivors);
            jobs.push(Box::new(move |_: &mut SlotScratch| {
                s.fetch_add(1, Ordering::Relaxed);
            }));
        }
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run_batch(jobs)))
            .expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom in job");
        assert_eq!(survivors.load(Ordering::Relaxed), 4, "siblings still ran");
        // The pool survives the panic and accepts new work.
        let after = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&after);
        pool.run_batch(vec![Box::new(move |_: &mut SlotScratch| {
            a.fetch_add(1, Ordering::Relaxed);
        }) as Job]);
        assert_eq!(after.load(Ordering::Relaxed), 1);
    }
}
