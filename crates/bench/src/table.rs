//! Tiny table builder rendering to CSV and aligned markdown.

/// An in-memory table with string cells.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header arity.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as CSV (no quoting — cells must not contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for r in &self.rows {
            debug_assert!(r.iter().all(|c| !c.contains(',')), "CSV cells must be comma-free");
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as column-aligned GitHub markdown.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for i in 0..ncols {
                line.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        let mut out = fmt_row(&self.headers);
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        out
    }
}

/// Format a float with 1 decimal for table cells.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a float with 3 decimals for table cells.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]).row(vec!["3", "4"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn markdown_is_aligned() {
        let mut t = Table::new(vec!["policy", "kWh"]);
        t.row(vec!["all-on", "1187.2"]);
        t.row(vec!["gm", "12.3"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| policy |"));
        assert!(md.contains("|--------|"));
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.336), "33.6%");
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
