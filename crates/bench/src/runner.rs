//! Experiment execution: tagged parallel sweeps and result output.
//!
//! Every sweep feeds the process-wide [`crate::pool::JobPool`] — one set
//! of long-lived workers for the whole suite, one `SlotScratch` per worker
//! — and materialises its worlds through the global
//! [`greenmatch::WorldCache`], so runs differing only by policy or a
//! scheduler knob share their workload, green trace and cluster layout.
//! Results are collected in input order so CSV output is deterministic
//! regardless of completion order, and each run's RNG streams are derived
//! solely from its own config, so outputs are byte-identical to a
//! sequential cold-built sweep.

use crate::pool::{Job, JobPool};
use greenmatch::config::ExperimentConfig;
use greenmatch::observe::SlotObserver;
use greenmatch::report::RunReport;
use greenmatch::simulation::Simulation;
use greenmatch::WorldCache;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Shared knobs for one experiment invocation.
#[derive(Debug, Clone)]
pub struct ExpContext {
    /// Output directory (created on demand).
    pub out_dir: PathBuf,
    /// Master seed.
    pub seed: u64,
    /// Workload/sweep scale in `(0, 1]`: 1.0 = full reconstruction,
    /// smaller values shrink the workload and thin the sweeps for quick
    /// iteration.
    pub scale: f64,
}

impl ExpContext {
    /// Context writing into `out_dir` at full scale.
    pub fn new(out_dir: impl Into<PathBuf>, seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0,1]");
        ExpContext { out_dir: out_dir.into(), seed, scale }
    }

    /// Whether the invocation is a thinned quick pass.
    pub fn is_quick(&self) -> bool {
        self.scale < 0.999
    }

    /// Write `content` to `<out_dir>/<name>`, creating directories.
    pub fn write(&self, name: &str, content: &str) -> PathBuf {
        let path = self.out_dir.join(name);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create results dir");
        }
        fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        path
    }

    /// Archive the JSON of a config next to the results for provenance.
    pub fn archive_config(&self, name: &str, cfg: &ExperimentConfig) {
        let json = serde_json::to_string_pretty(cfg).expect("config serialises");
        self.write(&format!("configs/{name}.json"), &json);
    }
}

/// Run every tagged config, in parallel where cores allow, returning
/// `(tag, report)` pairs in input order.
pub fn run_tagged(configs: Vec<(String, ExperimentConfig)>) -> Vec<(String, RunReport)> {
    run_tagged_with(configs, |_, _, _| Vec::new())
}

/// Like [`run_tagged`], but attaches observers to every run: the factory
/// is called once per run (with its index, tag and config, in input order,
/// on the submitting thread) and returns the observers that run should
/// carry — e.g. a `JsonlTraceObserver` writing a per-run trace file.
/// Reports are unaffected by observers.
pub fn run_tagged_with<F>(
    configs: Vec<(String, ExperimentConfig)>,
    observer_factory: F,
) -> Vec<(String, RunReport)>
where
    F: Fn(usize, &str, &ExperimentConfig) -> Vec<Box<dyn SlotObserver + Send>> + Sync,
{
    // Result slots indexed by submission order, filled as runs finish.
    type ResultSlots = Vec<Option<(String, RunReport)>>;

    let n = configs.len();
    if n == 0 {
        return Vec::new();
    }
    let results: Arc<Mutex<ResultSlots>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    // Completion counter shared by the batch: progress lines number runs
    // in finish order and are written as one syscall each, so concurrent
    // workers never shred each other's output.
    let done = Arc::new(AtomicUsize::new(0));

    let mut jobs: Vec<Job> = Vec::with_capacity(n);
    for (i, (tag, cfg)) in configs.into_iter().enumerate() {
        let observers = observer_factory(i, &tag, &cfg);
        let results = Arc::clone(&results);
        let done = Arc::clone(&done);
        jobs.push(Box::new(move |scratch| {
            let mut builder =
                Simulation::builder(&cfg).cache(WorldCache::global()).scratch(scratch);
            for obs in observers {
                builder = builder.observer(obs);
            }
            let report = builder.build().unwrap_or_else(|e| panic!("{e}")).run_to_end();
            let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
            let line = format!("  [{finished}/{n}] {tag} → brown {:.1} kWh\n", report.brown_kwh);
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
            results.lock().expect("results lock")[i] = Some((tag, report));
        }));
    }
    JobPool::global().run_batch(jobs);

    let mut slots = results.lock().expect("results lock");
    slots.iter_mut().map(|r| r.take().expect("all runs completed")).collect()
}

/// One scenario family of a forked sweep: a shared prefix simulated once
/// under `base`, snapshotted at `fork_slot`, then branched into every
/// variant. Variants may change anything that does not alter the world
/// keys — policy, battery, discharge timing, WAN pricing — and resume
/// mid-run from the shared checkpoint instead of re-simulating the
/// prefix.
#[derive(Debug, Clone)]
pub struct BranchSweep {
    /// Config the shared prefix runs under.
    pub base: ExperimentConfig,
    /// Slot at which the branches diverge (`0 ≤ fork_slot ≤ base.slots`).
    pub fork_slot: usize,
    /// `(tag, variant config)` pairs, each resumed from the fork.
    pub variants: Vec<(String, ExperimentConfig)>,
}

/// Run forked sweeps: per family, simulate the shared prefix once,
/// checkpoint at the fork slot, then resume every variant from that
/// checkpoint — prefixes and branches each run in parallel across the
/// pool. Returns `(tag, report)` pairs in input order (families
/// flattened). A same-config variant is byte-identical to a cold
/// uninterrupted run (`tests/snapshot.rs` pins this), so forking is a
/// pure wall-clock optimisation: a family of `v` variants forked at slot
/// `k` of `n` simulates `k + v·(n−k)` slots instead of `v·n`.
pub fn run_branched(sweeps: Vec<BranchSweep>) -> Vec<(String, RunReport)> {
    use greenmatch::Snapshot;

    type SnapSlots = Vec<Option<Arc<Snapshot>>>;

    let n_families = sweeps.len();
    if n_families == 0 {
        return Vec::new();
    }
    for (f, sweep) in sweeps.iter().enumerate() {
        assert!(
            sweep.fork_slot <= sweep.base.slots,
            "family {f}: fork slot {} beyond the {}-slot horizon",
            sweep.fork_slot,
            sweep.base.slots
        );
    }

    // Phase 1: every family's shared prefix, in parallel.
    let snaps: Arc<Mutex<SnapSlots>> =
        Arc::new(Mutex::new((0..n_families).map(|_| None).collect()));
    let mut prefix_jobs: Vec<Job> = Vec::with_capacity(n_families);
    for (f, sweep) in sweeps.iter().enumerate() {
        let cfg = sweep.base.clone();
        let fork_slot = sweep.fork_slot;
        let snaps = Arc::clone(&snaps);
        prefix_jobs.push(Box::new(move |scratch| {
            let mut sim = Simulation::builder(&cfg)
                .cache(WorldCache::global())
                .scratch(scratch)
                .build()
                .unwrap_or_else(|e| panic!("{e}"));
            for _ in 0..fork_slot {
                sim.step().expect("fork slot within the horizon");
            }
            snaps.lock().expect("snapshot lock")[f] = Some(Arc::new(sim.snapshot()));
        }));
    }
    JobPool::global().run_batch(prefix_jobs);
    let snaps: Vec<Arc<Snapshot>> = snaps
        .lock()
        .expect("snapshot lock")
        .iter_mut()
        .map(|s| s.take().expect("all prefixes completed"))
        .collect();

    // Phase 2: every branch of every family, in parallel.
    type ResultSlots = Vec<Option<(String, RunReport)>>;
    let n: usize = sweeps.iter().map(|s| s.variants.len()).sum();
    let results: Arc<Mutex<ResultSlots>> = Arc::new(Mutex::new((0..n).map(|_| None).collect()));
    let mut jobs: Vec<Job> = Vec::with_capacity(n);
    let mut i = 0usize;
    for (f, sweep) in sweeps.into_iter().enumerate() {
        for (tag, cfg) in sweep.variants {
            let snap = Arc::clone(&snaps[f]);
            let results = Arc::clone(&results);
            jobs.push(Box::new(move |scratch| {
                let report = Simulation::builder(&cfg)
                    .cache(WorldCache::global())
                    .scratch(scratch)
                    .resume_from(&snap)
                    .build()
                    .unwrap_or_else(|e| panic!("{tag}: {e}"))
                    .run_to_end();
                results.lock().expect("results lock")[i] = Some((tag, report));
            }));
            i += 1;
        }
    }
    JobPool::global().run_batch(jobs);

    let mut slots = results.lock().expect("results lock");
    slots.iter_mut().map(|r| r.take().expect("all branches completed")).collect()
}

/// Convenience: run the configs and also archive each config JSON.
pub fn run_and_archive(
    ctx: &ExpContext,
    exp_name: &str,
    configs: Vec<(String, ExperimentConfig)>,
) -> Vec<(String, RunReport)> {
    for (tag, cfg) in &configs {
        ctx.archive_config(&format!("{exp_name}-{tag}"), cfg);
    }
    run_tagged(configs)
}

/// Read a previously written result file (used by tests).
pub fn read_result(dir: &Path, name: &str) -> std::io::Result<String> {
    fs::read_to_string(dir.join(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> ExperimentConfig {
        ExperimentConfig::small_demo(seed).with_slots(12)
    }

    #[test]
    fn run_tagged_preserves_order_and_tags() {
        let configs = vec![
            ("a".to_string(), tiny_cfg(1)),
            ("b".to_string(), tiny_cfg(2)),
            ("c".to_string(), tiny_cfg(3)),
        ];
        let out = run_tagged(configs);
        let tags: Vec<&str> = out.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
        assert_eq!(out[0].1.seed, 1);
        assert_eq!(out[2].1.seed, 3);
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_tagged(vec![]).is_empty());
    }

    #[test]
    fn observer_factory_sees_every_run_and_changes_nothing() {
        use std::sync::atomic::AtomicU64;

        struct CountingObserver<'a>(&'a AtomicU64);
        impl SlotObserver for CountingObserver<'_> {
            fn on_slot(&mut self, _o: &greenmatch::simulation::SlotOutcome) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        // 'a must outlive the run; a static counter keeps the test simple.
        static SLOTS_SEEN: AtomicU64 = AtomicU64::new(0);

        let configs = vec![("a".to_string(), tiny_cfg(1)), ("b".to_string(), tiny_cfg(2))];
        let plain = run_tagged(configs.clone());
        let observed = run_tagged_with(configs, |_, _, _| {
            vec![Box::new(CountingObserver(&SLOTS_SEEN)) as Box<dyn SlotObserver + Send>]
        });
        assert_eq!(SLOTS_SEEN.load(Ordering::Relaxed), 24, "12 slots × 2 runs");
        assert_eq!(plain[0].1.brown_kwh, observed[0].1.brown_kwh);
        assert_eq!(plain[1].1.gears_series, observed[1].1.gears_series);
    }

    #[test]
    fn branched_same_config_variant_matches_a_cold_run() {
        // A branch whose variant config equals the base must report
        // exactly what an uninterrupted cold run reports: forking is a
        // wall-clock optimisation, never a result change.
        let base = ExperimentConfig::small_demo(7).with_slots(24);
        let cold = run_tagged(vec![("cold".to_string(), base.clone())]);
        let forked = run_branched(vec![BranchSweep {
            base: base.clone(),
            fork_slot: 9,
            variants: vec![("same".to_string(), base)],
        }]);
        assert_eq!(forked.len(), 1);
        assert_eq!(forked[0].0, "same");
        assert_eq!(
            serde_json::to_string(&forked[0].1).unwrap(),
            serde_json::to_string(&cold[0].1).unwrap(),
            "forked run diverged from the cold run"
        );
    }

    #[test]
    fn branched_sweep_preserves_order_across_families() {
        use greenmatch::policy::PolicyKind;

        let mk = |seed| ExperimentConfig::small_demo(seed).with_slots(12);
        let out = run_branched(vec![
            BranchSweep {
                base: mk(1),
                fork_slot: 4,
                variants: vec![
                    ("a".to_string(), mk(1)),
                    ("b".to_string(), mk(1).with_policy(PolicyKind::AllOn)),
                ],
            },
            BranchSweep { base: mk(2), fork_slot: 0, variants: vec![("c".to_string(), mk(2))] },
        ]);
        let tags: Vec<&str> = out.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(tags, vec!["a", "b", "c"]);
        assert_eq!(out[2].1.seed, 2);
        // A zero-slot fork is a plain cold run.
        let cold = run_tagged(vec![("c".to_string(), mk(2))]);
        assert_eq!(
            serde_json::to_string(&out[2].1).unwrap(),
            serde_json::to_string(&cold[0].1).unwrap()
        );
    }

    #[test]
    fn empty_branched_sweep_is_fine() {
        assert!(run_branched(vec![]).is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond the 12-slot horizon")]
    fn branched_sweep_rejects_fork_past_the_horizon() {
        let _ =
            run_branched(vec![BranchSweep { base: tiny_cfg(1), fork_slot: 13, variants: vec![] }]);
    }

    #[test]
    fn context_writes_files() {
        let dir = std::env::temp_dir().join(format!("gmbench-test-{}", std::process::id()));
        let ctx = ExpContext::new(&dir, 1, 1.0);
        let p = ctx.write("sub/test.csv", "a,b\n1,2\n");
        assert!(p.exists());
        assert_eq!(read_result(&dir, "sub/test.csv").unwrap(), "a,b\n1,2\n");
        ctx.archive_config("t", &tiny_cfg(9));
        assert!(dir.join("configs/t.json").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "scale must be in (0,1]")]
    fn bad_scale_panics() {
        let _ = ExpContext::new("/tmp/x", 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "experiment needs at least one slot")]
    fn invalid_config_panic_reaches_the_caller() {
        // The panic happens on a pool worker; run_batch must re-raise it
        // here with the original message.
        let _ = run_tagged(vec![("bad".to_string(), tiny_cfg(1).with_slots(0))]);
    }
}
