//! Randomized conservation-auditor fuzz harness.
//!
//! Runs many short simulations over randomly sampled configurations
//! (sites × chemistry × discharge × forecaster × policy × WAN cost ×
//! failures, see `gm_bench::fuzzgen`), each under the per-slot
//! [`ConservationAuditor`](greenmatch::audit::ConservationAuditor) plus
//! the post-run deep audit, and fails loudly on any violation.
//!
//! ```text
//! fuzz                          # 500 cases, seed 42
//! fuzz --cases 40 --seed 7      # CI smoke shape
//! fuzz --out violations.json    # archive violations as JSON
//! fuzz --split                  # also checkpoint/restore each case at a
//!                               # random slot and require the resumed
//!                               # trace to be byte-identical
//! ```
//!
//! Cases are deterministic in `(seed, case index)`: a failure report names
//! the case, and `--seed S` replays it exactly. Exit code 1 if any case
//! produced violations.

use gm_bench::fuzzgen;
use proptest::test_runner::TestRng;
use serde::Serialize;

fn usage() -> ! {
    eprintln!("usage: fuzz [--cases N] [--seed N] [--out FILE] [--split]");
    std::process::exit(2)
}

/// One failed case in the archived JSON report.
#[derive(Serialize)]
struct FailedCase {
    case: u32,
    config: String,
    slots_audited: usize,
    violations: Vec<greenmatch::audit::AuditViolation>,
    suppressed: usize,
}

fn main() {
    let mut cases: u32 = 500;
    let mut seed: u64 = 42;
    let mut out: Option<String> = None;
    let mut split = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--cases" => {
                cases = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--split" => split = true,
            _ => usage(),
        }
    }

    let scope = format!("fuzz-{seed}");
    let mut failed: Vec<FailedCase> = Vec::new();
    let mut slots_total = 0usize;
    for case in 0..cases {
        let mut rng = TestRng::for_case(&scope, case);
        let cfg = fuzzgen::fuzz_config(&mut rng);
        let label = fuzzgen::describe(&cfg);
        let audit = if split {
            // Interrupt the case at a random slot, restore from the
            // serialized checkpoint, and require the stitched trace to
            // match the cold trace byte for byte on top of a clean audit.
            let fork = (rng.next_u64() % (cfg.slots as u64 + 1)) as usize;
            let run = fuzzgen::run_split(&cfg, fork);
            if run.stitched_trace != run.cold_trace {
                eprintln!("case {case} FAILED [{label}]: resumed trace diverged at fork {fork}");
                failed.push(FailedCase {
                    case,
                    config: format!("{label} fork={fork}"),
                    slots_audited: run.resumed_audit.slots_audited,
                    violations: Vec::new(),
                    suppressed: 0,
                });
                continue;
            }
            run.resumed_audit
        } else {
            fuzzgen::run_audited(&cfg).1
        };
        slots_total += audit.slots_audited;
        if !audit.is_clean() {
            eprintln!("case {case} FAILED [{label}]: {}", audit.summary());
            for v in audit.violations.iter().take(10) {
                eprintln!("  {}", v.render());
            }
            if audit.violations.len() > 10 {
                eprintln!("  ... and {} more", audit.total_violations() - 10);
            }
            failed.push(FailedCase {
                case,
                config: label,
                slots_audited: audit.slots_audited,
                violations: audit.violations,
                suppressed: audit.suppressed,
            });
        }
    }

    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&failed).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("violation report written to {path}");
    }
    if failed.is_empty() {
        println!("fuzz: {cases} cases clean (seed {seed}, {slots_total} slots audited)");
    } else {
        println!("fuzz: {}/{cases} cases FAILED (seed {seed})", failed.len());
        std::process::exit(1);
    }
}
