//! Run the executable shape checks (EXPERIMENTS.md claims) and report
//! PASS/FAIL per claim. Exit code 1 if anything fails.
//!
//! ```text
//! validate            # full scale (~2 min on one core)
//! validate --quick    # reduced workload
//! ```

use gm_bench::runner::ExpContext;
use gm_bench::shapes;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { 0.25 } else { 1.0 };
    let ctx = ExpContext::new(std::env::temp_dir().join("gm-validate"), 42, scale);
    eprintln!("running shape checks at scale {scale} ...");
    let checks = shapes::run_all(&ctx);

    let mut failed = 0;
    for c in &checks {
        let status = if c.pass { "PASS" } else { "FAIL" };
        println!("[{status}] {:<36} {}", c.name, c.detail);
        if !c.pass {
            failed += 1;
        }
    }
    println!("\n{}/{} shape checks passed", checks.len() - failed, checks.len());
    if failed > 0 {
        std::process::exit(1);
    }
}
