//! Run the executable shape checks (EXPERIMENTS.md claims) and report
//! PASS/FAIL per claim. Exit code 1 if anything fails.
//!
//! ```text
//! validate                      # full scale (~2 min on one core)
//! validate --quick              # reduced workload
//! validate --results-dir DIR    # write run artifacts under DIR
//! validate --check tiering      # one standalone check (CI smoke)
//! validate --check admission    # the admission-gate check alone
//! ```

use gm_bench::runner::ExpContext;
use gm_bench::shapes;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: validate [--quick] [--results-dir DIR] [--check tiering|admission]");
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut results_dir: Option<PathBuf> = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--results-dir" => match args.next() {
                Some(dir) => results_dir = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(name) => only = Some(name),
                None => usage(),
            },
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    let scale = if quick { 0.25 } else { 1.0 };
    let out_dir = results_dir.unwrap_or_else(|| std::env::temp_dir().join("gm-validate"));
    let ctx = ExpContext::new(out_dir, 42, scale);
    let checks = match only.as_deref() {
        None => {
            eprintln!("running shape checks at scale {scale} ...");
            shapes::run_all(&ctx)
        }
        Some("tiering") => {
            eprintln!("running the tiering shape check at scale {scale} ...");
            vec![shapes::tiering_check(&ctx)]
        }
        Some("admission") => {
            eprintln!("running the admission shape check at scale {scale} ...");
            vec![shapes::admission_check(&ctx)]
        }
        Some(other) => {
            eprintln!("unknown standalone check {other:?} (available: tiering, admission)");
            usage();
        }
    };

    let mut failed = 0;
    let mut report = String::new();
    for c in &checks {
        let status = if c.pass { "PASS" } else { "FAIL" };
        let line = format!("[{status}] {:<36} {}", c.name, c.detail);
        println!("{line}");
        report.push_str(&line);
        report.push('\n');
        if !c.pass {
            failed += 1;
        }
    }
    println!("\n{}/{} shape checks passed", checks.len() - failed, checks.len());
    report.push_str(&format!(
        "\n{}/{} shape checks passed (seed 42, scale {scale})\n",
        checks.len() - failed,
        checks.len()
    ));
    ctx.write("shape_checks.txt", &report);
    if failed > 0 {
        std::process::exit(1);
    }
}
