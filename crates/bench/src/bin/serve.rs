//! gm-serve — long-lived service mode: stream admission control with
//! per-slot decision latency.
//!
//! Where `run_once` replays a pre-materialised workload through the batch
//! arrival cursor, `serve` drives the simulation the way a real control
//! plane would: a producer thread pushes each slot's arrivals into an
//! [`gm_workload::EventFeed`], and the simulation's classify phase blocks
//! on the feed — a slow producer delays the clock instead of dropping
//! work. Every job faces the α-confidence admission gate before it can
//! reach the matcher.
//!
//! ```text
//! gm-serve --preset mega                       # 1M+ requests per slot
//! gm-serve --preset small --slots 48 --verify  # pin feed == batch replay
//! gm-serve --preset mega --alpha 0.99 --forecast ewma --out serve.json
//! ```
//!
//! The headline output is the **decision latency** distribution: the
//! wall-clock cost of one full slot decision (feed drain, gate, forecast,
//! matcher, execution bookkeeping) at service scale, summarised as
//! p50/p99/max in the [`ServeReport`]. `--preset mega` additionally
//! raises the interactive request rate (default ×35, see `--rate`) so a
//! simulated slot carries over a million requests — the scale claim the
//! report's `requests_per_slot` field substantiates.
//!
//! `--verify` replays the identical scenario through the batch cursor and
//! asserts the two reports are byte-identical JSON — the service seam
//! provably changes nothing but the arrival transport. `--audit` runs the
//! conservation auditor alongside.

use gm_sim::LogHistogram;
use greenmatch::config::{AdmissionConfig, ExperimentConfig, ForecastKind};
use greenmatch::report::{AdmissionReport, RunReport};
use greenmatch::simulation::Simulation;
use serde::Serialize;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: gm-serve [--preset small|medium|mega] [--slots N] [--alpha A] \
         [--defer-slots N] [--forecast oracle|persistence|ewma|noisy] [--rate K] \
         [--seed N] [--no-admission] [--out FILE] [--verify] [--audit]\n\
         defaults: mega preset, 24 slots, alpha 0.9, noisy forecast (cv 0.3),\n\
         rate x35 on mega (x1 elsewhere)"
    );
    std::process::exit(2)
}

/// Latency summary of the per-slot decision loop.
#[derive(Serialize)]
struct DecisionLatency {
    count: u64,
    mean_s: f64,
    p50_s: f64,
    p99_s: f64,
    max_s: f64,
}

/// What `gm-serve` archives: service-scale throughput plus the decision
/// latency distribution, alongside the admission gate's totals.
#[derive(Serialize)]
struct ServeReport {
    preset: String,
    policy: String,
    forecast: String,
    alpha: Option<f64>,
    slots: usize,
    /// Interactive requests served over the run.
    requests: u64,
    /// Mean interactive requests per simulated slot — the scale claim.
    requests_per_slot: f64,
    /// Batch jobs offered through the feed.
    jobs_offered: u64,
    /// Wall-clock of the serve loop (s).
    wall_s: f64,
    /// Simulated slots per wall-clock second.
    slots_per_s: f64,
    decision_latency: DecisionLatency,
    admission: Option<AdmissionReport>,
    brown_kwh: f64,
    green_coverage: f64,
    deadline_miss_rate: f64,
}

fn main() {
    let mut preset = "mega".to_string();
    let mut slots: Option<usize> = None;
    let mut alpha = 0.9f64;
    let mut defer_slots = 4usize;
    let mut forecast = "noisy".to_string();
    let mut rate: Option<f64> = None;
    let mut seed = 42u64;
    let mut admission_on = true;
    let mut out: Option<String> = None;
    let mut verify = false;
    let mut audit = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--preset" => preset = args.next().unwrap_or_else(|| usage()),
            "--slots" => slots = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--alpha" => {
                alpha = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--defer-slots" => {
                defer_slots = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
            }
            "--forecast" => forecast = args.next().unwrap_or_else(|| usage()),
            "--rate" => rate = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--no-admission" => admission_on = false,
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--verify" => verify = true,
            "--audit" => audit = true,
            _ => usage(),
        }
    }

    let mut cfg = match preset.as_str() {
        "small" => ExperimentConfig::small_demo(seed),
        "medium" => ExperimentConfig::medium(seed),
        "mega" => ExperimentConfig::mega(seed),
        _ => usage(),
    };
    // Service scale: the mega preset's million streams carry ~42k
    // requests per hourly slot; the rate multiplier pushes a slot past
    // one million requests by default.
    let rate = rate.unwrap_or(if preset == "mega" { 35.0 } else { 1.0 });
    if rate != 1.0 {
        cfg.workload.interactive.rate_rps *= rate;
    }
    if let Some(n) = slots {
        cfg.slots = n;
    } else if preset == "mega" {
        cfg.slots = 24;
    }
    cfg = cfg.with_forecast(match forecast.as_str() {
        "oracle" => ForecastKind::Oracle,
        "persistence" => ForecastKind::Persistence,
        "ewma" => ForecastKind::Ewma { alpha: 0.3 },
        "noisy" => ForecastKind::Noisy { cv: 0.3 },
        _ => usage(),
    });
    if admission_on {
        cfg = cfg.with_admission(AdmissionConfig { alpha, defer_slots });
    }

    // Materialise the world once; the producer thread walks the same
    // workload the simulation was built over, so the feed offers exactly
    // the batch population, slot by slot.
    let world = greenmatch::world::World::try_materialize(&cfg).unwrap_or_else(|e| panic!("{e}"));
    let workload = world.workload.clone();
    let jobs_offered = workload.batch_jobs().len() as u64;

    let (feed_tx, feed) = gm_workload::EventFeed::new();
    let clock = cfg.clock;
    let total_slots = cfg.slots;
    let producer = std::thread::spawn(move || {
        let mut tx = feed_tx;
        for slot in 0..total_slots {
            if !tx.send_slot(slot, workload.batch_arrivals_in_slot(clock, slot)) {
                return; // consumer gone; stop producing
            }
        }
    });

    let mut builder = Simulation::builder(&cfg).world(world).feed(feed);
    let mut audit_handle = None;
    if audit {
        let (auditor, handle) = greenmatch::ConservationAuditor::new();
        builder = builder.observer(Box::new(auditor));
        audit_handle = Some(handle);
    }
    let mut sim = builder.build().unwrap_or_else(|e| panic!("{e}"));

    eprintln!(
        "serving {} slots of the {} preset ({} policy, {} forecast, gate {})...",
        cfg.slots,
        preset,
        cfg.policy.label(),
        forecast,
        if admission_on { format!("α={alpha}") } else { "off".to_string() }
    );

    let mut decision_hist = LogHistogram::for_latency_secs();
    let mut requests = 0u64;
    let t0 = Instant::now();
    loop {
        let t = Instant::now();
        let Some(outcome) = sim.step() else { break };
        decision_hist.record(t.elapsed().as_secs_f64());
        requests += outcome.latency.count;
    }
    let wall_s = t0.elapsed().as_secs_f64();
    producer.join().expect("producer thread");

    let audit_report = audit_handle.map(|handle| {
        let mut report =
            std::mem::take(&mut *handle.lock().expect("auditor handle is never poisoned"));
        report.merge(sim.post_run_audit());
        report
    });
    let report: RunReport = sim.into_report();

    let serve = ServeReport {
        preset,
        policy: report.policy.clone(),
        forecast,
        alpha: admission_on.then_some(alpha),
        slots: report.slots,
        requests,
        requests_per_slot: requests as f64 / report.slots.max(1) as f64,
        jobs_offered,
        wall_s,
        slots_per_s: report.slots as f64 / wall_s.max(1e-9),
        decision_latency: DecisionLatency {
            count: decision_hist.count(),
            mean_s: decision_hist.mean(),
            p50_s: decision_hist.quantile(0.5),
            p99_s: decision_hist.quantile(0.99),
            max_s: decision_hist.max(),
        },
        admission: report.admission.clone(),
        brown_kwh: report.brown_kwh,
        green_coverage: report.green_coverage,
        deadline_miss_rate: report.batch.miss_rate(),
    };

    println!("{report}");
    eprintln!(
        "service        : {:.0} requests/slot over {} slots ({:.1}s wall, {:.1} slots/s)",
        serve.requests_per_slot, serve.slots, serve.wall_s, serve.slots_per_s
    );
    eprintln!(
        "decision       : p50 {:.2} ms, p99 {:.2} ms, max {:.2} ms per slot",
        serve.decision_latency.p50_s * 1e3,
        serve.decision_latency.p99_s * 1e3,
        serve.decision_latency.max_s * 1e3
    );

    if let Some(path) = &out {
        let json = serde_json::to_string_pretty(&serve).expect("serve report serialises");
        std::fs::write(path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("serve report written to {path}");
    }

    if verify {
        // The service seam's core contract: a fed run equals the batch
        // replay of the same scenario byte for byte.
        let batch = greenmatch::harness::run_experiment(&cfg);
        let a = serde_json::to_string(&report).expect("report serialises");
        let b = serde_json::to_string(&batch).expect("report serialises");
        if a == b {
            eprintln!("verify         : feed == batch (byte-identical reports)");
        } else {
            eprintln!("verify         : FAILED — feed run diverged from batch replay");
            std::process::exit(1);
        }
    }

    if let Some(audit_report) = audit_report {
        eprintln!("{}", audit_report.summary());
        if !audit_report.is_clean() {
            for v in audit_report.violations.iter().take(20) {
                eprintln!("  {}", v.render());
            }
            std::process::exit(1);
        }
    }
}
