//! CLI regenerating the reconstructed evaluation (DESIGN.md §4).
//!
//! ```text
//! experiments all                 # every figure, table and ablation
//! experiments fig3 table2        # a subset
//! experiments all --quick        # thinned sweeps + scaled workload
//! experiments all --out results --seed 42
//! experiments list               # show the registry
//! ```

use gm_bench::experiments::{find, registry};
use gm_bench::runner::ExpContext;
use std::time::Instant;

fn usage() -> ! {
    eprintln!("usage: experiments <ids...|all|list> [--quick] [--out DIR] [--seed N] [--jobs N]");
    eprintln!("experiments:");
    for e in registry() {
        eprintln!("  {:<16} {}", e.id, e.about);
    }
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }

    let mut ids: Vec<String> = Vec::new();
    let mut out = "results".to_string();
    let mut seed = 42u64;
    let mut scale = 1.0f64;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => scale = 0.25,
            "--out" => out = it.next().unwrap_or_else(|| usage()),
            "--seed" => seed = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--scale" => scale = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--jobs" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| usage());
                gm_bench::set_max_workers(n);
            }
            "list" => {
                for e in registry() {
                    println!("{:<16} {}", e.id, e.about);
                }
                return;
            }
            "all" => ids.extend(registry().iter().map(|e| e.id.to_string())),
            other if other.starts_with('-') => usage(),
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        usage();
    }
    ids.dedup();

    let ctx = ExpContext::new(&out, seed, scale);
    println!("GreenMatch reconstructed evaluation — seed {seed}, scale {scale}, output: {out}/");
    let mut summaries = Vec::new();
    for id in &ids {
        let Some(exp) = find(id) else {
            eprintln!("unknown experiment {id:?}");
            usage();
        };
        println!("\n== {} — {}", exp.id, exp.about);
        let t = Instant::now();
        let summary = (exp.run)(&ctx);
        println!("   {summary}");
        println!("   done in {:.1?}", t.elapsed());
        summaries.push(format!("{}: {}", exp.id, summary));
    }

    let index = summaries.join("\n");
    ctx.write("SUMMARY.txt", &format!("seed={seed} scale={scale}\n\n{index}\n"));
    println!("\nAll requested experiments complete. Index written to {out}/SUMMARY.txt");
}
