//! Run a single experiment from a JSON config file (or a built-in preset)
//! and print the report; optionally archive the full report as JSON.
//!
//! ```text
//! run_once --preset medium --policy greenmatch --out report.json
//! run_once --config my_experiment.json
//! run_once --preset small --describe-workload
//! run_once --preset medium --trace trace.jsonl --profile
//! ```
//!
//! `--trace FILE` attaches a [`JsonlTraceObserver`] and writes one JSON
//! record per slot (deterministic: same seed ⇒ byte-identical file);
//! `--csv FILE` writes the key per-slot series as CSV; `--profile` prints
//! per-phase wall-clock after the run. None of these change the report.
//!
//! `--audit` runs the whole simulation under the conservation auditor
//! (per-slot invariant checks plus the post-run deep audit), prints any
//! violations, and exits 1 if the run was not clean; `--audit-out FILE`
//! archives the audit report as JSON. Auditing never changes the report
//! or the trace either.
//!
//! Config files use the same schema the experiment harness archives under
//! `results/configs/` — copy one of those and edit it.

use gm_sim::time::SimDuration;
use gm_workload::trace::Workload;
use greenmatch::config::ExperimentConfig;
use greenmatch::observe::{CsvSeriesObserver, JsonlTraceObserver, PhaseTimer};
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;

fn usage() -> ! {
    eprintln!(
        "usage: run_once [--config FILE | --preset small|medium] [--policy NAME] \
         [--seed N] [--slots N] [--out FILE] [--trace FILE] [--csv FILE] [--profile] \
         [--audit] [--audit-out FILE] [--describe-workload]\n\
         policies: all-on power-prop edf greedy-green greenmatch greenmatch30 greenmatch-carbon"
    );
    std::process::exit(2)
}

fn parse_policy(name: &str) -> PolicyKind {
    match name {
        "all-on" => PolicyKind::AllOn,
        "power-prop" => PolicyKind::PowerProportional,
        "edf" => PolicyKind::Edf,
        "greedy-green" => PolicyKind::GreedyGreen,
        "greenmatch" => PolicyKind::GreenMatch { delay_fraction: 1.0 },
        "greenmatch30" => PolicyKind::GreenMatch { delay_fraction: 0.3 },
        "greenmatch-carbon" => PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
        other => {
            eprintln!("unknown policy {other:?}");
            usage()
        }
    }
}

fn main() {
    let mut cfg: Option<ExperimentConfig> = None;
    let mut policy: Option<PolicyKind> = None;
    let mut seed: Option<u64> = None;
    let mut slots: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut profile = false;
    let mut describe = false;
    let mut audit = false;
    let mut audit_out: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                let path = args.next().unwrap_or_else(|| usage());
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                cfg = Some(
                    serde_json::from_str(&json)
                        .unwrap_or_else(|e| panic!("bad config {path}: {e}")),
                );
            }
            "--preset" => {
                cfg = Some(match args.next().as_deref() {
                    Some("small") => ExperimentConfig::small_demo(42),
                    Some("medium") => ExperimentConfig::medium(42),
                    _ => usage(),
                });
            }
            "--policy" => policy = Some(parse_policy(&args.next().unwrap_or_else(|| usage()))),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--slots" => slots = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--csv" => csv = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => profile = true,
            "--audit" => audit = true,
            "--audit-out" => {
                audit = true;
                audit_out = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--describe-workload" => describe = true,
            _ => usage(),
        }
    }

    let mut cfg = cfg.unwrap_or_else(|| ExperimentConfig::small_demo(42));
    if let Some(p) = policy {
        cfg.policy = p;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(n) = slots {
        cfg.slots = n;
    }

    if describe {
        let workload = Workload::generate(cfg.workload.clone(), cfg.seed);
        let stats = gm_workload::characterize(
            &workload,
            cfg.clock,
            cfg.slots,
            cfg.cluster.disk.transfer_bps,
        );
        let demand = gm_workload::stats::batch_demand_ratio(
            &workload,
            cfg.cluster.topology.n_disks(),
            cfg.cluster.disk.transfer_bps,
            SimDuration(cfg.clock.width().0 * cfg.slots as u64),
        );
        println!("workload characterisation (seed {}):", cfg.seed);
        println!(
            "  interactive: mean {:.1} req/s, peak/mean {:.2}",
            stats.interactive_rps.mean(),
            stats.interactive_peak_to_mean
        );
        println!(
            "  batch: {} jobs, mean size {:.1} GiB (σ {:.1}), slack mean {:.1} h (min {:.1})",
            stats.job_size.count,
            stats.job_size.mean / (1u64 << 30) as f64,
            stats.job_size.std_dev / (1u64 << 30) as f64,
            stats.slack_hours.mean,
            stats.slack_hours.min,
        );
        println!("  batch demand / sequential capacity: {:.3}", demand);
        return;
    }

    eprintln!("running {} slots with {} ...", cfg.slots, cfg.policy.label());
    let mut sim = Simulation::builder(&cfg).build().unwrap_or_else(|e| panic!("{e}"));
    if let Some(path) = &trace {
        let obs = JsonlTraceObserver::create(path)
            .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
        sim.add_observer(Box::new(obs));
    }
    if let Some(path) = &csv {
        let obs = CsvSeriesObserver::create(path)
            .unwrap_or_else(|e| panic!("cannot create csv file {path}: {e}"));
        sim.add_observer(Box::new(obs));
    }
    let profile_handle = profile.then(|| {
        let (timer, handle) = PhaseTimer::new();
        sim.add_observer(Box::new(timer));
        handle
    });
    let (report, audit_report) = if audit {
        // Step under the per-slot auditor, deep-audit, then report — the
        // stepwise path yields the identical report to `run_to_end`.
        let (sim, audit_report) = sim.run_audited();
        (sim.into_report(), Some(audit_report))
    } else {
        (sim.run_to_end(), None)
    };
    println!("{report}");
    if let Some(path) = &trace {
        eprintln!("per-slot trace written to {path}");
    }
    if let Some(path) = &csv {
        eprintln!("per-slot series written to {path}");
    }
    if let Some(handle) = profile_handle {
        eprintln!("phase profile: {}", handle.lock().unwrap().summary());
    }
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("full report written to {path}");
    }
    if let Some(audit_report) = audit_report {
        if let Some(path) = audit_out {
            let json = serde_json::to_string_pretty(&audit_report).expect("audit serialises");
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("audit report written to {path}");
        }
        eprintln!("{}", audit_report.summary());
        if !audit_report.is_clean() {
            for v in audit_report.violations.iter().take(20) {
                eprintln!("  {}", v.render());
            }
            std::process::exit(1);
        }
    }
}
