//! Run a single experiment from a JSON config file (or a built-in preset)
//! and print the report; optionally archive the full report as JSON.
//!
//! ```text
//! run_once --preset medium --policy greenmatch --out report.json
//! run_once --config my_experiment.json
//! run_once --preset small --describe-workload
//! run_once --preset medium --trace trace.jsonl --profile
//! ```
//!
//! `--trace FILE` attaches a [`JsonlTraceObserver`] and writes one JSON
//! record per slot (deterministic: same seed ⇒ byte-identical file);
//! `--csv FILE` writes the key per-slot series as CSV; `--profile` prints
//! per-phase wall-clock after the run. None of these change the report.
//!
//! `--audit` runs the whole simulation under the conservation auditor
//! (per-slot invariant checks plus the post-run deep audit), prints any
//! violations, and exits 1 if the run was not clean; `--audit-out FILE`
//! archives the audit report as JSON. Auditing never changes the report
//! or the trace either.
//!
//! `--checkpoint-every N` saves a resumable snapshot (atomic write) to
//! the `--checkpoint-file` every N slots; `--halt-after N` stops the run
//! right after saving a checkpoint at slot N, simulating a crash
//! deterministically. `--resume FILE` continues from such a snapshot —
//! without `--config`/`--preset` the snapshot's own config is used, and
//! `--trace`/`--csv` files are appended to (not truncated), so the
//! stitched output is byte-identical to an uninterrupted run. Combining
//! `--resume` with `--policy` branches the checkpoint into a what-if
//! continuation under the new policy.
//!
//! Config files use the same schema the experiment harness archives under
//! `results/configs/` — copy one of those and edit it.

use gm_sim::time::SimDuration;
use gm_workload::trace::Workload;
use greenmatch::config::ExperimentConfig;
use greenmatch::observe::{CsvSeriesObserver, JsonlTraceObserver, PhaseTimer};
use greenmatch::policy::PolicyKind;
use greenmatch::simulation::Simulation;

fn usage() -> ! {
    eprintln!(
        "usage: run_once [--config FILE | --preset small|medium|mega] [--policy NAME] \
         [--seed N] [--slots N] [--streams N] [--out FILE] [--trace FILE] [--csv FILE] \
         [--profile] [--audit] [--audit-out FILE] [--describe-workload] \
         [--checkpoint-every N] [--checkpoint-file FILE] [--halt-after N] [--resume FILE]\n\
         policies: all-on power-prop edf greedy-green greenmatch greenmatch30 greenmatch-carbon\n\
         --streams N re-spreads the interactive half over N sessions at the\n\
         same aggregate volume (mega preset = medium with --streams 1000000)"
    );
    std::process::exit(2)
}

fn parse_policy(name: &str) -> PolicyKind {
    match name {
        "all-on" => PolicyKind::AllOn,
        "power-prop" => PolicyKind::PowerProportional,
        "edf" => PolicyKind::Edf,
        "greedy-green" => PolicyKind::GreedyGreen,
        "greenmatch" => PolicyKind::GreenMatch { delay_fraction: 1.0 },
        "greenmatch30" => PolicyKind::GreenMatch { delay_fraction: 0.3 },
        "greenmatch-carbon" => PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
        other => {
            eprintln!("unknown policy {other:?}");
            usage()
        }
    }
}

fn main() {
    let mut cfg: Option<ExperimentConfig> = None;
    let mut policy: Option<PolicyKind> = None;
    let mut seed: Option<u64> = None;
    let mut slots: Option<usize> = None;
    let mut streams: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut trace: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut profile = false;
    let mut describe = false;
    let mut audit = false;
    let mut audit_out: Option<String> = None;
    let mut checkpoint_every: Option<usize> = None;
    let mut checkpoint_file = "checkpoint.json".to_string();
    let mut halt_after: Option<usize> = None;
    let mut resume: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--config" => {
                let path = args.next().unwrap_or_else(|| usage());
                let json = std::fs::read_to_string(&path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                cfg = Some(
                    serde_json::from_str(&json)
                        .unwrap_or_else(|e| panic!("bad config {path}: {e}")),
                );
            }
            "--preset" => {
                cfg = Some(match args.next().as_deref() {
                    Some("small") => ExperimentConfig::small_demo(42),
                    Some("medium") => ExperimentConfig::medium(42),
                    Some("mega") => ExperimentConfig::mega(42),
                    _ => usage(),
                });
            }
            "--policy" => policy = Some(parse_policy(&args.next().unwrap_or_else(|| usage()))),
            "--seed" => seed = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--slots" => slots = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--streams" => streams = args.next().and_then(|s| s.parse().ok()).or_else(|| usage()),
            "--out" => out = Some(args.next().unwrap_or_else(|| usage())),
            "--trace" => trace = Some(args.next().unwrap_or_else(|| usage())),
            "--csv" => csv = Some(args.next().unwrap_or_else(|| usage())),
            "--profile" => profile = true,
            "--audit" => audit = true,
            "--audit-out" => {
                audit = true;
                audit_out = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--describe-workload" => describe = true,
            "--checkpoint-every" => {
                checkpoint_every = args.next().and_then(|s| s.parse().ok()).or_else(|| usage())
            }
            "--checkpoint-file" => checkpoint_file = args.next().unwrap_or_else(|| usage()),
            "--halt-after" => {
                halt_after = args.next().and_then(|s| s.parse().ok()).or_else(|| usage())
            }
            "--resume" => resume = Some(args.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    // A resumed run defaults to the checkpoint's own config; explicit
    // --config/--preset (plus the overrides below) branch it instead.
    let snapshot = resume.as_ref().map(|path| {
        greenmatch::Snapshot::load(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2)
        })
    });
    if cfg.is_none() {
        if let Some(snap) = &snapshot {
            cfg = Some(snap.cfg.clone());
        }
    }

    let mut cfg = cfg.unwrap_or_else(|| ExperimentConfig::small_demo(42));
    if let Some(p) = policy {
        cfg.policy = p;
    }
    if let Some(s) = seed {
        cfg.seed = s;
    }
    if let Some(n) = slots {
        cfg.slots = n;
    }
    if let Some(n) = streams {
        cfg.workload = cfg.workload.clone().with_interactive_streams(n);
    }

    if describe {
        let workload = Workload::generate(cfg.workload.clone(), cfg.seed);
        let stats = gm_workload::characterize(
            &workload,
            cfg.clock,
            cfg.slots,
            cfg.cluster.disk.transfer_bps,
        );
        let demand = gm_workload::stats::batch_demand_ratio(
            &workload,
            cfg.cluster.topology.n_disks(),
            cfg.cluster.disk.transfer_bps,
            SimDuration(cfg.clock.width().0 * cfg.slots as u64),
        );
        println!("workload characterisation (seed {}):", cfg.seed);
        println!(
            "  interactive: mean {:.1} req/s, peak/mean {:.2}",
            stats.interactive_rps.mean(),
            stats.interactive_peak_to_mean
        );
        println!(
            "  batch: {} jobs, mean size {:.1} GiB (σ {:.1}), slack mean {:.1} h (min {:.1})",
            stats.job_size.count,
            stats.job_size.mean / (1u64 << 30) as f64,
            stats.job_size.std_dev / (1u64 << 30) as f64,
            stats.slack_hours.mean,
            stats.slack_hours.min,
        );
        println!("  batch demand / sequential capacity: {:.3}", demand);
        return;
    }

    eprintln!("running {} slots with {} ...", cfg.slots, cfg.policy.label());
    // Observers must ride the builder (not `add_observer` after build) so
    // a resumed run delivers `on_resume` to them — that is what lets the
    // appended trace/CSV continue the original file without re-emitting
    // headers or restarting slot numbering.
    let mut builder = Simulation::builder(&cfg);
    if let Some(snap) = &snapshot {
        builder = builder.resume_from(snap);
    }
    let resuming = snapshot.is_some();
    if let Some(path) = &trace {
        let obs = if resuming {
            JsonlTraceObserver::append(path)
        } else {
            JsonlTraceObserver::create(path)
        }
        .unwrap_or_else(|e| panic!("cannot open trace file {path}: {e}"));
        builder = builder.observer(Box::new(obs));
    }
    if let Some(path) = &csv {
        let obs = if resuming {
            CsvSeriesObserver::append(path)
        } else {
            CsvSeriesObserver::create(path)
        }
        .unwrap_or_else(|e| panic!("cannot open csv file {path}: {e}"));
        builder = builder.observer(Box::new(obs));
    }
    let mut profile_handle = None;
    if profile {
        let (timer, handle) = PhaseTimer::new();
        builder = builder.observer(Box::new(timer));
        profile_handle = Some(handle);
    }
    let mut audit_handle = None;
    if audit {
        // Step under the per-slot auditor, deep-audit, then report — the
        // stepwise path yields the identical report to `run_to_end`.
        let (auditor, handle) = greenmatch::ConservationAuditor::new();
        builder = builder.observer(Box::new(auditor));
        audit_handle = Some(handle);
    }

    let mut sim = builder.build().unwrap_or_else(|e| panic!("{e}"));
    if let Some(snap) = &snapshot {
        eprintln!("resumed at slot {} of {}", snap.cursor, cfg.slots);
    }

    let ck_path = std::path::PathBuf::from(&checkpoint_file);
    while sim.step().is_some() {
        let slot = sim.current_slot();
        let due = checkpoint_every.is_some_and(|n| n > 0 && slot.is_multiple_of(n))
            || halt_after == Some(slot);
        if due {
            sim.snapshot()
                .save(&ck_path)
                .unwrap_or_else(|e| panic!("cannot write checkpoint {}: {e}", ck_path.display()));
        }
        if halt_after == Some(slot) {
            eprintln!("halted at slot {slot}; checkpoint written to {}", ck_path.display());
            return;
        }
    }
    let audit_report = audit_handle.map(|handle| {
        let mut report =
            std::mem::take(&mut *handle.lock().expect("auditor handle is never poisoned"));
        report.merge(sim.post_run_audit());
        report
    });
    let report = sim.into_report();
    println!("{report}");
    if let Some(path) = &trace {
        eprintln!("per-slot trace written to {path}");
    }
    if let Some(path) = &csv {
        eprintln!("per-slot series written to {path}");
    }
    if let Some(handle) = profile_handle {
        eprintln!("phase profile: {}", handle.lock().unwrap().summary());
    }
    if let Some(path) = out {
        let json = serde_json::to_string_pretty(&report).expect("report serialises");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("full report written to {path}");
    }
    if let Some(audit_report) = audit_report {
        if let Some(path) = audit_out {
            let json = serde_json::to_string_pretty(&audit_report).expect("audit serialises");
            std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("audit report written to {path}");
        }
        eprintln!("{}", audit_report.summary());
        if !audit_report.is_clean() {
            for v in audit_report.violations.iter().take(20) {
                eprintln!("  {}", v.render());
            }
            std::process::exit(1);
        }
    }
}
