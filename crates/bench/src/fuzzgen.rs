//! Random experiment configurations for the conservation-auditor fuzz
//! harness.
//!
//! One generator, three consumers: the `fuzz` binary (large fixed-seed
//! sweeps, CI smoke), the `audit_fuzz` integration test, and the `validate`
//! shape checks. Each case is a short simulation (24–48 hourly slots) over
//! an independently sampled point of the configuration space — site count
//! and UTC offsets, battery chemistry and size, discharge strategy,
//! forecaster, scheduling policy, renewable source, WAN pricing, and
//! failure injection — run under the [`greenmatch::audit`] layer.
//!
//! Sampling uses the `proptest` shim's [`TestRng`] imperatively, so a case
//! is reproducible from its `(seed, case)` pair alone: re-running
//! `fuzz --seed S` replays the identical configuration sequence.

use greenmatch::audit::AuditReport;
use greenmatch::config::{
    AdmissionConfig, DischargeStrategy, ExperimentConfig, ForecastKind, SourceKind, TieringConfig,
};
use greenmatch::policy::PolicyKind;
use greenmatch::report::RunReport;
use greenmatch::simulation::Simulation;
use proptest::test_runner::TestRng;

use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use gm_energy::wind::WindProfile;

fn pick<T: Copy>(rng: &mut TestRng, options: &[T]) -> T {
    options[(rng.next_u64() % options.len() as u64) as usize]
}

fn range_u64(rng: &mut TestRng, lo: u64, hi: u64) -> u64 {
    lo + rng.next_u64() % (hi - lo + 1)
}

fn source(rng: &mut TestRng) -> SourceKind {
    let solar_profile =
        pick(rng, &[SolarProfile::SunnySummer, SolarProfile::CloudySummer, SolarProfile::Winter]);
    let wind_profile = pick(
        rng,
        &[WindProfile::SteadyCoastal, WindProfile::GustyContinental, WindProfile::CalmWeek],
    );
    let area_m2 = 5.0 + rng.unit_f64() * 35.0;
    let rated_w = 2_000.0 + rng.unit_f64() * 18_000.0;
    match rng.next_u64() % 5 {
        0 => SourceKind::None,
        1 | 2 => SourceKind::Solar { area_m2, profile: solar_profile },
        3 => SourceKind::Wind { rated_w, profile: wind_profile },
        _ => SourceKind::Mixed { area_m2, solar_profile, rated_w, wind_profile },
    }
}

fn battery(rng: &mut TestRng) -> Option<BatterySpec> {
    let capacity_wh = 5_000.0 + rng.unit_f64() * 35_000.0;
    match rng.next_u64() % 3 {
        0 => None,
        1 => Some(BatterySpec::lead_acid(capacity_wh)),
        _ => Some(BatterySpec::lithium_ion(capacity_wh)),
    }
}

/// Sample one experiment configuration.
pub fn fuzz_config(rng: &mut TestRng) -> ExperimentConfig {
    let seed = rng.next_u64();
    let slots = range_u64(rng, 24, 48) as usize;
    let mut cfg = ExperimentConfig::small_demo(seed)
        .with_slots(slots)
        .with_source(source(rng))
        .with_battery(battery(rng))
        .with_forecast(pick(
            rng,
            &[
                ForecastKind::Oracle,
                ForecastKind::Persistence,
                ForecastKind::Ewma { alpha: 0.3 },
                ForecastKind::Noisy { cv: 0.3 },
            ],
        ))
        .with_policy(pick(
            rng,
            &[
                PolicyKind::AllOn,
                PolicyKind::PowerProportional,
                PolicyKind::Edf,
                PolicyKind::GreedyGreen,
                PolicyKind::GreenMatch { delay_fraction: 1.0 },
                PolicyKind::GreenMatch { delay_fraction: 0.3 },
                PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: 6 },
                PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 },
            ],
        ));
    cfg.energy.discharge = pick(
        rng,
        &[
            DischargeStrategy::Eager,
            DischargeStrategy::PeakOnly,
            DischargeStrategy::Reserve(0.25),
            DischargeStrategy::Reserve(0.75),
        ],
    );
    // Mostly warm-started matchers (the default), with occasional cold
    // runs so the fuzzer also exercises the rebuild-every-slot path.
    cfg.matcher_warm_start = !rng.next_u64().is_multiple_of(4);
    // Mostly site-parallel phases (the default), with occasional
    // sequential runs so the fuzzer covers the reference path too.
    cfg.site_parallel = !rng.next_u64().is_multiple_of(4);
    // Stream-count dimension: occasionally re-spread the interactive half
    // over up to 10⁴ sessions (aggregate volume unchanged), exercising the
    // activation index and shard-parallel synthesis at off-preset sizes.
    if rng.next_u64().is_multiple_of(3) {
        let streams = range_u64(rng, 10, 10_000) as usize;
        cfg.workload = cfg.workload.with_interactive_streams(streams);
    }
    if rng.next_u64().is_multiple_of(4) {
        cfg = cfg.with_failures(gm_storage::FailureSpec {
            afr: 5.0 + rng.unit_f64() * 25.0,
            standby_factor: 0.5,
            spinup_wear_hours: 10.0,
        });
    }

    // Geo-federation: 1–3 sites with independent supplies, batteries, and
    // longitudes; WAN pricing from free to prohibitive.
    let n_sites = 1 + (rng.next_u64() % 3) as usize;
    if n_sites > 1 {
        let mut sites = cfg.site_configs();
        let home = sites[0].clone();
        for i in 1..n_sites {
            let mut s = home.clone();
            s.name = format!("site{i}");
            s.source = source(rng);
            s.battery = battery(rng);
            s.forecast = cfg.energy.forecast;
            s.utc_offset_hours = pick(rng, &[-8, -5, 5, 8]);
            sites.push(s);
        }
        cfg = cfg.with_sites(sites).with_wan_cost(pick(rng, &[0, 200, 2_000, 100_000]));
    }

    // Temperature tiering: roughly one case in three turns the classifier
    // on, sampling the cold-fraction ceiling and the EC geometry. New
    // dimensions draw *after* every pre-existing one, so a given
    // (seed, case) still replays the same base configuration.
    if rng.next_u64().is_multiple_of(3) {
        let cold_fraction_target = pick(rng, &[0.3, 0.5, 0.8]);
        let (ec_k, ec_m) = pick(rng, &[(4usize, 2usize), (6, 3)]);
        cfg = cfg.with_tiering(TieringConfig {
            cold_fraction_target,
            ec_k,
            ec_m,
            ..TieringConfig::default()
        });
    }

    // Admission gate: roughly one case in three submits every deferrable
    // job to the α-confidence gate first, sampling the confidence level
    // and the defer budget. Drawn after the tiering dimension so a given
    // (seed, case) still replays the same base configuration.
    if rng.next_u64().is_multiple_of(3) {
        let alpha = pick(rng, &[0.5, 0.8, 0.9, 0.99]);
        let defer_slots = range_u64(rng, 0, 6) as usize;
        cfg = cfg.with_admission(AdmissionConfig { alpha, defer_slots });
    }

    // Arrival transport: roughly one case in four replays the workload
    // through the in-process event feed instead of the batch cursor — the
    // byte-identity contract means everything downstream must be unable
    // to tell the difference, which the auditor now checks at fuzz scale.
    if rng.next_u64().is_multiple_of(4) {
        cfg = cfg.with_feed_arrivals(true);
    }
    cfg
}

/// Compact label of the sampled dimensions, for failure diagnostics.
pub fn describe(cfg: &ExperimentConfig) -> String {
    let chem = match &cfg.energy.battery {
        None => "none".to_string(),
        Some(b) => format!("{:.0}kWh", b.capacity_wh / 1000.0),
    };
    let tiering = match &cfg.tiering {
        None => "off".to_string(),
        Some(t) => format!("{:.1}/{}+{}", t.cold_fraction_target, t.ec_k, t.ec_m),
    };
    let admission = match &cfg.admission {
        None => "off".to_string(),
        Some(a) => format!("α{}/d{}", a.alpha, a.defer_slots),
    };
    format!(
        "seed={} slots={} sites={} policy={} battery={} discharge={:?} forecast={:?} wan={} failures={} streams={} site_par={} tiering={} admission={} feed={}",
        cfg.seed,
        cfg.slots,
        cfg.n_sites(),
        cfg.policy.label(),
        chem,
        cfg.energy.discharge,
        cfg.energy.forecast,
        cfg.wan_cost_per_unit,
        cfg.failures.is_some(),
        cfg.workload.interactive.streams,
        cfg.site_parallel,
        tiering,
        admission,
        cfg.feed_arrivals,
    )
}

/// Run one configuration under the conservation auditor: per-slot
/// observer checks plus the post-run deep audit, then the normal report.
pub fn run_audited(cfg: &ExperimentConfig) -> (RunReport, AuditReport) {
    let sim = Simulation::builder(cfg).build().unwrap_or_else(|e| panic!("{e}"));
    let (sim, audit) = sim.run_audited();
    (sim.into_report(), audit)
}

/// In-memory `io::Write` sink that outlives the observer holding it.
#[derive(Clone, Default)]
struct SharedBuf(std::sync::Arc<std::sync::Mutex<Vec<u8>>>);

impl SharedBuf {
    fn contents(&self) -> Vec<u8> {
        self.0.lock().expect("buffer lock").clone()
    }
}

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("buffer lock").extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Outcome of a split replay of one configuration: run it cold, then run
/// it again interrupted at `fork_slot` (snapshot → JSON round-trip →
/// restore) with the tail under the conservation auditor.
pub struct SplitRun {
    /// Full JSONL trace of the uninterrupted run.
    pub cold_trace: Vec<u8>,
    /// Prefix trace + resumed trace, stitched at the fork.
    pub stitched_trace: Vec<u8>,
    /// Report of the uninterrupted run.
    pub cold_report: RunReport,
    /// Report of the checkpoint/restore run.
    pub resumed_report: RunReport,
    /// Audit of the resumed half (per-slot + post-run deep audit).
    pub resumed_audit: AuditReport,
}

/// Replay `cfg` split at `fork_slot`: simulate a prefix, checkpoint it
/// through the serialized form, restore, and finish under the auditor.
/// The snapshot contract says the interruption must be invisible —
/// `stitched_trace == cold_trace` byte for byte and the reports equal —
/// which the fuzz harness asserts across the whole configuration space.
pub fn run_split(cfg: &ExperimentConfig, fork_slot: usize) -> SplitRun {
    use greenmatch::observe::JsonlTraceObserver;
    use greenmatch::Snapshot;

    assert!(fork_slot <= cfg.slots, "fork slot beyond the horizon");

    let cold_buf = SharedBuf::default();
    let cold_report = Simulation::builder(cfg)
        .observer(Box::new(JsonlTraceObserver::new(cold_buf.clone())))
        .build()
        .unwrap_or_else(|e| panic!("{e}"))
        .run_to_end();

    let prefix_buf = SharedBuf::default();
    let mut sim = Simulation::builder(cfg)
        .observer(Box::new(JsonlTraceObserver::new(prefix_buf.clone())))
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    for _ in 0..fork_slot {
        sim.step().expect("fork slot within the horizon");
    }
    let snap = Snapshot::from_json(&sim.snapshot().to_json())
        .unwrap_or_else(|e| panic!("snapshot round-trip: {e}"));
    drop(sim);

    let tail_buf = SharedBuf::default();
    let sim = Simulation::builder(cfg)
        .resume_from(&snap)
        .observer(Box::new(JsonlTraceObserver::new(tail_buf.clone())))
        .build()
        .unwrap_or_else(|e| panic!("{e}"));
    let (sim, resumed_audit) = sim.run_audited();
    let resumed_report = sim.into_report();

    let mut stitched = prefix_buf.contents();
    stitched.extend_from_slice(&tail_buf.contents());
    SplitRun {
        cold_trace: cold_buf.contents(),
        stitched_trace: stitched,
        cold_report,
        resumed_report,
        resumed_audit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_case() {
        let mut a = TestRng::for_case("fuzzgen", 7);
        let mut b = TestRng::for_case("fuzzgen", 7);
        let ca = fuzz_config(&mut a);
        let cb = fuzz_config(&mut b);
        assert_eq!(describe(&ca), describe(&cb));
        assert_eq!(ca.seed, cb.seed);
    }

    #[test]
    fn generator_covers_the_multi_site_space() {
        let mut multi = 0;
        let mut with_battery = 0;
        let mut with_failures = 0;
        let mut respread = 0;
        let mut sequential = 0;
        let mut tiered = 0;
        let mut big_stripe = 0;
        let mut gated = 0;
        let mut fed = 0;
        for case in 0..64 {
            let mut rng = TestRng::for_case("fuzzgen-cover", case);
            let cfg = fuzz_config(&mut rng);
            cfg.validate_sites().expect("generated configs are coherent");
            multi += (cfg.n_sites() > 1) as u32;
            with_battery += cfg.energy.battery.is_some() as u32;
            with_failures += cfg.failures.is_some() as u32;
            respread += (cfg.workload.interactive.streams != 100) as u32;
            sequential += (!cfg.site_parallel) as u32;
            tiered += cfg.tiering.is_some() as u32;
            big_stripe += cfg.tiering.is_some_and(|t| t.ec_k == 6) as u32;
            gated += cfg.admission.is_some() as u32;
            fed += cfg.feed_arrivals as u32;
        }
        assert!(multi > 10, "multi-site configs must be common ({multi}/64)");
        assert!(with_battery > 20, "battery configs must be common ({with_battery}/64)");
        assert!(with_failures > 5, "failure configs must appear ({with_failures}/64)");
        assert!(respread > 5, "off-preset stream counts must appear ({respread}/64)");
        assert!(sequential > 5, "sequential-phase configs must appear ({sequential}/64)");
        assert!(tiered > 5, "tiered configs must appear ({tiered}/64)");
        assert!(big_stripe > 0, "both EC geometries must appear ({big_stripe}/64)");
        assert!(gated > 5, "admission-gated configs must appear ({gated}/64)");
        assert!(fed > 5, "feed-driven configs must appear ({fed}/64)");
    }

    #[test]
    fn split_replay_is_invisible_on_a_sampled_case() {
        let mut rng = TestRng::for_case("fuzzgen-split", 1);
        let cfg = fuzz_config(&mut rng);
        let fork = cfg.slots / 2;
        let split = run_split(&cfg, fork);
        assert!(split.resumed_audit.is_clean(), "[{}]: {:?}", describe(&cfg), split.resumed_audit);
        assert_eq!(split.stitched_trace, split.cold_trace, "[{}]", describe(&cfg));
    }

    #[test]
    fn sampled_cases_run_clean_under_the_auditor() {
        for case in 0..6 {
            let mut rng = TestRng::for_case("fuzzgen-smoke", case);
            let cfg = fuzz_config(&mut rng);
            let (_, audit) = run_audited(&cfg);
            assert!(audit.is_clean(), "case {case} [{}]: {:?}", describe(&cfg), audit.violations);
        }
    }
}
