//! Admission-control experiment: the goodput-vs-violation frontier.
//!
//! Every configuration faces the identical arrival stream under an
//! imperfect forecaster and a supply-constrained site (an eighth of the
//! default PV, no battery — see [`scarce_cfg`]); the gated runs
//! additionally pass each deferrable job through the α-confidence
//! admission gate before it can reach the matcher. Tightening α shrinks
//! the green lower band the gate trusts, so the gate turns away more work
//! — trading goodput (bytes completed) for lower brown draw and a
//! violation rate that never rises (only covered work is admitted). The
//! ungated baseline anchors the frontier's permissive end.

use super::base::{medium_cfg, thin, DEFAULT_AREA_M2};
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, Table};
use greenmatch::config::{AdmissionConfig, ExperimentConfig, ForecastKind, SourceKind};
use greenmatch::policy::PolicyKind;
use greenmatch::report::AdmissionReport;

const GIB: f64 = (1u64 << 30) as f64;

/// The medium scenario made supply-constrained: an eighth of the default
/// PV and no battery. Under the default sizing the green lower band
/// covers the whole batch population at any α — the gate is an open door
/// and the frontier degenerates to a point. Scarcity is what gives the
/// gate a decision to make.
pub fn scarce_cfg(ctx: &ExpContext) -> ExperimentConfig {
    let mut cfg = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 })
        .with_forecast(ForecastKind::Noisy { cv: 0.3 });
    if let SourceKind::Solar { area_m2, .. } = &mut cfg.energy.source {
        *area_m2 = DEFAULT_AREA_M2 / 8.0;
    }
    cfg.energy.battery = None;
    cfg
}

/// The `admission` experiment: ungated baseline vs the α-sweep of the
/// gate, under the noisy-oracle and EWMA forecasters.
pub fn admission(ctx: &ExpContext) -> String {
    let alphas: Vec<f64> = thin(&[0.5f64, 0.8, 0.9, 0.99], ctx.is_quick());
    let forecasters: &[(&str, ForecastKind)] =
        &[("noisy", ForecastKind::Noisy { cv: 0.3 }), ("ewma", ForecastKind::Ewma { alpha: 0.3 })];

    let mut configs = Vec::new();
    for (ftag, fk) in forecasters {
        configs.push((format!("{ftag}-off"), scarce_cfg(ctx).with_forecast(*fk)));
        for &alpha in &alphas {
            let cfg = scarce_cfg(ctx)
                .with_forecast(*fk)
                .with_admission(AdmissionConfig { alpha, defer_slots: 4 });
            configs.push((format!("{ftag}-a{:.0}", alpha * 100.0), cfg));
        }
    }
    let results = run_and_archive(ctx, "admission", configs);

    let mut t = Table::new(vec![
        "config",
        "accepted",
        "rejected",
        "held",
        "goodput_gib",
        "violation_rate",
        "brown_kwh",
        "p99_ms",
    ]);
    let mut csv = String::from(
        "config,accepted,rejected,pending_at_end,goodput_gib,violation_rate,brown_kwh,p99_ms\n",
    );
    for (tag, r) in &results {
        let adm = r.admission.clone().unwrap_or(AdmissionReport {
            accepted: r.batch.jobs_submitted as u64,
            ..AdmissionReport::default()
        });
        let goodput_gib = r.batch.bytes_completed as f64 / GIB;
        t.row(vec![
            tag.clone(),
            adm.accepted.to_string(),
            adm.rejected.to_string(),
            adm.pending_at_end.to_string(),
            f1(goodput_gib),
            f3(r.batch.miss_rate()),
            f1(r.brown_kwh),
            f1(r.latency.p99_s * 1e3),
        ]);
        csv.push_str(&format!(
            "{tag},{},{},{},{:.1},{:.4},{:.3},{:.2}\n",
            adm.accepted,
            adm.rejected,
            adm.pending_at_end,
            goodput_gib,
            r.batch.miss_rate(),
            r.brown_kwh,
            r.latency.p99_s * 1e3
        ));
    }
    ctx.write("admission.md", &t.to_markdown());
    ctx.write("admission.csv", &csv);

    let base = &results.iter().find(|(t, _)| t == "noisy-off").expect("baseline run").1;
    let tight = &results.last().expect("at least one gated run").1;
    let tight_adm = tight.admission.clone().unwrap_or_default();
    format!(
        "Admission control under scarce supply: ungated with a noisy forecast, {} of {} \
         jobs complete at a {:.1}% violation rate and {:.1} kWh of brown draw. Raising the \
         gate's confidence α turns away work the green lower band cannot cover ({} \
         rejected, {} still held at the tightest setting), tracing a goodput-vs-violation \
         frontier — brown draw and the violation rate fall monotonically in α because only \
         covered work is ever admitted. Full frontier in admission.csv.",
        base.batch.jobs_completed,
        base.batch.jobs_submitted,
        base.batch.miss_rate() * 100.0,
        base.brown_kwh,
        tight_adm.rejected,
        tight_adm.pending_at_end,
    )
}
