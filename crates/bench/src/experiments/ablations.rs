//! Ablations of the design choices DESIGN.md §6 calls out.

use super::base::medium_cfg;
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, Table};
use gm_sim::time::SimDuration;
use gm_sim::SlotClock;
use gm_storage::LayoutKind;
use greenmatch::policy::PolicyKind;

/// Planning-window ablation: GreenMatch with H ∈ {1, 6, 24, 48}. H = 1
/// degenerates to greedy one-slot matching; the gap to H = 24 is the value
/// of lookahead.
pub fn matcher_window(ctx: &ExpContext) -> String {
    let horizons = [1usize, 6, 24, 48];
    // Battery-free AND on a persistence forecast: an adequate ESD bridges
    // whatever the planner misses, and with an oracle *nowcast* the
    // hourly re-planning loop makes window length irrelevant (slot-0
    // decisions depend only on slot-0 information — a structural property
    // this ablation documents). Persistence makes the window consequential:
    // a short window cannot see tomorrow's (predicted) sun at all.
    let configs: Vec<(String, _)> = horizons
        .iter()
        .map(|&h| {
            let mut cfg = super::base::medium_cfg_no_battery(
                ctx,
                PolicyKind::GreenMatchWindow { delay_fraction: 1.0, horizon: h },
            );
            cfg.energy.forecast = greenmatch::config::ForecastKind::Persistence;
            (format!("H{h}"), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-matcher", configs);

    let mut t =
        Table::new(vec!["horizon", "brown_kwh", "curtailed_kwh", "losses_kwh", "miss_rate"]);
    for (tag, r) in &results {
        t.row(vec![
            tag.trim_start_matches('H').to_string(),
            f3(r.brown_kwh),
            f3(r.curtailed_kwh),
            f3(r.total_losses_kwh()),
            f3(r.batch.miss_rate()),
        ]);
    }
    ctx.write("ablate_matcher_window.csv", &t.to_csv());
    let h1 = results[0].1.brown_kwh;
    let h24 = results[2].1.brown_kwh;
    format!("ablate-matcher: brown H1 {h1:.1} vs H24 {h24:.1} kWh (lookahead value)")
}

/// Layout ablation: the gear layout vs random / chained / copyset under
/// the same GreenMatch policy. Non-gear layouts orphan reads when gears
/// power down, forcing availability spin-ups and latency stalls.
pub fn layout(ctx: &ExpContext) -> String {
    let layouts = [
        ("gear", LayoutKind::Gear),
        ("random", LayoutKind::Random),
        ("chained", LayoutKind::Chained),
        ("copyset", LayoutKind::Copyset),
    ];
    let configs: Vec<(String, _)> = layouts
        .iter()
        .map(|(name, kind)| {
            let mut cfg = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 });
            cfg.cluster.layout = *kind;
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-layout", configs);

    let mut t = Table::new(vec![
        "layout",
        "brown_kwh",
        "p99_ms",
        "max_latency_s",
        "forced_spinups",
        "spinups",
    ]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            f3(r.brown_kwh),
            f1(r.latency.p99_s * 1e3),
            f1(r.latency.max_s),
            r.forced_spinups.to_string(),
            r.spinups.to_string(),
        ]);
    }
    ctx.write("ablate_layout.csv", &t.to_csv());
    let gear_forced = results[0].1.forced_spinups;
    let rand_forced = results[1].1.forced_spinups;
    format!("ablate-layout: forced spin-ups gear {gear_forced} vs random {rand_forced}")
}

/// Failure-injection study: the policies under an (accelerated) disk
/// failure process. Renewable-aware scheduling treats rebuild as
/// deferrable work, but gear cycling adds start-stop wear, so aggressive
/// power-gating buys its energy savings with extra failures — the
/// reliability face of the energy trade-off.
pub fn failures(ctx: &ExpContext) -> String {
    // AFR accelerated ×50 so a one-week horizon produces a usable signal;
    // the *comparison* across policies is what matters.
    let fail_spec =
        gm_storage::FailureSpec { afr: 1.5, standby_factor: 0.5, spinup_wear_hours: 10.0 };
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("esd-only", PolicyKind::AllOn),
        ("power-prop", PolicyKind::PowerProportional),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    ];
    let configs: Vec<(String, _)> = policies
        .iter()
        .map(|(name, policy)| {
            let mut cfg = medium_cfg(ctx, *policy);
            cfg.failures = Some(fail_spec);
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-failures", configs);

    let mut t = Table::new(vec![
        "policy",
        "brown_kwh",
        "failures",
        "repairs_done",
        "lost_objects",
        "degraded_reads",
        "rebuild_tb",
        "spinups",
    ]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            f3(r.brown_kwh),
            r.failures.to_string(),
            r.repairs_completed.to_string(),
            r.lost_objects.to_string(),
            r.degraded_reads.to_string(),
            format!("{:.2}", r.rebuild_bytes as f64 / 1e12),
            r.spinups.to_string(),
        ]);
    }
    ctx.write("ablate_failures.csv", &t.to_csv());
    let allon = results[0].1.failures;
    let gm = results[3].1.failures;
    format!(
        "ablate-failures: esd-only {} failures vs greenmatch {} (cycling wear), losses {} vs {}",
        allon, gm, results[0].1.lost_objects, results[3].1.lost_objects
    )
}

/// Battery discharge-timing ablation (Eager vs PeakOnly vs Reserve) under
/// the ESD-only policy, where the battery does all the matching: timing
/// changes *when* brown is drawn, so cost and carbon move even where total
/// brown energy barely does.
pub fn discharge(ctx: &ExpContext) -> String {
    use greenmatch::config::DischargeStrategy;
    let strategies: Vec<(&str, DischargeStrategy)> = vec![
        ("eager", DischargeStrategy::Eager),
        ("peak-only", DischargeStrategy::PeakOnly),
        ("reserve25", DischargeStrategy::Reserve(0.25)),
        ("reserve50", DischargeStrategy::Reserve(0.50)),
    ];
    let configs: Vec<(String, _)> = strategies
        .iter()
        .map(|(name, strat)| {
            let mut cfg = medium_cfg(ctx, PolicyKind::AllOn);
            cfg.energy.discharge = *strat;
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-discharge", configs);

    let mut t = Table::new(vec![
        "strategy",
        "brown_kwh",
        "battery_out_kwh",
        "grid_usd",
        "carbon_kg",
        "battery_cycles",
    ]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            f3(r.brown_kwh),
            f3(r.battery_out_kwh),
            format!("{:.2}", r.cost_dollars),
            f1(r.carbon_kg),
            format!("{:.2}", r.battery_cycles),
        ]);
    }
    ctx.write("ablate_discharge.csv", &t.to_csv());
    format!(
        "ablate-discharge: grid cost eager ${:.2} vs peak-only ${:.2}; carbon {:.1} vs {:.1} kg",
        results[0].1.cost_dollars,
        results[1].1.cost_dollars,
        results[0].1.carbon_kg,
        results[1].1.carbon_kg
    )
}

/// Read-cache ablation: RAM absorbing hot reads changes both the latency
/// picture (hits bypass media and spin-up stalls) and, mildly, the energy
/// picture (fewer disk busy-seconds).
pub fn cache(ctx: &ExpContext) -> String {
    let sizes: Vec<(&str, u64)> =
        vec![("none", 0), ("32GiB", 32 << 30), ("128GiB", 128 << 30), ("512GiB", 512 << 30)];
    let configs: Vec<(String, _)> = sizes
        .iter()
        .map(|(name, bytes)| {
            let mut cfg = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 });
            cfg.cluster.cache_bytes = *bytes;
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-cache", configs);

    let mut t = Table::new(vec!["cache", "hit_ratio", "p50_ms", "p99_ms", "brown_kwh", "load_kwh"]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            f3(r.cache_hit_ratio),
            f3(r.latency.p50_s * 1e3),
            f3(r.latency.p99_s * 1e3),
            f3(r.brown_kwh),
            f1(r.load_kwh),
        ]);
    }
    ctx.write("ablate_cache.csv", &t.to_csv());
    format!(
        "ablate-cache: hit ratio none {:.2} → 512GiB {:.2}; p50 {:.1} → {:.1} ms",
        results[0].1.cache_hit_ratio,
        results[3].1.cache_hit_ratio,
        results[0].1.latency.p50_s * 1e3,
        results[3].1.latency.p50_s * 1e3
    )
}

/// Slot-length ablation: 15 min vs 1 h vs 4 h decision granularity over the
/// same 7-day horizon.
pub fn slot_length(ctx: &ExpContext) -> String {
    let widths: [(&str, SimDuration); 3] = [
        ("15min", SimDuration::from_mins(15)),
        ("1h", SimDuration::from_hours(1)),
        ("4h", SimDuration::from_hours(4)),
    ];
    let configs: Vec<(String, _)> = widths
        .iter()
        .map(|(name, w)| {
            let mut cfg = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 });
            cfg.clock = SlotClock::new(*w);
            cfg.slots = (SimDuration::from_days(7).0 / w.0) as usize;
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "ablate-slot", configs);

    let mut t =
        Table::new(vec!["slot", "slots", "brown_kwh", "curtailed_kwh", "miss_rate", "spinups"]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            r.slots.to_string(),
            f3(r.brown_kwh),
            f3(r.curtailed_kwh),
            f3(r.batch.miss_rate()),
            r.spinups.to_string(),
        ]);
    }
    ctx.write("ablate_slot_length.csv", &t.to_csv());
    format!(
        "ablate-slot: brown 15min {:.1} / 1h {:.1} / 4h {:.1} kWh",
        results[0].1.brown_kwh, results[1].1.brown_kwh, results[2].1.brown_kwh
    )
}
