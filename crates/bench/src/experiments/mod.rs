//! The reconstructed evaluation suite (DESIGN.md §4).
//!
//! Each experiment is a function `fn(&ExpContext) -> String` that writes
//! its CSV/markdown outputs and returns a one-paragraph human summary.
//! [`registry`] maps CLI identifiers to those functions.

pub mod ablations;
pub mod admission;
pub mod base;
pub mod figures;
pub mod geo;
pub mod tables;
pub mod tiering;
pub mod whatif;

use crate::runner::ExpContext;

/// An experiment entry: id, description, runner.
pub struct Experiment {
    /// CLI identifier (e.g. `fig3`).
    pub id: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Runner.
    pub run: fn(&ExpContext) -> String,
}

/// All experiments, in presentation order.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            about: "Renewable production profiles over the week",
            run: figures::fig1,
        },
        Experiment {
            id: "fig2",
            about: "Cluster draw vs renewable supply timeline per policy",
            run: figures::fig2,
        },
        Experiment {
            id: "fig3",
            about: "Brown energy vs solar panel area per policy",
            run: figures::fig3,
        },
        Experiment {
            id: "fig4",
            about: "Brown energy vs battery capacity per policy",
            run: figures::fig4,
        },
        Experiment {
            id: "fig5",
            about: "Renewable energy lost vs battery capacity",
            run: figures::fig5,
        },
        Experiment { id: "fig6", about: "Loss breakdown vs delay fraction", run: figures::fig6 },
        Experiment {
            id: "fig7",
            about: "Deadline misses and latency vs delay fraction",
            run: figures::fig7,
        },
        Experiment {
            id: "fig8",
            about: "Gear level and green coverage over time",
            run: figures::fig8,
        },
        Experiment { id: "table1", about: "Model parameters", run: tables::table1 },
        Experiment {
            id: "table2",
            about: "Policy summary on the default configuration",
            run: tables::table2,
        },
        Experiment { id: "table3", about: "Sensitivity to renewable source", run: tables::table3 },
        Experiment { id: "table4", about: "Sensitivity to forecast quality", run: tables::table4 },
        Experiment {
            id: "table5",
            about: "Weekly operating economics (grid + battery wear)",
            run: tables::table5,
        },
        Experiment {
            id: "table6",
            about: "Carbon-aware brown pricing vs plain GreenMatch",
            run: tables::table6,
        },
        Experiment {
            id: "geo",
            about: "One site vs three longitude-offset sites across WAN costs",
            run: geo::geo,
        },
        Experiment {
            id: "ablate-matcher",
            about: "Planning-window ablation of the matcher",
            run: ablations::matcher_window,
        },
        Experiment {
            id: "ablate-failures",
            about: "Failure injection: reliability face of power-gating",
            run: ablations::failures,
        },
        Experiment {
            id: "ablate-layout",
            about: "Data-layout ablation under gear scheduling",
            run: ablations::layout,
        },
        Experiment {
            id: "ablate-slot",
            about: "Slot-length ablation",
            run: ablations::slot_length,
        },
        Experiment {
            id: "ablate-cache",
            about: "Read-cache ablation (latency + energy)",
            run: ablations::cache,
        },
        Experiment {
            id: "ablate-discharge",
            about: "Battery discharge-timing ablation",
            run: ablations::discharge,
        },
        Experiment {
            id: "admission",
            about: "Admission-gate goodput-vs-violation frontier over alpha x forecaster",
            run: admission::admission,
        },
        Experiment {
            id: "tiering",
            about:
                "Temperature tiering: replication vs erasure coding across cold-fraction targets",
            run: tiering::tiering,
        },
        Experiment {
            id: "whatif",
            about: "Mid-week policy/battery what-ifs forked from one checkpoint",
            run: whatif::whatif,
        },
    ]
}

/// Find an experiment by id.
pub fn find(id: &str) -> Option<Experiment> {
    registry().into_iter().find(|e| e.id == id)
}
