//! Mid-run what-if analysis on the forked sweep engine.
//!
//! Questions of the form "we ran GreenMatch for half the week — what if
//! we switched policy (or resized the battery) *now*?" cannot be asked
//! with whole-run sweeps: every config change replays from slot 0 and the
//! comparison conflates the prefix. The snapshot/branch engine asks them
//! directly: simulate the shared prefix once, checkpoint at the fork
//! slot, and resume every variant from identical mid-run state, so the
//! branches differ *only* in what happens after the fork.

use super::base::medium_cfg;
use crate::runner::{run_branched, BranchSweep, ExpContext};
use crate::table::{f3, Table};
use greenmatch::policy::PolicyKind;

/// Mid-week fork of the GreenMatch baseline into policy and battery
/// what-ifs. All branches share the first half-week byte-for-byte, so
/// the brown-energy column reads as "cost of the remaining half under
/// each alternative, given the same inherited state".
pub fn whatif(ctx: &ExpContext) -> String {
    let base = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 });
    let fork_slot = base.slots / 2;

    let mut variants: Vec<(String, _)> = vec![
        ("keep-greenmatch".to_string(), base.clone()),
        ("switch-all-on".to_string(), base.clone().with_policy(PolicyKind::AllOn)),
        ("switch-power-prop".to_string(), base.clone().with_policy(PolicyKind::PowerProportional)),
        ("switch-greedy-green".to_string(), base.clone().with_policy(PolicyKind::GreedyGreen)),
        (
            "switch-greenmatch30".to_string(),
            base.clone().with_policy(PolicyKind::GreenMatch { delay_fraction: 0.3 }),
        ),
        ("drop-battery".to_string(), base.clone().with_battery(None)),
    ];
    if ctx.is_quick() {
        variants.truncate(3);
    }

    for (tag, cfg) in &variants {
        ctx.archive_config(&format!("whatif-{tag}"), cfg);
    }
    let results = run_branched(vec![BranchSweep { base: base.clone(), fork_slot, variants }]);

    let mut t =
        Table::new(vec!["branch", "brown_kwh", "green_direct_kwh", "curtailed_kwh", "miss_rate"]);
    for (tag, r) in &results {
        t.row(vec![
            tag.clone(),
            f3(r.brown_kwh),
            f3(r.green_direct_kwh),
            f3(r.curtailed_kwh),
            f3(r.batch.miss_rate()),
        ]);
    }
    ctx.write("whatif_fork.csv", &t.to_csv());

    let keep = results[0].1.brown_kwh;
    let worst = results.iter().map(|(_, r)| r.brown_kwh).fold(f64::NEG_INFINITY, f64::max);
    format!(
        "whatif: forked at slot {fork_slot}; staying on GreenMatch ends the week at \
         {keep:.1} kWh brown vs {worst:.1} kWh for the worst branch"
    )
}
