//! Shared configuration builders for the evaluation suite.

use crate::runner::ExpContext;
use gm_energy::battery::BatterySpec;
use gm_energy::grid::Grid;
use gm_energy::solar::SolarProfile;
use gm_sim::SlotClock;
use gm_storage::ClusterSpec;
use gm_workload::trace::WorkloadSpec;
use greenmatch::config::{EnergyConfig, ExperimentConfig, ForecastKind, SourceKind};
use greenmatch::policy::PolicyKind;

/// Default PV area (m²) for the "solar is not sufficient" experiments
/// (Fig 4–8, tables): sized at roughly the all-on weekly load.
pub const DEFAULT_AREA_M2: f64 = 120.0;
/// Default LI battery (Wh) where one is configured.
pub const DEFAULT_BATTERY_WH: f64 = 40_000.0;

/// The medium data center baseline configuration, scaled by `ctx.scale`.
pub fn medium_cfg(ctx: &ExpContext, policy: PolicyKind) -> ExperimentConfig {
    let cluster = ClusterSpec::medium_dc();
    let workload = WorkloadSpec::medium_week(cluster.objects).scaled(ctx.scale);
    ExperimentConfig {
        cluster,
        workload,
        energy: EnergyConfig {
            source: SourceKind::Solar {
                area_m2: DEFAULT_AREA_M2,
                profile: SolarProfile::SunnySummer,
            },
            battery: Some(BatterySpec::lithium_ion(DEFAULT_BATTERY_WH)),
            grid: Grid::typical_eu(),
            forecast: ForecastKind::Oracle,
            discharge: Default::default(),
        },
        policy,
        failures: None,
        seed: ctx.seed,
        slots: 7 * 24,
        clock: SlotClock::hourly(),
        sites: Vec::new(),
        wan_cost_per_unit: 0,
        matcher_warm_start: true,
        site_parallel: true,
        tiering: None,
        admission: None,
        feed_arrivals: false,
    }
}

/// Same configuration without a battery.
pub fn medium_cfg_no_battery(ctx: &ExpContext, policy: PolicyKind) -> ExperimentConfig {
    let mut cfg = medium_cfg(ctx, policy);
    cfg.energy.battery = None;
    cfg
}

/// Thin a sweep when running quick: keep every other point plus endpoints.
pub fn thin<T: Clone>(points: &[T], quick: bool) -> Vec<T> {
    if !quick || points.len() <= 3 {
        return points.to_vec();
    }
    let last = points.len() - 1;
    points
        .iter()
        .enumerate()
        .filter(|(i, _)| *i == 0 || *i == last || i % 2 == 0)
        .map(|(_, p)| p.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ExpContext {
        ExpContext::new(std::env::temp_dir().join("gm-base-test"), 1, 1.0)
    }

    #[test]
    fn medium_cfg_is_consistent() {
        let cfg = medium_cfg(&ctx(), PolicyKind::AllOn);
        assert_eq!(cfg.slots, 168);
        assert_eq!(cfg.workload.interactive.objects, cfg.cluster.objects);
        assert!(cfg.energy.battery.is_some());
        assert!(medium_cfg_no_battery(&ctx(), PolicyKind::AllOn).energy.battery.is_none());
    }

    #[test]
    fn scale_shrinks_workload() {
        let full = medium_cfg(&ctx(), PolicyKind::AllOn);
        let quarter_ctx = ExpContext::new(std::env::temp_dir().join("gm-base-test"), 1, 0.25);
        let quarter = medium_cfg(&quarter_ctx, PolicyKind::AllOn);
        assert!(quarter.workload.interactive.streams < full.workload.interactive.streams);
        assert!(quarter.workload.batch.jobs < full.workload.batch.jobs);
    }

    #[test]
    fn thinning_keeps_endpoints() {
        let pts: Vec<i32> = (0..9).collect();
        let t = thin(&pts, true);
        assert_eq!(*t.first().unwrap(), 0);
        assert_eq!(*t.last().unwrap(), 8);
        assert!(t.len() < pts.len());
        assert_eq!(thin(&pts, false), pts);
        assert_eq!(thin(&pts[..2], true).len(), 2);
    }
}
