//! Figure-like experiments (R-Fig1 … R-Fig8).

use super::base::{medium_cfg, medium_cfg_no_battery, thin, DEFAULT_AREA_M2};
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, Table};
use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use gm_energy::wind::WindProfile;
use gm_sim::{RngFactory, SlotClock};
use greenmatch::config::SourceKind;
use greenmatch::policy::PolicyKind;
use greenmatch::report::RunReport;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Cache for sweeps shared between figure pairs (fig4/fig5, fig6/fig7),
/// keyed by (seed, scale-bits) so `all` does not run them twice.
type SweepCache = Mutex<Option<HashMap<(u64, u64, &'static str), Arc<Vec<(String, RunReport)>>>>>;
static CACHE: SweepCache = Mutex::new(None);

fn cached_sweep(
    ctx: &ExpContext,
    name: &'static str,
    build: impl FnOnce() -> Vec<(String, greenmatch::config::ExperimentConfig)>,
) -> Arc<Vec<(String, RunReport)>> {
    let key = (ctx.seed, ctx.scale.to_bits(), name);
    if let Some(hit) = CACHE.lock().unwrap().get_or_insert_with(HashMap::new).get(&key) {
        return hit.clone();
    }
    let results = Arc::new(run_and_archive(ctx, name, build()));
    CACHE.lock().unwrap().get_or_insert_with(HashMap::new).insert(key, results.clone());
    results
}

/// R-Fig1 — renewable production profiles (solar sunny/cloudy/winter at the
/// default area, wind coastal/gusty at a comparable nameplate) per slot.
pub fn fig1(ctx: &ExpContext) -> String {
    let clock = SlotClock::hourly();
    let slots = 7 * 24;
    let rngs = RngFactory::new(ctx.seed);
    let columns: Vec<(&str, SourceKind)> = vec![
        (
            "solar_sunny_w",
            SourceKind::Solar { area_m2: DEFAULT_AREA_M2, profile: SolarProfile::SunnySummer },
        ),
        (
            "solar_cloudy_w",
            SourceKind::Solar { area_m2: DEFAULT_AREA_M2, profile: SolarProfile::CloudySummer },
        ),
        (
            "solar_winter_w",
            SourceKind::Solar { area_m2: DEFAULT_AREA_M2, profile: SolarProfile::Winter },
        ),
        (
            "wind_coastal_w",
            SourceKind::Wind { rated_w: 15_000.0, profile: WindProfile::SteadyCoastal },
        ),
        (
            "wind_gusty_w",
            SourceKind::Wind { rated_w: 15_000.0, profile: WindProfile::GustyContinental },
        ),
    ];
    let traces: Vec<_> =
        columns.iter().map(|(_, src)| src.materialize(clock, slots, &rngs)).collect();

    let mut headers = vec!["slot".to_string(), "hour_of_week".to_string()];
    headers.extend(columns.iter().map(|(n, _)| n.to_string()));
    let mut t = Table::new(headers);
    for s in 0..slots {
        let mut row = vec![s.to_string(), s.to_string()];
        row.extend(traces.iter().map(|tr| f1(tr.get(s))));
        t.row(row);
    }
    ctx.write("fig1_production_profiles.csv", &t.to_csv());

    let weekly: Vec<String> = columns
        .iter()
        .zip(&traces)
        .map(|((n, _), tr)| format!("{n}: {:.1} kWh/week", tr.energy_wh() / 1000.0))
        .collect();
    format!(
        "fig1: wrote {} slots × {} sources. Weekly energy — {}",
        slots,
        columns.len(),
        weekly.join(", ")
    )
}

/// R-Fig2 — cluster draw vs renewable supply timeline for three policies.
pub fn fig2(ctx: &ExpContext) -> String {
    let configs = vec![
        ("esd-only".to_string(), medium_cfg(ctx, PolicyKind::AllOn)),
        ("greedy-green".to_string(), medium_cfg_no_battery(ctx, PolicyKind::GreedyGreen)),
        ("greenmatch".to_string(), medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 })),
    ];
    let results = run_and_archive(ctx, "fig2", configs);

    let mut t = Table::new(vec![
        "policy",
        "slot",
        "green_wh",
        "load_wh",
        "brown_wh",
        "battery_out_wh",
        "curtailed_wh",
        "gears",
    ]);
    for (tag, r) in &results {
        for s in 0..r.slots {
            t.row(vec![
                tag.clone(),
                s.to_string(),
                f1(r.green_series_wh.get(s).copied().unwrap_or(0.0)),
                f1(r.load_series_wh.get(s).copied().unwrap_or(0.0)),
                f1(r.brown_series_wh.get(s).copied().unwrap_or(0.0)),
                f1(r.battery_out_series_wh.get(s).copied().unwrap_or(0.0)),
                f1(r.curtailed_series_wh.get(s).copied().unwrap_or(0.0)),
                r.gears_series.get(s).copied().unwrap_or(0).to_string(),
            ]);
        }
    }
    ctx.write("fig2_timeline.csv", &t.to_csv());

    let summary: Vec<String> =
        results.iter().map(|(tag, r)| format!("{tag} brown {:.1} kWh", r.brown_kwh)).collect();
    format!("fig2: per-slot timeline for 3 policies. {}", summary.join("; "))
}

/// R-Fig3 — brown energy vs solar panel area.
pub fn fig3(ctx: &ExpContext) -> String {
    let areas: Vec<f64> = vec![0.0, 40.0, 80.0, 120.0, 160.0, 200.0, 240.0, 280.0, 320.0, 400.0];
    let areas = thin(&areas, ctx.is_quick());
    // Panel-sizing methodology: the battery variants use an *idealised*
    // oversized ESD (the "assume infinite battery to find the optimal
    // panel dimension" convention), so the area axis alone controls the
    // zero-brown crossing.
    let policies: Vec<(&str, PolicyKind, bool)> = vec![
        ("esd-only", PolicyKind::AllOn, true),
        ("greedy-green", PolicyKind::GreedyGreen, false),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }, false),
        ("greenmatch+esd", PolicyKind::GreenMatch { delay_fraction: 1.0 }, true),
    ];
    let mut configs = Vec::new();
    for &area in &areas {
        for (name, policy, battery) in &policies {
            let mut cfg = medium_cfg_no_battery(ctx, *policy);
            if *battery {
                cfg.energy.battery = Some(BatterySpec::ideal(1.0e9));
            }
            cfg.energy.source =
                SourceKind::Solar { area_m2: area, profile: SolarProfile::SunnySummer };
            configs.push((format!("{name}@{area:.0}m2"), cfg));
        }
    }
    let results = run_and_archive(ctx, "fig3", configs);

    let mut t = Table::new(vec![
        "policy",
        "area_m2",
        "brown_kwh",
        "brown_warm_kwh",
        "green_utilization",
        "load_kwh",
    ]);
    let mut idx = 0;
    for &area in &areas {
        for (name, _, _) in &policies {
            let (_, r) = &results[idx];
            idx += 1;
            t.row(vec![
                name.to_string(),
                f1(area),
                f3(r.brown_kwh),
                f3(r.brown_series_wh.iter().skip(24).sum::<f64>() / 1000.0),
                f3(r.green_utilization),
                f1(r.load_kwh),
            ]);
        }
    }
    ctx.write("fig3_area_sweep.csv", &t.to_csv());

    // Locate each policy's near-zero-brown area. Day 1 is excluded: the
    // battery starts empty, so the first night's draw is a cold-start
    // artefact independent of panel area.
    let warm_brown = |r: &greenmatch::report::RunReport| -> f64 {
        r.brown_series_wh.iter().skip(24).sum::<f64>() / 1000.0
    };
    let mut crossings = Vec::new();
    for (pi, (name, _, _)) in policies.iter().enumerate() {
        let series: Vec<(f64, f64)> = areas
            .iter()
            .enumerate()
            .map(|(ai, &a)| (a, warm_brown(&results[ai * policies.len() + pi].1)))
            .collect();
        let base = series[0].1.max(1e-9);
        let cross = series.iter().find(|(_, b)| *b < base * 0.02).map(|(a, _)| *a);
        crossings.push(match cross {
            Some(a) => format!("{name} ~zero-brown at {a:.0} m²"),
            None => format!("{name} never reaches zero-brown in range"),
        });
    }
    format!(
        "fig3: swept {} areas × {} policies. {}",
        areas.len(),
        policies.len(),
        crossings.join("; ")
    )
}

/// The fig4/fig5 shared sweep: battery capacity × policy.
fn battery_sweep(ctx: &ExpContext) -> Arc<Vec<(String, RunReport)>> {
    cached_sweep(ctx, "fig4", || {
        let sizes_kwh: Vec<f64> = vec![0.0, 10.0, 20.0, 40.0, 60.0, 80.0, 110.0, 140.0, 160.0];
        let sizes = thin(&sizes_kwh, ctx.is_quick());
        let policies: Vec<(&str, PolicyKind)> = vec![
            ("esd-only", PolicyKind::AllOn),
            ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
            ("greenmatch30", PolicyKind::GreenMatch { delay_fraction: 0.3 }),
        ];
        let mut configs = Vec::new();
        for &kwh in &sizes {
            for (name, policy) in &policies {
                let mut cfg = medium_cfg(ctx, *policy);
                cfg.energy.battery = (kwh > 0.0).then(|| BatterySpec::lithium_ion(kwh * 1000.0));
                configs.push((format!("{name}@{kwh:.0}kWh"), cfg));
            }
        }
        configs
    })
}

fn parse_tag(tag: &str) -> (String, f64) {
    let (name, rest) = tag.split_once('@').expect("tag format name@NkWh");
    let kwh: f64 = rest.trim_end_matches("kWh").trim_end_matches("m2").parse().expect("numeric");
    (name.to_string(), kwh)
}

/// R-Fig4 — brown energy vs battery capacity.
pub fn fig4(ctx: &ExpContext) -> String {
    let results = battery_sweep(ctx);
    let mut t = Table::new(vec!["policy", "battery_kwh", "brown_kwh", "battery_out_kwh"]);
    for (tag, r) in results.iter() {
        let (name, kwh) = parse_tag(tag);
        t.row(vec![name, f1(kwh), f3(r.brown_kwh), f3(r.battery_out_kwh)]);
    }
    ctx.write("fig4_battery_sweep.csv", &t.to_csv());

    // Knee: smallest battery within 5% of each policy's best brown figure.
    let mut knees = Vec::new();
    for name in ["esd-only", "greenmatch", "greenmatch30"] {
        let series: Vec<(f64, f64)> = results
            .iter()
            .filter(|(tag, _)| tag.starts_with(name) && parse_tag(tag).0 == name)
            .map(|(tag, r)| (parse_tag(tag).1, r.brown_kwh))
            .collect();
        let best = series.iter().map(|(_, b)| *b).fold(f64::INFINITY, f64::min);
        if let Some((kwh, _)) = series.iter().find(|(_, b)| *b <= best * 1.05 + 0.5) {
            knees.push(format!("{name} knee ≈ {kwh:.0} kWh"));
        }
    }
    format!("fig4: battery sweep done. {}", knees.join("; "))
}

/// R-Fig5 — renewable energy lost (curtailed) vs battery capacity.
pub fn fig5(ctx: &ExpContext) -> String {
    let results = battery_sweep(ctx);
    let mut t = Table::new(vec!["policy", "battery_kwh", "curtailed_kwh", "green_utilization"]);
    for (tag, r) in results.iter() {
        let (name, kwh) = parse_tag(tag);
        t.row(vec![name, f1(kwh), f3(r.curtailed_kwh), f3(r.green_utilization)]);
    }
    ctx.write("fig5_curtailment.csv", &t.to_csv());
    format!("fig5: curtailment series written for {} runs", results.len())
}

/// The fig6/fig7 shared sweep: delay fraction.
fn delay_sweep(ctx: &ExpContext) -> Arc<Vec<(String, RunReport)>> {
    cached_sweep(ctx, "fig6", || {
        let fracs: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let fracs = thin(&fracs, ctx.is_quick());
        fracs
            .iter()
            .map(|&f| {
                let cfg = medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: f });
                (format!("delay@{:.0}", f * 100.0), cfg)
            })
            .collect()
    })
}

/// R-Fig6 — loss breakdown (battery efficiency, self-discharge,
/// curtailment, spin-up, reclaim) vs delay fraction.
pub fn fig6(ctx: &ExpContext) -> String {
    let results = delay_sweep(ctx);
    let mut t = Table::new(vec![
        "delay_pct",
        "battery_eff_loss_kwh",
        "battery_selfdisch_kwh",
        "curtailed_kwh",
        "spinup_overhead_kwh",
        "reclaim_overhead_kwh",
        "total_losses_kwh",
        "brown_kwh",
    ]);
    for (tag, r) in results.iter() {
        let pct = tag.trim_start_matches("delay@").to_string();
        t.row(vec![
            pct,
            f3(r.battery_eff_loss_kwh),
            f3(r.battery_selfdisch_kwh),
            f3(r.curtailed_kwh),
            f3(r.spinup_overhead_kwh),
            f3(r.reclaim_overhead_kwh),
            f3(r.total_losses_kwh()),
            f3(r.brown_kwh),
        ]);
    }
    ctx.write("fig6_loss_breakdown.csv", &t.to_csv());
    let best = results
        .iter()
        .min_by(|a, b| a.1.total_losses_kwh().partial_cmp(&b.1.total_losses_kwh()).unwrap())
        .expect("non-empty sweep");
    format!(
        "fig6: loss breakdown over {} fractions; lowest total losses at {}",
        results.len(),
        best.0
    )
}

/// R-Fig7 — deadline miss rate and interactive latency vs delay fraction.
pub fn fig7(ctx: &ExpContext) -> String {
    let results = delay_sweep(ctx);
    let mut t = Table::new(vec![
        "delay_pct",
        "miss_rate",
        "p50_ms",
        "p99_ms",
        "jobs_done",
        "jobs_submitted",
    ]);
    for (tag, r) in results.iter() {
        t.row(vec![
            tag.trim_start_matches("delay@").to_string(),
            f3(r.batch.miss_rate()),
            f3(r.latency.p50_s * 1e3),
            f3(r.latency.p99_s * 1e3),
            r.batch.jobs_completed.to_string(),
            r.batch.jobs_submitted.to_string(),
        ]);
    }
    ctx.write("fig7_deadlines_latency.csv", &t.to_csv());
    let worst = results
        .iter()
        .max_by(|a, b| a.1.batch.miss_rate().partial_cmp(&b.1.batch.miss_rate()).unwrap())
        .expect("non-empty sweep");
    format!(
        "fig7: miss/latency over {} fractions; worst miss rate {:.2}% at {}",
        results.len(),
        worst.1.batch.miss_rate() * 100.0,
        worst.0
    )
}

/// R-Fig8 — gear level and green coverage over time for GreenMatch.
pub fn fig8(ctx: &ExpContext) -> String {
    let configs = vec![(
        "greenmatch".to_string(),
        medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    )];
    let results = run_and_archive(ctx, "fig8", configs);
    let (_, r) = &results[0];

    let mut t = Table::new(vec!["slot", "gears", "green_wh", "load_wh", "brown_wh", "coverage"]);
    for s in 0..r.slots {
        let load = r.load_series_wh[s].max(1e-9);
        let brown = r.brown_series_wh[s];
        t.row(vec![
            s.to_string(),
            r.gears_series[s].to_string(),
            f1(r.green_series_wh[s]),
            f1(r.load_series_wh[s]),
            f1(brown),
            f3(1.0 - brown / load),
        ]);
    }
    ctx.write("fig8_gears_timeline.csv", &t.to_csv());

    let gear_hours: usize = r.gears_series.iter().sum();
    let max_gear_hours = 3 * r.slots;
    format!(
        "fig8: greenmatch used {}/{} gear-hours ({:.0}%), overall green coverage {:.1}%",
        gear_hours,
        max_gear_hours,
        gear_hours as f64 / max_gear_hours as f64 * 100.0,
        r.green_coverage * 100.0
    )
}
