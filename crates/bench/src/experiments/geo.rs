//! Geo-distribution experiment: one big site vs three longitude-offset
//! sites at equal total capacity.
//!
//! The single-site configuration concentrates 36 servers and the whole PV
//! field at one location; the three-site configurations split the same
//! hardware into 12-server sites whose solar fields peak 8 hours apart
//! (offset longitudes), optionally replacing the third solar field with a
//! wind-heavy site. The WAN sweep prices cross-site placement from free to
//! ruinous, bracketing when follow-the-sun scheduling pays.

use super::base::thin;
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, Table};
use gm_energy::solar::SolarProfile;
use gm_energy::wind::WindProfile;
use gm_storage::{ClusterSpec, Topology};
use gm_workload::trace::WorkloadSpec;
use greenmatch::config::{ExperimentConfig, ForecastKind, SiteConfig, SourceKind};
use greenmatch::policy::PolicyKind;

/// Total PV area (m²) across all sites. Deliberately scarce relative to
/// batch demand: with abundant green the single site absorbs every job in
/// its own daylight surplus and geo-distribution has nothing to move, so
/// the experiment probes the regime where green hours are the bottleneck.
pub const GEO_AREA_M2: f64 = 30.0;
/// Rated power (W) of the wind-heavy site, sized at rating parity with the
/// 10 m² solar field it replaces (25 kW ↔ 120 m² in R-Table3).
pub const GEO_WIND_RATED_W: f64 = 2_083.0;

/// A geo cluster: `servers` × 4 bays, 3 gears, medium-DC components and
/// object population (the object count is identical across topologies so
/// the interactive workload is, too).
fn geo_cluster(servers: usize) -> ClusterSpec {
    let mut spec = ClusterSpec::medium_dc();
    spec.topology = Topology::new(servers, 4, 3);
    spec
}

/// A solar site holding one `share` of the total PV area, `offset_hours`
/// time zones west of the home site.
fn solar_site(name: &str, servers: usize, area_m2: f64, offset_hours: i64) -> SiteConfig {
    SiteConfig {
        name: name.to_string(),
        cluster: geo_cluster(servers),
        source: SourceKind::Solar { area_m2, profile: SolarProfile::SunnySummer },
        forecast: ForecastKind::Oracle,
        battery: None,
        utc_offset_hours: offset_hours,
    }
}

/// The base experiment config shared by every geo topology (no battery:
/// the point is time-shifting work, not energy).
fn geo_base(ctx: &ExpContext, policy: PolicyKind, cluster: ClusterSpec) -> ExperimentConfig {
    let workload = WorkloadSpec::medium_week(cluster.objects).scaled(ctx.scale);
    let mut cfg = ExperimentConfig::medium(ctx.seed);
    cfg.cluster = cluster;
    cfg.workload = workload;
    cfg.energy.battery = None;
    cfg.policy = policy;
    cfg
}

/// One 36-server site with the whole PV field.
pub fn one_site_cfg(ctx: &ExpContext, policy: PolicyKind) -> ExperimentConfig {
    geo_base(ctx, policy, geo_cluster(36))
        .with_source(SourceKind::Solar { area_m2: GEO_AREA_M2, profile: SolarProfile::SunnySummer })
}

/// Three 12-server sites with the PV field split three ways and the solar
/// peaks offset 0 / +8 / +16 hours.
pub fn three_site_solar_cfg(
    ctx: &ExpContext,
    policy: PolicyKind,
    wan_cost_per_unit: i64,
) -> ExperimentConfig {
    let share = GEO_AREA_M2 / 3.0;
    let sites = vec![
        solar_site("west", 12, share, 0),
        solar_site("mid", 12, share, 8),
        solar_site("east", 12, share, 16),
    ];
    geo_base(ctx, policy, geo_cluster(12)).with_sites(sites).with_wan_cost(wan_cost_per_unit)
}

/// Like [`three_site_solar_cfg`], but the third site is wind-heavy: its
/// supply blows day and night instead of peaking 16 hours east.
pub fn three_site_wind_cfg(
    ctx: &ExpContext,
    policy: PolicyKind,
    wan_cost_per_unit: i64,
) -> ExperimentConfig {
    let share = GEO_AREA_M2 / 3.0;
    let mut windy = solar_site("windy", 12, share, 0);
    windy.source =
        SourceKind::Wind { rated_w: GEO_WIND_RATED_W, profile: WindProfile::SteadyCoastal };
    let sites = vec![solar_site("west", 12, share, 0), solar_site("mid", 12, share, 8), windy];
    geo_base(ctx, policy, geo_cluster(12)).with_sites(sites).with_wan_cost(wan_cost_per_unit)
}

/// The `geo` experiment: brown energy for one concentrated site vs three
/// offset sites, across WAN transfer costs and both site mixes.
pub fn geo(ctx: &ExpContext) -> String {
    let gm = PolicyKind::GreenMatch { delay_fraction: 1.0 };
    let wan_costs: Vec<i64> = thin(&[0i64, 200, 2_000], ctx.is_quick());

    let mut configs = Vec::new();
    configs.push(("1site/esd-only/wan0".to_string(), one_site_cfg(ctx, PolicyKind::AllOn)));
    configs.push(("1site/greenmatch/wan0".to_string(), one_site_cfg(ctx, gm)));
    for &wan in &wan_costs {
        configs
            .push((format!("3site-solar/greenmatch/wan{wan}"), three_site_solar_cfg(ctx, gm, wan)));
        configs
            .push((format!("3site-wind/greenmatch/wan{wan}"), three_site_wind_cfg(ctx, gm, wan)));
    }
    let results = run_and_archive(ctx, "geo", configs);

    let mut t = Table::new(vec![
        "topology",
        "policy",
        "wan_cost",
        "brown_kwh",
        "green_kwh",
        "green_util",
        "remote_exec_gib",
        "miss_rate",
    ]);
    let mut csv = String::from(
        "topology,policy,wan_cost,brown_kwh,green_produced_kwh,green_utilization,remote_exec_gib,miss_rate\n",
    );
    for (tag, r) in &results {
        let mut parts = tag.split('/');
        let (topo, policy, wan) = (
            parts.next().expect("topology"),
            parts.next().expect("policy"),
            parts.next().expect("wan").trim_start_matches("wan"),
        );
        let remote_gib =
            r.sites.iter().filter(|s| s.site > 0).map(|s| s.executed_batch_bytes).sum::<u64>()
                as f64
                / (1u64 << 30) as f64;
        t.row(vec![
            topo.to_string(),
            policy.to_string(),
            wan.to_string(),
            f1(r.brown_kwh),
            f1(r.green_produced_kwh),
            f3(r.green_utilization),
            f1(remote_gib),
            f3(r.batch.miss_rate()),
        ]);
        csv.push_str(&format!(
            "{topo},{policy},{wan},{:.3},{:.3},{:.4},{:.1},{:.4}\n",
            r.brown_kwh,
            r.green_produced_kwh,
            r.green_utilization,
            remote_gib,
            r.batch.miss_rate()
        ));
    }
    ctx.write("geo_sites.md", &t.to_markdown());
    ctx.write("geo_sites.csv", &csv);

    let b1 = results.iter().find(|(t, _)| t == "1site/greenmatch/wan0").expect("1site run");
    let b3 =
        results.iter().find(|(t, _)| t == "3site-solar/greenmatch/wan0").expect("3site solar run");
    format!(
        "Geo distribution: one 36-server site draws {:.1} kWh brown under GreenMatch; \
         splitting into three 12-server sites with solar peaks 8 h apart draws {:.1} kWh \
         at zero WAN cost (follow-the-sun matching ships deferred work to whichever site \
         is in daylight). Raising the per-unit WAN cost prices remote green against home \
         brown and the advantage tapers; the wind-heavy mix trades the 16 h offset for \
         night-time supply. Full sweep in geo_sites.csv.",
        b1.1.brown_kwh, b3.1.brown_kwh
    )
}
