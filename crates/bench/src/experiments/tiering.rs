//! Temperature-tiering experiment: replicated-only baseline vs EWMA
//! tiering at several cold-fraction targets.
//!
//! Every configuration serves the identical interactive trace and batch
//! pool; the tiered runs additionally classify objects by access EWMA each
//! slot and migrate cold ones from 3-way replication to erasure coding
//! (and hot ones back). Migration bytes enter the deferrable pool, so the
//! matcher schedules them into green slots like any other batch work. The
//! sweep reports what tiering buys (raw capacity, brown energy) and what
//! it costs (migration traffic), plus how green that traffic ran.

use super::base::{medium_cfg, thin};
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, Table};
use greenmatch::config::TieringConfig;
use greenmatch::policy::PolicyKind;

const GIB: f64 = (1u64 << 30) as f64;
const TIB: f64 = (1u64 << 40) as f64;

/// The `tiering` experiment: no-tiering baseline vs EWMA tiering at
/// three cold-fraction targets, all under GreenMatch.
pub fn tiering(ctx: &ExpContext) -> String {
    let gm = PolicyKind::GreenMatch { delay_fraction: 1.0 };
    let cold_fractions: Vec<f64> = thin(&[0.3f64, 0.5, 0.7], ctx.is_quick());

    let mut configs = Vec::new();
    configs.push(("off".to_string(), medium_cfg(ctx, gm)));
    for &cold in &cold_fractions {
        let cfg = medium_cfg(ctx, gm)
            .with_tiering(TieringConfig { cold_fraction_target: cold, ..TieringConfig::default() });
        configs.push((format!("cold{:.0}", cold * 100.0), cfg));
    }
    let results = run_and_archive(ctx, "tiering", configs);

    let mut t = Table::new(vec![
        "config",
        "brown_kwh",
        "capacity_tib",
        "ec_objects",
        "migrated_gib",
        "green_share",
        "p99_ms",
        "miss_rate",
    ]);
    let mut csv = String::from(
        "config,brown_kwh,capacity_in_use_tib,ec_objects,migrated_gib,migration_green_share,p99_ms,miss_rate\n",
    );
    for (tag, r) in &results {
        let cap_tib = r.capacity_in_use_bytes as f64 / TIB;
        let migrated_gib = r.migrated_bytes as f64 / GIB;
        t.row(vec![
            tag.clone(),
            f1(r.brown_kwh),
            f3(cap_tib),
            r.ec_objects.to_string(),
            f1(migrated_gib),
            f3(r.migration_green_share),
            f1(r.latency.p99_s * 1e3),
            f3(r.batch.miss_rate()),
        ]);
        csv.push_str(&format!(
            "{tag},{:.3},{:.4},{},{:.1},{:.4},{:.2},{:.4}\n",
            r.brown_kwh,
            cap_tib,
            r.ec_objects,
            migrated_gib,
            r.migration_green_share,
            r.latency.p99_s * 1e3,
            r.batch.miss_rate()
        ));
    }
    ctx.write("tiering.md", &t.to_markdown());
    ctx.write("tiering.csv", &csv);

    let base = &results.iter().find(|(t, _)| t == "off").expect("baseline run").1;
    let tiered = &results.iter().find(|(t, _)| t.starts_with("cold")).expect("tiered run").1;
    format!(
        "Temperature tiering: the replicated-only baseline holds {:.2} TiB raw and draws \
         {:.1} kWh brown; EWMA tiering (cold target {}) demotes {} objects to erasure \
         coding, cutting raw capacity to {:.2} TiB at {:.1} kWh brown while moving \
         {:.1} GiB of migration traffic, {:.0}% of it in green-powered slots. Interactive \
         latency and deadline misses are unchanged — the matcher defers migration bytes \
         like any other batch work. Full sweep in tiering.csv.",
        base.capacity_in_use_bytes as f64 / TIB,
        base.brown_kwh,
        results
            .iter()
            .find(|(t, _)| t.starts_with("cold"))
            .expect("tiered run")
            .0
            .trim_start_matches("cold"),
        tiered.ec_objects,
        tiered.capacity_in_use_bytes as f64 / TIB,
        tiered.brown_kwh,
        tiered.migrated_bytes as f64 / GIB,
        tiered.migration_green_share * 100.0,
    )
}
