//! Table-like experiments (R-Table1 … R-Table4).

use super::base::{medium_cfg, medium_cfg_no_battery, DEFAULT_AREA_M2};
use crate::runner::{run_and_archive, ExpContext};
use crate::table::{f1, f3, pct, Table};
use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use gm_energy::wind::WindProfile;
use gm_storage::{ClusterSpec, DiskSpec, ServerSpec};
use greenmatch::config::{ForecastKind, SourceKind};
use greenmatch::policy::PolicyKind;

/// R-Table1 — model parameters (no simulation; a provenance table).
pub fn table1(ctx: &ExpContext) -> String {
    let disk = DiskSpec::enterprise_sata();
    let server = ServerSpec::storage_node();
    let cluster = ClusterSpec::medium_dc();
    let la = BatterySpec::lead_acid(90_000.0);
    let li = BatterySpec::lithium_ion(90_000.0);

    let mut t = Table::new(vec!["parameter", "value", "unit"]);
    t.row(vec![
        "servers × disk bays".into(),
        format!("{} × {}", cluster.topology.servers, cluster.topology.bays),
        "".into(),
    ]);
    t.row(vec![
        "replication / gears".into(),
        format!("{} / {}", cluster.replication, cluster.topology.gears),
        "".into(),
    ]);
    t.row(vec![
        "disk active / idle / standby".into(),
        format!("{} / {} / {}", disk.active_w, disk.idle_w, disk.standby_w),
        "W".into(),
    ]);
    t.row(vec![
        "disk spin-up".into(),
        format!("{} s + {} J", disk.spinup_latency.as_secs_f64(), disk.spinup_extra_j),
        "".into(),
    ]);
    t.row(vec!["disk transfer".into(), f1(disk.transfer_bps / 1e6), "MB/s".into()]);
    t.row(vec![
        "server peak / idle / off".into(),
        format!("{} / {} / {}", server.peak_w, server.idle_w, server.off_w),
        "W".into(),
    ]);
    t.row(vec![
        "LA DoD / σ / charge-rate".into(),
        format!("{} / {} / {}%", la.dod, la.efficiency, la.charge_rate_per_hour * 100.0),
        "".into(),
    ]);
    t.row(vec![
        "LI DoD / σ / charge-rate".into(),
        format!("{} / {} / {}%", li.dod, li.efficiency, li.charge_rate_per_hour * 100.0),
        "".into(),
    ]);
    t.row(vec![
        "LA / LI self-discharge".into(),
        format!("{}% / {}%", la.self_discharge_per_day * 100.0, li.self_discharge_per_day * 100.0),
        "per day".into(),
    ]);
    t.row(vec![
        "LA / LI price".into(),
        format!("{} / {}", la.price_per_kwh, li.price_per_kwh),
        "$/kWh".into(),
    ]);
    t.row(vec![
        "LA / LI 90 kWh volume".into(),
        format!("{:.0} / {:.0}", la.volume_litres(), li.volume_litres()),
        "L".into(),
    ]);
    t.row(vec![
        "PV default area / efficiency".into(),
        format!("{DEFAULT_AREA_M2} / 0.174"),
        "m² / –".into(),
    ]);
    t.row(vec!["slot width / horizon".to_string(), "1 h / 168 slots".to_string(), String::new()]);

    ctx.write("table1_parameters.md", &t.to_markdown());
    ctx.write("table1_parameters.csv", &t.to_csv());
    format!("table1: {} parameter rows written", t.len())
}

/// The six headline policies of R-Table2.
fn headline_policies() -> Vec<(&'static str, PolicyKind, bool)> {
    vec![
        ("all-on (no ESD)", PolicyKind::AllOn, false),
        ("esd-only", PolicyKind::AllOn, true),
        ("power-prop", PolicyKind::PowerProportional, false),
        ("greedy-green", PolicyKind::GreedyGreen, false),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }, true),
        ("greenmatch30", PolicyKind::GreenMatch { delay_fraction: 0.3 }, true),
    ]
}

/// R-Table2 — policy summary on the default configuration.
pub fn table2(ctx: &ExpContext) -> String {
    let configs: Vec<(String, _)> = headline_policies()
        .into_iter()
        .map(|(name, policy, battery)| {
            let cfg =
                if battery { medium_cfg(ctx, policy) } else { medium_cfg_no_battery(ctx, policy) };
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "table2", configs);

    let mut t = Table::new(vec![
        "policy",
        "brown_kwh",
        "load_kwh",
        "green_util",
        "coverage",
        "curtailed_kwh",
        "losses_kwh",
        "miss_rate",
        "p99_ms",
        "spinups",
        "carbon_kg",
        "cost_usd",
    ]);
    for (name, r) in &results {
        t.row(vec![
            name.clone(),
            f1(r.brown_kwh),
            f1(r.load_kwh),
            pct(r.green_utilization),
            pct(r.green_coverage),
            f1(r.curtailed_kwh),
            f1(r.total_losses_kwh()),
            pct(r.batch.miss_rate()),
            f1(r.latency.p99_s * 1e3),
            r.spinups.to_string(),
            f1(r.carbon_kg),
            f1(r.cost_dollars),
        ]);
    }
    ctx.write("table2_policy_summary.md", &t.to_markdown());
    ctx.write("table2_policy_summary.csv", &t.to_csv());

    let esd = results.iter().find(|(n, _)| n == "esd-only").expect("esd-only present").1.brown_kwh;
    let gm =
        results.iter().find(|(n, _)| n == "greenmatch").expect("greenmatch present").1.brown_kwh;
    let saving = if esd > 0.0 { (1.0 - gm / esd) * 100.0 } else { 0.0 };
    format!("table2: 6 policies; greenmatch saves {saving:.0}% brown energy vs esd-only")
}

/// R-Table3 — sensitivity to the renewable source.
pub fn table3(ctx: &ExpContext) -> String {
    let sources: Vec<(&str, SourceKind)> = vec![
        (
            "solar",
            SourceKind::Solar { area_m2: DEFAULT_AREA_M2, profile: SolarProfile::SunnySummer },
        ),
        ("wind", SourceKind::Wind { rated_w: 25_000.0, profile: WindProfile::SteadyCoastal }),
        (
            "mixed",
            SourceKind::Mixed {
                area_m2: DEFAULT_AREA_M2 / 2.0,
                solar_profile: SolarProfile::SunnySummer,
                rated_w: 12_500.0,
                wind_profile: WindProfile::SteadyCoastal,
            },
        ),
    ];
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("esd-only", PolicyKind::AllOn),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
    ];
    let mut configs = Vec::new();
    for (sname, source) in &sources {
        for (pname, policy) in &policies {
            let mut cfg = medium_cfg(ctx, *policy);
            cfg.energy.source = source.clone();
            configs.push((format!("{sname}/{pname}"), cfg));
        }
    }
    let results = run_and_archive(ctx, "table3", configs);

    let mut t =
        Table::new(vec!["source", "policy", "green_kwh", "brown_kwh", "green_util", "miss_rate"]);
    for (tag, r) in &results {
        let (s, p) = tag.split_once('/').expect("source/policy tag");
        t.row(vec![
            s.to_string(),
            p.to_string(),
            f1(r.green_produced_kwh),
            f1(r.brown_kwh),
            f3(r.green_utilization),
            f3(r.batch.miss_rate()),
        ]);
    }
    ctx.write("table3_sources.md", &t.to_markdown());
    ctx.write("table3_sources.csv", &t.to_csv());
    format!("table3: {} source × policy cells", results.len())
}

/// R-Table4 — sensitivity to forecast quality (GreenMatch only; the
/// baselines do not consult forecasts beyond the current slot).
pub fn table4(ctx: &ExpContext) -> String {
    let kinds: Vec<(&str, ForecastKind)> = vec![
        ("oracle", ForecastKind::Oracle),
        ("persistence", ForecastKind::Persistence),
        ("ewma", ForecastKind::Ewma { alpha: 0.5 }),
        ("noisy30", ForecastKind::Noisy { cv: 0.3 }),
    ];
    // No battery here: with an adequate ESD the current-slot ground truth
    // (the era's accurate next-hour prediction) fully determines behaviour
    // and the forecasters are indistinguishable — the sensitivity exists
    // only when deferral must aim at *future* windows unaided.
    let configs: Vec<(String, _)> = kinds
        .iter()
        .map(|(name, kind)| {
            let mut cfg =
                medium_cfg_no_battery(ctx, PolicyKind::GreenMatch { delay_fraction: 1.0 });
            cfg.energy.forecast = *kind;
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "table4", configs);

    let mut t =
        Table::new(vec!["forecast", "brown_kwh", "green_util", "curtailed_kwh", "miss_rate"]);
    for (name, r) in &results {
        t.row(vec![
            name.clone(),
            f3(r.brown_kwh),
            f3(r.green_utilization),
            f3(r.curtailed_kwh),
            f3(r.batch.miss_rate()),
        ]);
    }
    ctx.write("table4_forecasts.md", &t.to_markdown());
    ctx.write("table4_forecasts.csv", &t.to_csv());

    let oracle = results[0].1.brown_kwh;
    let worst = results.iter().map(|(_, r)| r.brown_kwh).fold(f64::NEG_INFINITY, f64::max);
    format!("table4: oracle brown {oracle:.1} kWh; worst forecaster {worst:.1} kWh")
}

/// R-Table5 — weekly operating economics: grid cost + battery wear per
/// policy × ESD sizing. The economic argument for opportunistic
/// scheduling: fewer stored kWh means both a smaller pack *and* slower
/// cycling wear on whatever pack is installed.
pub fn table5(ctx: &ExpContext) -> String {
    let batteries: Vec<(&str, f64)> =
        vec![("none", 0.0), ("40kWh", 40_000.0), ("110kWh", 110_000.0)];
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("esd-only", PolicyKind::AllOn),
        ("greedy-green", PolicyKind::GreedyGreen),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
        ("greenmatch30", PolicyKind::GreenMatch { delay_fraction: 0.3 }),
    ];
    let mut configs = Vec::new();
    for (bname, wh) in &batteries {
        for (pname, policy) in &policies {
            let mut cfg = medium_cfg(ctx, *policy);
            cfg.energy.battery = (*wh > 0.0).then(|| BatterySpec::lithium_ion(*wh));
            configs.push((format!("{bname}/{pname}"), cfg));
        }
    }
    let results = run_and_archive(ctx, "table5", configs);

    let mut t = Table::new(vec![
        "battery",
        "policy",
        "grid_usd_week",
        "battery_cycles",
        "wear_usd_week",
        "opex_usd_week",
        "brown_kwh",
    ]);
    for (tag, r) in &results {
        let (b, p) = tag.split_once('/').expect("battery/policy tag");
        t.row(vec![
            b.to_string(),
            p.to_string(),
            format!("{:.2}", r.cost_dollars),
            format!("{:.2}", r.battery_cycles),
            format!("{:.2}", r.battery_wear_dollars),
            format!("{:.2}", r.opex_dollars()),
            f1(r.brown_kwh),
        ]);
    }
    ctx.write("table5_economics.md", &t.to_markdown());
    ctx.write("table5_economics.csv", &t.to_csv());

    let best = results
        .iter()
        .min_by(|a, b| a.1.opex_dollars().partial_cmp(&b.1.opex_dollars()).expect("finite"))
        .expect("non-empty");
    format!("table5: lowest weekly opex {} at ${:.2}", best.0, best.1.opex_dollars())
}

/// R-Table6 — carbon-aware brown pricing: does steering unavoidable grid
/// draw into the grid's cleanest hours reduce emissions at equal energy?
/// Battery-free, undersized PV, so a meaningful amount of brown work must
/// be placed somewhere.
pub fn table6(ctx: &ExpContext) -> String {
    let policies: Vec<(&str, PolicyKind)> = vec![
        ("esd-only", PolicyKind::AllOn),
        ("greenmatch", PolicyKind::GreenMatch { delay_fraction: 1.0 }),
        ("greenmatch-carbon", PolicyKind::GreenMatchCarbon { delay_fraction: 1.0 }),
    ];
    let configs: Vec<(String, _)> = policies
        .iter()
        .map(|(name, policy)| {
            let mut cfg = medium_cfg_no_battery(ctx, *policy);
            cfg.energy.source =
                SourceKind::Solar { area_m2: 60.0, profile: SolarProfile::CloudySummer };
            // Carbon steering needs room: with the default 12 h windows,
            // deadline-driven timing leaves no freedom across the diurnal
            // carbon cycle; 36 h windows let work choose between the
            // evening peak and the clean small hours.
            cfg.workload.batch.deadline_window = gm_sim::SimDuration::from_hours(36);
            (name.to_string(), cfg)
        })
        .collect();
    let results = run_and_archive(ctx, "table6", configs);

    let mut t = Table::new(vec![
        "policy",
        "brown_kwh",
        "carbon_kg",
        "g_per_brown_kwh",
        "grid_usd",
        "miss_rate",
    ]);
    for (name, r) in &results {
        let intensity = if r.brown_kwh > 0.0 { r.carbon_kg * 1000.0 / r.brown_kwh } else { 0.0 };
        t.row(vec![
            name.clone(),
            f1(r.brown_kwh),
            f1(r.carbon_kg),
            f1(intensity),
            format!("{:.2}", r.cost_dollars),
            f3(r.batch.miss_rate()),
        ]);
    }
    ctx.write("table6_carbon.md", &t.to_markdown());
    ctx.write("table6_carbon.csv", &t.to_csv());

    let gm = &results[1].1;
    let ca = &results[2].1;
    let gm_int = gm.carbon_kg * 1000.0 / gm.brown_kwh.max(1e-9);
    let ca_int = ca.carbon_kg * 1000.0 / ca.brown_kwh.max(1e-9);
    format!(
        "table6: effective intensity {:.0} g/kWh (greenmatch) vs {:.0} g/kWh (carbon-aware)",
        gm_int, ca_int
    )
}
