//! Executable shape checks.
//!
//! EXPERIMENTS.md claims the reconstruction reproduces the *shapes* of the
//! paper family's results — monotonicities, orderings, knees. This module
//! turns each claim into a pass/fail check over a reduced sweep, so
//! "does the reproduction still reproduce?" is one command
//! (`cargo run -p gm-bench --release --bin validate`) instead of a manual
//! CSV inspection.

use crate::experiments::base::{medium_cfg, medium_cfg_no_battery};
use crate::experiments::geo;
use crate::runner::{run_tagged, ExpContext};
use gm_energy::battery::BatterySpec;
use gm_energy::solar::SolarProfile;
use gm_storage::LayoutKind;
use greenmatch::config::SourceKind;
use greenmatch::policy::PolicyKind;
use greenmatch::report::RunReport;

/// Outcome of one shape check.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Claim identifier (matches EXPERIMENTS.md).
    pub name: &'static str,
    /// Whether the claim held.
    pub pass: bool,
    /// Human-readable evidence.
    pub detail: String,
}

fn check(name: &'static str, pass: bool, detail: String) -> ShapeCheck {
    ShapeCheck { name, pass, detail }
}

fn brown(results: &[(String, RunReport)], tag: &str) -> f64 {
    results
        .iter()
        .find(|(t, _)| t == tag)
        .unwrap_or_else(|| panic!("missing run {tag}"))
        .1
        .brown_kwh
}

/// The DESIGN.md §1.8 tiering claim as a standalone check: demoting cold
/// objects to erasure coding must pay off in at least one currency —
/// brown energy or raw capacity — at equal served demand, with its
/// migration traffic actually happening (the matcher defers it into
/// renewable-powered slots; the green share is reported as evidence).
/// Run by [`run_all`] and by `validate --check tiering` as a CI smoke.
pub fn tiering_check(ctx: &ExpContext) -> ShapeCheck {
    let gm = PolicyKind::GreenMatch { delay_fraction: 1.0 };
    let results = run_tagged(vec![
        ("tier-off".to_string(), medium_cfg(ctx, gm)),
        (
            "tier-on".to_string(),
            medium_cfg(ctx, gm).with_tiering(greenmatch::config::TieringConfig::default()),
        ),
    ]);
    let off = &results.iter().find(|(t, _)| t == "tier-off").expect("tier-off").1;
    let on = &results.iter().find(|(t, _)| t == "tier-on").expect("tier-on").1;
    check(
        "tiering-cuts-brown-or-capacity",
        (on.brown_kwh <= off.brown_kwh + 1e-6
            || on.capacity_in_use_bytes < off.capacity_in_use_bytes)
            && on.latency.count == off.latency.count
            && on.migrations_completed > 0,
        format!(
            "brown {:.1} → {:.1} kWh, raw {:.2} → {:.2} TiB, {} migrations ({:.0}% green)",
            off.brown_kwh,
            on.brown_kwh,
            off.capacity_in_use_bytes as f64 / (1u64 << 40) as f64,
            on.capacity_in_use_bytes as f64 / (1u64 << 40) as f64,
            on.migrations_completed,
            on.migration_green_share * 100.0
        ),
    )
}

/// The DESIGN.md §1.9 admission claim as a standalone check: under a
/// supply-constrained scenario, tightening the gate's confidence α must
/// not loosen it — work turned away (rejected plus still-held) grows
/// monotonically in α and the violation rate of what *was* admitted never
/// rises, because only work the α-confidence green lower band covers is
/// ever admitted. Brown energy must fall alongside — the admitted set
/// shrinks toward work the green band covers. The gate must also be
/// non-degenerately active (the tightest setting turns something away),
/// or the monotonicity holds vacuously. Run by [`run_all`] and by
/// `validate --check admission` as a CI smoke.
pub fn admission_check(ctx: &ExpContext) -> ShapeCheck {
    let alphas = [0.5f64, 0.9, 0.99];
    let configs = alphas
        .iter()
        .map(|&alpha| {
            (
                format!("a{:.0}", alpha * 100.0),
                crate::experiments::admission::scarce_cfg(ctx)
                    .with_admission(greenmatch::config::AdmissionConfig { alpha, defer_slots: 4 }),
            )
        })
        .collect();
    let results = run_tagged(configs);
    let mut pass = true;
    let mut prev_away = 0u64;
    let mut prev_miss = f64::INFINITY;
    let mut prev_brown = f64::INFINITY;
    let mut detail = String::new();
    for (i, &alpha) in alphas.iter().enumerate() {
        let r = &results[i].1;
        let adm = r.admission.clone().expect("gate ran");
        let away = adm.rejected + adm.pending_at_end as u64;
        let miss = r.batch.miss_rate();
        pass &= away >= prev_away && miss <= prev_miss + 1e-9 && r.brown_kwh <= prev_brown + 1e-6;
        if !detail.is_empty() {
            detail.push_str(", ");
        }
        detail.push_str(&format!(
            "α={alpha}: {away} away / {:.2}% miss / {:.1} brown kWh",
            miss * 100.0,
            r.brown_kwh
        ));
        prev_away = away;
        prev_miss = miss;
        prev_brown = r.brown_kwh;
    }
    pass &= prev_away > 0; // the tightest gate actually turned work away
    check("admission-tightens-violations", pass, detail)
}

/// Run every shape check. `ctx.scale` trades fidelity for speed.
pub fn run_all(ctx: &ExpContext) -> Vec<ShapeCheck> {
    let gm = PolicyKind::GreenMatch { delay_fraction: 1.0 };

    // One batched sweep covering all the claims.
    let mut configs = Vec::new();
    // Area monotonicity + policy ordering (no battery).
    for area in [40.0f64, 120.0, 240.0] {
        for (pname, policy) in
            [("gm", gm), ("greedy", PolicyKind::GreedyGreen), ("allon", PolicyKind::AllOn)]
        {
            let mut cfg = medium_cfg_no_battery(ctx, policy);
            cfg.energy.source =
                SourceKind::Solar { area_m2: area, profile: SolarProfile::SunnySummer };
            configs.push((format!("{pname}@{area:.0}"), cfg));
        }
    }
    // Battery knee (esd-only vs greenmatch at 40 and 110 kWh).
    for kwh in [40.0f64, 110.0] {
        for (pname, policy) in [("esd", PolicyKind::AllOn), ("gmb", gm)] {
            let mut cfg = medium_cfg(ctx, policy);
            cfg.energy.battery = Some(BatterySpec::lithium_ion(kwh * 1000.0));
            configs.push((format!("{pname}@{kwh:.0}kwh"), cfg));
        }
    }
    // Delay-fraction loss trend.
    for frac in [0.0f64, 1.0] {
        configs.push((
            format!("delay@{:.0}", frac * 100.0),
            medium_cfg(ctx, PolicyKind::GreenMatch { delay_fraction: frac }),
        ));
    }
    // Layout availability.
    for (lname, layout) in [("gear", LayoutKind::Gear), ("random", LayoutKind::Random)] {
        let mut cfg = medium_cfg(ctx, gm);
        cfg.cluster.layout = layout;
        configs.push((format!("layout@{lname}"), cfg));
    }
    let results = run_tagged(configs);

    let mut checks = Vec::new();

    // 1. Brown monotone non-increasing in PV area, every policy.
    for pname in ["gm", "greedy", "allon"] {
        let b40 = brown(&results, &format!("{pname}@40"));
        let b120 = brown(&results, &format!("{pname}@120"));
        let b240 = brown(&results, &format!("{pname}@240"));
        checks.push(check(
            "brown-monotone-in-area",
            b40 >= b120 - 1e-6 && b120 >= b240 - 1e-6,
            format!("{pname}: {b40:.1} ≥ {b120:.1} ≥ {b240:.1} kWh"),
        ));
    }

    // 2. Policy ordering at the default area (no battery).
    let (g, gr, ao) =
        (brown(&results, "gm@120"), brown(&results, "greedy@120"), brown(&results, "allon@120"));
    checks.push(check(
        "ordering-gm-le-greedy-le-allon",
        g <= gr * 1.05 && gr <= ao * 1.05,
        format!("gm {g:.1} ≤ greedy {gr:.1} ≤ all-on {ao:.1} kWh"),
    ));

    // 3. ESD-only depends on battery size more than GreenMatch (the knee
    //    claim: GreenMatch has already flattened by 40 kWh).
    let esd_gain = brown(&results, "esd@40kwh") - brown(&results, "esd@110kwh");
    let gm_gain = brown(&results, "gmb@40kwh") - brown(&results, "gmb@110kwh");
    checks.push(check(
        "greenmatch-needs-smaller-battery",
        esd_gain > gm_gain && esd_gain > 0.0,
        format!("40→110 kWh gain: esd-only {esd_gain:.1} vs greenmatch {gm_gain:.1} kWh"),
    ));

    // 4. Deferral reduces battery-efficiency loss and adds spin-ups.
    let d0 = &results.iter().find(|(t, _)| t == "delay@0").expect("delay@0").1;
    let d100 = &results.iter().find(|(t, _)| t == "delay@100").expect("delay@100").1;
    checks.push(check(
        "deferral-cuts-battery-loss",
        d100.battery_eff_loss_kwh <= d0.battery_eff_loss_kwh + 1e-6,
        format!(
            "{:.1} → {:.1} kWh battery loss",
            d0.battery_eff_loss_kwh, d100.battery_eff_loss_kwh
        ),
    ));
    checks.push(check(
        "deferral-adds-cycling",
        d100.spinups >= d0.spinups,
        format!("{} → {} spin-ups", d0.spinups, d100.spinups),
    ));

    // 5. Deadlines hold under the oracle convention.
    checks.push(check(
        "deadlines-hold",
        d100.batch.miss_rate() < 0.05,
        format!("miss rate {:.2}%", d100.batch.miss_rate() * 100.0),
    ));

    // 6. Gear layout never forces availability spin-ups; random does.
    let gear = &results.iter().find(|(t, _)| t == "layout@gear").expect("gear").1;
    let random = &results.iter().find(|(t, _)| t == "layout@random").expect("random").1;
    checks.push(check(
        "gear-layout-availability",
        gear.forced_spinups == 0 && random.forced_spinups > 0,
        format!(
            "forced spin-ups: gear {} vs random {}",
            gear.forced_spinups, random.forced_spinups
        ),
    ));

    // 7. Latency stays interactive everywhere except the random layout,
    //    whose spin-up stalls (≈10 s) must surface in the tail — both
    //    halves are claims.
    let worst_gear_p99 = results
        .iter()
        .filter(|(t, _)| t != "layout@random")
        .map(|(_, r)| r.latency.p99_s)
        .fold(0.0f64, f64::max);
    checks.push(check(
        "latency-bounded-under-gear-layout",
        worst_gear_p99 < 1.0,
        format!("worst p99 {:.1} ms", worst_gear_p99 * 1e3),
    ));
    checks.push(check(
        "random-layout-stalls-surface-in-tail",
        random.latency.max_s >= 5.0,
        format!("random layout max latency {:.1} s", random.latency.max_s),
    ));

    // 8. Geo-distribution: at zero WAN cost, three longitude-offset sites
    //    strictly reduce brown energy vs one site of equal total capacity
    //    (follow-the-sun matching reaches green hours the home site lacks).
    let geo_results = run_tagged(vec![
        ("geo1".to_string(), geo::one_site_cfg(ctx, gm)),
        ("geo3".to_string(), geo::three_site_solar_cfg(ctx, gm, 0)),
    ]);
    let (g1, g3) = (brown(&geo_results, "geo1"), brown(&geo_results, "geo3"));
    checks.push(check(
        "geo-offset-sites-cut-brown",
        g3 < g1,
        format!("1 site {g1:.1} vs 3 offset sites {g3:.1} kWh"),
    ));

    // 9. Temperature tiering (standalone so CI can smoke it alone).
    checks.push(tiering_check(ctx));

    // 9b. Admission control (standalone so CI can smoke it alone).
    checks.push(admission_check(ctx));

    // 10. Conservation audit: the headline configuration and a mini-fuzz
    //    over random configurations run clean under the per-slot auditor
    //    and the post-run deep audit.
    let (_, audit) = crate::fuzzgen::run_audited(&medium_cfg(ctx, gm));
    checks.push(check(
        "conservation-audit-clean",
        audit.is_clean(),
        format!("{} over the headline config", audit.summary()),
    ));
    let mut fuzz_violations = 0usize;
    let mut fuzz_slots = 0usize;
    let fuzz_cases = 16u32;
    for case in 0..fuzz_cases {
        let mut rng = proptest::test_runner::TestRng::for_case("validate-fuzz", case);
        let cfg = crate::fuzzgen::fuzz_config(&mut rng);
        let (_, audit) = crate::fuzzgen::run_audited(&cfg);
        fuzz_violations += audit.total_violations();
        fuzz_slots += audit.slots_audited;
    }
    checks.push(check(
        "conservation-fuzz-clean",
        fuzz_violations == 0,
        format!(
            "{fuzz_violations} violations over {fuzz_cases} random configs ({fuzz_slots} slots)"
        ),
    ));

    checks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full shape suite at reduced scale — the reproduction's
    /// "does it still reproduce?" regression test.
    #[test]
    #[ignore = "several minutes of simulation; run with --ignored or the validate binary"]
    fn shapes_hold_at_reduced_scale() {
        let dir = std::env::temp_dir().join("gm-shapes-test");
        let ctx = ExpContext::new(dir, 42, 0.25);
        let checks = run_all(&ctx);
        let failures: Vec<_> = checks.iter().filter(|c| !c.pass).collect();
        assert!(failures.is_empty(), "failed shape checks: {failures:#?}");
    }
}
