//! Micro-benchmarks for the energy substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gm_energy::battery::{Battery, BatterySpec};
use gm_energy::forecast::{Forecaster, PersistenceForecaster};
use gm_energy::solar::{SolarFarm, SolarFarmSpec, SolarProfile};
use gm_energy::supply::PowerSource;
use gm_sim::time::SimDuration;
use gm_sim::{RngFactory, SlotClock};

fn bench_battery(c: &mut Criterion) {
    let hour = SimDuration::from_hours(1);
    c.bench_function("battery/charge_discharge_cycle", |b| {
        let mut batt = Battery::new(BatterySpec::lithium_ion(40_000.0));
        b.iter(|| {
            let out = batt.charge(black_box(5_000.0), hour);
            let got = batt.discharge(black_box(4_000.0), hour);
            batt.apply_self_discharge(hour);
            black_box((out.stored_wh, got))
        })
    });
}

fn bench_solar(c: &mut Criterion) {
    c.bench_function("solar/materialize_week", |b| {
        let rngs = RngFactory::new(7);
        b.iter(|| {
            let mut farm =
                SolarFarm::new(SolarFarmSpec::panels(96, SolarProfile::SunnySummer), &rngs);
            black_box(farm.materialize(SlotClock::hourly(), 168).energy_wh())
        })
    });
}

fn bench_forecast(c: &mut Criterion) {
    let rngs = RngFactory::new(7);
    let mut farm = SolarFarm::new(SolarFarmSpec::panels(96, SolarProfile::SunnySummer), &rngs);
    let trace = farm.materialize(SlotClock::hourly(), 168);
    c.bench_function("forecast/persistence_24h", |b| {
        let mut f = PersistenceForecaster::new(trace.clone());
        b.iter(|| black_box(f.predict(black_box(80), 24)))
    });
}

criterion_group!(benches, bench_battery, bench_solar, bench_forecast);
criterion_main!(benches);
